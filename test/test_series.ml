module Series = Repro_util.Series

let test_window_assignment () =
  let s = Series.create ~window:10.0 in
  Series.add s ~time:1.0 2.0;
  Series.add s ~time:9.9 4.0;
  Series.add s ~time:10.0 6.0;
  let sums = Series.sums s in
  Alcotest.(check int) "two windows" 2 (Array.length sums);
  Alcotest.(check (float 1e-9)) "w0 mid" 5.0 (fst sums.(0));
  Alcotest.(check (float 1e-9)) "w0 sum" 6.0 (snd sums.(0));
  Alcotest.(check (float 1e-9)) "w1 mid" 15.0 (fst sums.(1));
  Alcotest.(check (float 1e-9)) "w1 sum" 6.0 (snd sums.(1))

let test_means_and_rates () =
  let s = Series.create ~window:10.0 in
  Series.add s ~time:0.0 2.0;
  Series.add s ~time:5.0 4.0;
  let means = Series.means s in
  Alcotest.(check (float 1e-9)) "mean" 3.0 (snd means.(0));
  let rates = Series.rates s in
  Alcotest.(check (float 1e-9)) "rate" 0.6 (snd rates.(0))

let test_count () =
  let s = Series.create ~window:1.0 in
  Series.count s ~time:0.1;
  Series.count s ~time:0.2;
  Alcotest.(check (float 1e-9)) "total" 2.0 (Series.total s);
  Alcotest.(check int) "samples" 2 (Series.n_samples s)

let test_empty () =
  let s = Series.create ~window:5.0 in
  Alcotest.(check int) "no windows" 0 (Array.length (Series.sums s));
  Alcotest.(check (float 0.0)) "total" 0.0 (Series.total s)

let test_sorted_output () =
  let s = Series.create ~window:1.0 in
  Series.add s ~time:50.0 1.0;
  Series.add s ~time:3.0 1.0;
  Series.add s ~time:20.0 1.0;
  let sums = Series.sums s in
  Alcotest.(check bool) "time ordered" true
    (fst sums.(0) < fst sums.(1) && fst sums.(1) < fst sums.(2))

let test_invalid_window () =
  Alcotest.check_raises "zero window" (Invalid_argument "Series.create") (fun () ->
      ignore (Series.create ~window:0.0))

let suite =
  [
    ( "series",
      [
        Alcotest.test_case "window assignment" `Quick test_window_assignment;
        Alcotest.test_case "means and rates" `Quick test_means_and_rates;
        Alcotest.test_case "count" `Quick test_count;
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "sorted output" `Quick test_sorted_output;
        Alcotest.test_case "invalid window" `Quick test_invalid_window;
      ] );
  ]
