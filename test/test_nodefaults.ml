(* Node-level fault injection and the mechanisms that defend against it:
   Nodefault model semantics (fail-slow, fail-silent, flapping, compose),
   netsim's per-node hook (send-time verdicts, delivery-time re-judging
   of receiver mutes, the dropped_node counter and Node_fault drop
   reason), Schedule node-fault constructors and ordering guarantees,
   the suspicion list's negative caching on a scripted node (backoff
   doubling, gossip-proof quarantine, clearing on direct contact),
   end-to-end lookup retries and root-side duplicate suppression, the
   new Obs events' JSON roundtrip, and the collector's failure-detector
   accuracy metrics — including ground-truth scoring through Live. *)

module NF = Repro_faults.Nodefault
module Netfault = Repro_faults.Netfault
module Schedule = Repro_faults.Schedule
module Engine = Simkit.Engine
module Net = Netsim.Net
module Obs = Repro_obs
module Event = Obs.Event
module Node = Mspastry.Node
module M = Mspastry.Message
module Config = Mspastry.Config
module Nodeid = Pastry.Nodeid
module Peer = Pastry.Peer
module Sim = Harness.Sim
module Live = Sim.Live
module Collector = Overlay_metrics.Collector
module Rng = Repro_util.Rng

(* ------------------------------------------------------- model semantics *)

let check_verdict = Alcotest.(check bool)

let test_fail_slow_model () =
  let f = NF.fail_slow ~factor:2.0 ~extra:0.1 ~addrs:[ 3; 5 ] () in
  check_verdict "victim slowed on send" true
    (NF.decide f ~time:0.0 ~dir:NF.Send ~addr:3 = NF.Slow { factor = 2.0; extra = 0.1 });
  check_verdict "victim slowed on recv" true
    (NF.decide f ~time:0.0 ~dir:NF.Recv ~addr:5 = NF.Slow { factor = 2.0; extra = 0.1 });
  check_verdict "bystander passes" true (NF.decide f ~time:0.0 ~dir:NF.Send ~addr:4 = NF.Pass);
  Alcotest.check_raises "factor < 1" (Invalid_argument "Nodefault.fail_slow: factor < 1")
    (fun () -> ignore (NF.fail_slow ~factor:0.5 ~addrs:[ 1 ] ()));
  Alcotest.check_raises "no slowdown"
    (Invalid_argument "Nodefault.fail_slow: no slowdown (factor 1, extra 0)") (fun () ->
      ignore (NF.fail_slow ~addrs:[ 1 ] ()))

let test_fail_silent_model () =
  let f = NF.fail_silent ~addrs:[ 7 ] () in
  check_verdict "victim muted on send" true
    (NF.decide f ~time:0.0 ~dir:NF.Send ~addr:7 = NF.Mute);
  (* fail-silent is not a crash: the victim still receives *)
  check_verdict "victim still receives" true
    (NF.decide f ~time:0.0 ~dir:NF.Recv ~addr:7 = NF.Pass);
  check_verdict "bystander passes" true (NF.decide f ~time:0.0 ~dir:NF.Send ~addr:8 = NF.Pass)

let test_flapping_model () =
  let f = NF.flapping ~period:100.0 ~duty:0.3 ~addrs:[ 2 ] () in
  check_verdict "down at cycle start" true
    (NF.decide f ~time:0.0 ~dir:NF.Send ~addr:2 = NF.Mute);
  check_verdict "down mid-duty" true (NF.decide f ~time:29.9 ~dir:NF.Recv ~addr:2 = NF.Mute);
  check_verdict "up after duty" true (NF.decide f ~time:30.0 ~dir:NF.Send ~addr:2 = NF.Pass);
  check_verdict "periodic: down again next cycle" true
    (NF.decide f ~time:125.0 ~dir:NF.Send ~addr:2 = NF.Mute);
  check_verdict "bystander unaffected" true
    (NF.decide f ~time:0.0 ~dir:NF.Send ~addr:3 = NF.Pass);
  (* phase shifts the cycle; times before the phase normalise correctly *)
  let g = NF.flapping ~phase:50.0 ~period:100.0 ~duty:0.3 ~addrs:[ 2 ] () in
  check_verdict "before phase, up" true (NF.decide g ~time:0.0 ~dir:NF.Send ~addr:2 = NF.Pass);
  check_verdict "at phase, down" true (NF.decide g ~time:50.0 ~dir:NF.Send ~addr:2 = NF.Mute);
  Alcotest.check_raises "duty 1" (Invalid_argument "Nodefault.flapping: duty") (fun () ->
      ignore (NF.flapping ~period:10.0 ~duty:1.0 ~addrs:[ 1 ] ()))

let test_compose_model () =
  let slow a = NF.fail_slow ~factor:2.0 ~extra:0.1 ~addrs:[ a ] () in
  let c = NF.compose [ slow 1; slow 1; NF.fail_silent ~addrs:[ 9 ] () ] in
  check_verdict "factors multiply, extras add" true
    (NF.decide c ~time:0.0 ~dir:NF.Send ~addr:1
    = NF.Slow { factor = 4.0; extra = 0.2 });
  check_verdict "mute short-circuits" true (NF.decide c ~time:0.0 ~dir:NF.Send ~addr:9 = NF.Mute);
  check_verdict "untouched address passes" true
    (NF.decide c ~time:0.0 ~dir:NF.Send ~addr:5 = NF.Pass);
  check_verdict "empty compose passes" true
    (NF.decide (NF.compose []) ~time:0.0 ~dir:NF.Send ~addr:1 = NF.Pass)

(* ------------------------------------------------------ netsim integration *)

let make_net ?trace () =
  let engine = Engine.create () in
  let topology = Topology.constant ~n_endpoints:4 ~delay:0.01 in
  let net = Net.create ?trace ~engine ~topology ~rng:(Rng.create 7) () in
  (engine, net)

let test_net_fail_slow_delay () =
  let engine, net = make_net () in
  let at = ref nan in
  Net.register net ~addr:1 (fun ~src:_ _ -> at := Engine.now engine);
  Net.set_node_fault_model net (Some (NF.fail_slow ~factor:2.0 ~extra:0.1 ~addrs:[ 0 ] ()));
  Net.send net ~src:0 ~dst:1 "slowed sender";
  Engine.run_all engine;
  Alcotest.(check (float 1e-9)) "prop x factor + extra" 0.12 !at;
  (* both ends slowed: factors multiply, extras add *)
  Net.set_node_fault_model net
    (Some (NF.fail_slow ~factor:2.0 ~extra:0.1 ~addrs:[ 0; 1 ] ()));
  Net.send net ~src:0 ~dst:1 "both ends";
  Engine.run_all engine;
  Alcotest.(check (float 1e-9)) "both ends slow" 0.24 (!at -. 0.12)

let test_net_fail_silent () =
  let trace = Obs.Trace.create (Obs.Sink.memory ~capacity:100) in
  let engine, net = make_net ~trace () in
  let got = ref 0 in
  Net.register net ~addr:0 (fun ~src:_ _ -> incr got);
  Net.register net ~addr:1 (fun ~src:_ _ -> incr got);
  Net.set_node_fault_model net (Some (NF.fail_silent ~addrs:[ 0 ] ()));
  Net.send net ~src:0 ~dst:1 "swallowed at source";
  Net.send net ~src:1 ~dst:0 "still delivered to the silent node";
  Engine.run_all engine;
  Alcotest.(check int) "victim's send dropped, inbound delivered" 1 !got;
  Alcotest.(check int) "dropped_node counted" 1 (Net.stats net).Net.dropped_node;
  Alcotest.(check int) "other drop counters untouched" 0
    ((Net.stats net).Net.dropped_loss + (Net.stats net).Net.dropped_fault);
  let node_drops =
    List.filter
      (fun (e : Event.t) ->
        match e.Event.body with
        | Event.Drop { reason = Event.Node_fault; _ } -> true
        | _ -> false)
      (Obs.Trace.events trace)
  in
  Alcotest.(check int) "one Node_fault drop event" 1 (List.length node_drops);
  (* heal restores delivery *)
  Net.set_node_fault_model net None;
  Alcotest.(check bool) "model cleared" true (Net.node_fault_model net = None);
  Net.send net ~src:0 ~dst:1 "after heal";
  Engine.run_all engine;
  Alcotest.(check int) "delivered after heal" 2 !got

let test_net_flapping_rejudged_at_delivery () =
  let engine, net = make_net () in
  let got = ref [] in
  Net.register net ~addr:1 (fun ~src:_ m -> got := (Engine.now engine, m) :: !got);
  Net.set_node_fault_model net
    (Some (NF.flapping ~period:100.0 ~duty:0.5 ~addrs:[ 1 ] ()));
  (* sent while the receiver is down and delivered while still down *)
  ignore (Engine.schedule_at engine ~time:10.0 (fun () -> Net.send net ~src:0 ~dst:1 "a"));
  (* sent while down but delivered after it comes back up: the receiver
     mute is re-judged at delivery time, like a host rebooting mid-flight *)
  ignore
    (Engine.schedule_at engine ~time:49.995 (fun () -> Net.send net ~src:0 ~dst:1 "b"));
  ignore (Engine.schedule_at engine ~time:60.0 (fun () -> Net.send net ~src:0 ~dst:1 "c"));
  Engine.run_all engine;
  Alcotest.(check (list string)) "only up-at-delivery messages arrive" [ "b"; "c" ]
    (List.rev_map snd !got);
  Alcotest.(check int) "one node drop" 1 (Net.stats net).Net.dropped_node

(* --------------------------------------------------------------- schedule *)

let test_schedule_node_fault_constructors () =
  Alcotest.(check string) "fail-slow label" "fail-slow x2 +0.1s 10% for 600s"
    (Schedule.fail_slow ~factor:2.0 ~extra:0.1 ~time:0.0 ~duration:600.0 0.1)
      .Schedule.label;
  Alcotest.(check string) "fail-silent label" "fail-silent 25% for 60s"
    (Schedule.fail_silent ~time:0.0 ~duration:60.0 0.25).Schedule.label;
  Alcotest.(check string) "flapping label" "flapping 30s/20% 50% for 120s"
    (Schedule.flapping ~time:0.0 ~duration:120.0 ~period:30.0 ~duty:0.2 0.5)
      .Schedule.label;
  Alcotest.check_raises "fail-slow needs a slowdown"
    (Invalid_argument "Schedule.node_fault: fail-slow parameters") (fun () ->
      ignore (Schedule.fail_slow ~time:0.0 ~duration:60.0 0.1));
  Alcotest.check_raises "bad duty"
    (Invalid_argument "Schedule.node_fault: flapping parameters") (fun () ->
      ignore (Schedule.flapping ~time:0.0 ~duration:60.0 ~period:30.0 ~duty:1.5 0.1));
  Alcotest.check_raises "bad fraction" (Invalid_argument "Schedule.node_fault: fraction")
    (fun () -> ignore (Schedule.fail_silent ~time:0.0 ~duration:60.0 1.5));
  Alcotest.check_raises "bad duration" (Invalid_argument "Schedule.node_fault: duration")
    (fun () -> ignore (Schedule.fail_silent ~time:0.0 ~duration:0.0 0.1))

let test_schedule_equal_timestamps_keep_insertion_order () =
  let evs =
    [
      Schedule.fail_silent ~label:"first" ~time:100.0 ~duration:10.0 0.1;
      Schedule.heal ~label:"second" 100.0;
      Schedule.crash_fraction ~label:"third" ~time:100.0 0.1;
      Schedule.heal ~label:"earlier" 50.0;
    ]
  in
  Alcotest.(check (list string)) "stable sort: ties stay in insertion order"
    [ "earlier"; "first"; "second"; "third" ]
    (List.map (fun (e : Schedule.event) -> e.Schedule.label) (Schedule.sorted evs))

let flat_config ?(lookup_rate = 0.3) ?(seed = 9) ?(fault_schedule = []) ?(e2e = 0) () =
  {
    Sim.default_config with
    topology = Sim.Flat 0.02;
    lookup_rate;
    seed;
    warmup = 0.0;
    window = 60.0;
    fault_schedule;
    pastry = { Sim.default_config.Sim.pastry with Config.e2e_lookup_retries = e2e };
  }

let spawn_overlay live ~n =
  for i = 0 to n - 1 do
    Live.spawn_at live ~time:(float_of_int i *. 5.0) ()
  done

let test_live_heal_before_overlay_is_noop () =
  (* a Heal scheduled before a node-fault overlay clears nothing and does
     not cancel the later injection: the overlay still installs at its
     own timestamp and still self-heals after its duration *)
  let schedule =
    [
      Schedule.heal ~label:"early-heal" 300.0;
      Schedule.fail_silent ~label:"late-fault" ~time:400.0 ~duration:100.0 0.2;
    ]
  in
  let live = Live.create (flat_config ~fault_schedule:schedule ()) ~n_endpoints:16 in
  spawn_overlay live ~n:8;
  Live.run_until live 350.0;
  Alcotest.(check bool) "no model after early heal" true
    (Net.node_fault_model (Live.net live) = None);
  Live.run_until live 450.0;
  Alcotest.(check bool) "overlay installed despite earlier heal" true
    (Net.node_fault_model (Live.net live) <> None);
  Live.run_until live 550.0;
  Alcotest.(check bool) "overlay self-healed after duration" true
    (Net.node_fault_model (Live.net live) = None)

(* ----------------------------------------- suspicion list (scripted node) *)

type script = {
  engine : Engine.t;
  mutable sent : (int * M.t) list;
  mutable delivered : M.lookup list;
}

let make_script () = { engine = Engine.create (); sent = []; delivered = [] }

let env_of s =
  {
    Node.now = (fun () -> Engine.now s.engine);
    send = (fun ~dst msg -> s.sent <- (dst, msg) :: s.sent);
    schedule = (fun ~delay fn -> Engine.schedule s.engine ~delay fn);
    cancel = (fun ev -> Engine.cancel s.engine ev);
    rng = Rng.create 42;
    deliver = (fun l -> s.delivered <- l :: s.delivered);
    forward = (fun ~prev:_ _ -> Node.Continue);
    on_active = (fun () -> ());
    on_join_failed = (fun () -> ());
    on_lookup_drop = (fun _ -> ());
  }

let hexid prefix =
  Nodeid.of_hex
    (prefix ^ String.concat "" (List.init (32 - String.length prefix) (fun _ -> "0")))

let sent_to s addr =
  List.filter_map (fun (d, m) -> if d = addr then Some m else None) (List.rev s.sent)

let advance s dt = Engine.run s.engine ~until:(Engine.now s.engine +. dt)

let cfg = Config.default

(* an active node with one leaf-set member [other] (addr 1) *)
let active_pair ?(cfg = cfg) () =
  let s = make_script () in
  let node = Node.create ~cfg ~env:(env_of s) ~id:(hexid "a0") ~addr:0 in
  Node.bootstrap node;
  let other = Peer.make (hexid "b0") 1 in
  Node.handle node ~src:1
    (M.make ~sender:other (M.Ls_probe { leaf = []; failed = []; trt = 30.0 }));
  s.sent <- [];
  (s, node, other)

let accuse s node ~(accuser : Peer.t) ~(accused : Peer.t) =
  Node.handle node ~src:accuser.Peer.addr
    (M.make ~sender:accuser
       (M.Ls_probe { leaf = []; failed = [ accused.Peer.id ]; trt = 30.0 }));
  (* let the verification probe exhaust its retries *)
  advance s (float_of_int (cfg.Config.max_probe_retries + 1) *. cfg.Config.t_out +. 1.0)

let test_suspicion_negative_caching () =
  let s, node, other = active_pair () in
  let third = Peer.make (hexid "c0") 2 in
  Node.handle node ~src:2
    (M.make ~sender:third (M.Ls_probe { leaf = []; failed = []; trt = 30.0 }));
  s.sent <- [];
  accuse s node ~accuser:other ~accused:third;
  Alcotest.(check (list string)) "quarantined after probe retries exhausted"
    [ Nodeid.to_hex third.Peer.id ]
    (List.map Nodeid.to_hex (Node.suspected_set node));
  (* gossip cannot reinstall a quarantined peer: a leaf-set candidate list
     naming it must not trigger an admission probe *)
  s.sent <- [];
  Node.handle node ~src:1
    (M.make ~sender:other (M.Ls_probe { leaf = [ third ]; failed = []; trt = 30.0 }));
  advance s 1.0;
  Alcotest.(check int) "no probe sent to the quarantined peer" 0
    (List.length (sent_to s 2));
  Alcotest.(check bool) "still not in leafset" false
    (Pastry.Leafset.mem (Node.leafset node) third.Peer.id);
  (* the entry expires after the initial backoff, and expiry actively
     revalidates: the node re-probes the quarantined peer itself rather
     than waiting for gossip that may never name it again *)
  s.sent <- [];
  advance s (cfg.Config.suspicion_backoff +. 1.0);
  Alcotest.(check (list string)) "expired" []
    (List.map Nodeid.to_hex (Node.suspected_set node));
  Alcotest.(check bool) "revalidation probe sent at expiry" true
    (List.length (sent_to s 2) > 0);
  (* the revalidation probe times out too, and the relapse doubles the
     backoff — after one more initial-backoff period it is still
     quarantined, and only a direct message from the peer clears it *)
  advance s (float_of_int (cfg.Config.max_probe_retries + 1) *. cfg.Config.t_out +. 1.0);
  advance s (cfg.Config.suspicion_backoff +. 1.0);
  Alcotest.(check int) "still quarantined after one backoff (doubled)" 1
    (List.length (Node.suspected_set node));
  Node.handle node ~src:2
    (M.make ~sender:third (M.Ls_probe { leaf = []; failed = []; trt = 30.0 }));
  Alcotest.(check (list string)) "direct contact clears the quarantine" []
    (List.map Nodeid.to_hex (Node.suspected_set node))

let test_probe_volley_escalation () =
  let cfg = { cfg with Config.probe_volley = 4 } in
  let s, node, other = active_pair ~cfg () in
  let third = Peer.make (hexid "c0") 2 in
  Node.handle node ~src:2
    (M.make ~sender:third (M.Ls_probe { leaf = []; failed = []; trt = 30.0 }));
  s.sent <- [];
  (* an accusation triggers a verification probe; the target never
     answers, so each retry escalates the packet train *)
  Node.handle node ~src:1
    (M.make ~sender:other
       (M.Ls_probe { leaf = []; failed = [ third.Peer.id ]; trt = 30.0 }));
  let probes () =
    List.length
      (List.filter
         (fun m -> match m.M.payload with M.Ls_probe _ -> true | _ -> false)
         (sent_to s 2))
  in
  Alcotest.(check int) "first transmission is a single packet" 1 (probes ());
  advance s (cfg.Config.t_out +. 0.1);
  Alcotest.(check int) "first retry escalates to volley^1" (1 + 4) (probes ());
  advance s cfg.Config.t_out;
  Alcotest.(check int) "second retry escalates to volley^2" (1 + 4 + 16) (probes ())

(* --------------------------------------------------- end-to-end retries *)

let test_e2e_retry_and_ack () =
  let cfg = { cfg with Config.e2e_lookup_retries = 2 } in
  let s, node, other = active_pair ~cfg () in
  let trace = Obs.Trace.create (Obs.Sink.memory ~capacity:1000) in
  Node.set_trace node trace;
  Node.lookup node ~key:(hexid "b0") ~seq:77;
  Alcotest.(check int) "e2e state installed" 1 (Node.pending_e2e node);
  advance s 30.0;
  let retries =
    List.filter
      (fun (e : Event.t) ->
        match e.Event.body with Event.Lookup_retry { seq = 77; _ } -> true | _ -> false)
      (Obs.Trace.events trace)
  in
  Alcotest.(check int) "retried e2e up to the budget" 2 (List.length retries);
  Alcotest.(check int) "gave up after the budget" 0 (Node.pending_e2e node);
  (* a fresh lookup acked end-to-end stands down without retrying *)
  Node.lookup node ~key:(hexid "b0") ~seq:78;
  Node.handle node ~src:1 (M.make ~sender:other (M.Lookup_ack { seq = 78 }));
  Alcotest.(check int) "receipt clears pending state" 0 (Node.pending_e2e node);
  advance s 30.0;
  let retries78 =
    List.filter
      (fun (e : Event.t) ->
        match e.Event.body with Event.Lookup_retry { seq = 78; _ } -> true | _ -> false)
      (Obs.Trace.events trace)
  in
  Alcotest.(check int) "no retry after receipt" 0 (List.length retries78)

let test_root_dedup_and_receipt () =
  let cfg = { cfg with Config.e2e_lookup_retries = 2 } in
  let s = make_script () in
  let node = Node.create ~cfg ~env:(env_of s) ~id:(hexid "a0") ~addr:0 in
  Node.bootstrap node;
  let origin = Peer.make (hexid "b0") 1 in
  let l =
    { M.key = hexid "a0"; seq = 5; origin; hops = 2; retx = false; reliable = true }
  in
  Node.handle node ~src:1 (M.make ~sender:origin (M.Lookup l));
  Node.handle node ~src:1 (M.make ~sender:origin (M.Lookup { l with M.retx = true }));
  Alcotest.(check int) "duplicate delivery suppressed at the root" 1
    (List.length s.delivered);
  let acks =
    List.filter
      (fun m -> match m.M.payload with M.Lookup_ack { seq = 5 } -> true | _ -> false)
      (sent_to s 1)
  in
  Alcotest.(check int) "every copy is (re-)acked to the origin" 2 (List.length acks)

let test_root_dedup_off_by_default () =
  (* with e2e retries off (the default), delivery behaviour is unchanged:
     duplicates reach the application and no receipts are sent *)
  let s = make_script () in
  let node = Node.create ~cfg ~env:(env_of s) ~id:(hexid "a0") ~addr:0 in
  Node.bootstrap node;
  let origin = Peer.make (hexid "b0") 1 in
  let l =
    { M.key = hexid "a0"; seq = 5; origin; hops = 2; retx = false; reliable = true }
  in
  Node.handle node ~src:1 (M.make ~sender:origin (M.Lookup l));
  Node.handle node ~src:1 (M.make ~sender:origin (M.Lookup { l with M.retx = true }));
  Alcotest.(check int) "duplicates delivered (baseline semantics)" 2
    (List.length s.delivered);
  let acks =
    List.filter
      (fun m -> match m.M.payload with M.Lookup_ack _ -> true | _ -> false)
      (sent_to s 1)
  in
  Alcotest.(check int) "no receipts" 0 (List.length acks)

(* ------------------------------------------------------- obs event roundtrip *)

let test_event_roundtrip () =
  let events =
    [
      { Event.time = 1.5; body = Event.Suspected { addr = 3; target = 9; backoff = 60.0 } };
      { Event.time = 2.5; body = Event.Unsuspected { addr = 3; target = 9 } };
      { Event.time = 3.5; body = Event.Lookup_retry { seq = 41; addr = 3; attempt = 2 } };
      {
        Event.time = 4.5;
        body = Event.Drop { src = 1; dst = 2; cls = "lookup"; seq = Some 7; reason = Event.Node_fault };
      };
    ]
  in
  List.iter
    (fun ev ->
      match Event.of_json (Event.to_json ev) with
      | Ok ev' -> Alcotest.(check bool) (Event.kind_name ev ^ " roundtrips") true (ev = ev')
      | Error e -> Alcotest.failf "%s does not roundtrip: %s" (Event.kind_name ev) e)
    events;
  Alcotest.(check (list string)) "kind names"
    [ "suspected"; "unsuspected"; "lookup-retry"; "drop" ]
    (List.map Event.kind_name events)

(* ------------------------------------------------------- collector metrics *)

let test_collector_detector_metrics () =
  let c = Collector.create ~window:60.0 () in
  Collector.suspicion_recorded c ~time:10.0 ~target_alive:true;
  Collector.suspicion_recorded c ~time:20.0 ~target_alive:false;
  Collector.suspicion_recorded c ~time:30.0 ~target_alive:true;
  Collector.crash_detected c ~time:25.0 ~latency:12.0;
  Collector.crash_detected c ~time:35.0 ~latency:18.0;
  let s = Collector.summary c in
  Alcotest.(check int) "suspicions" 3 s.Collector.suspicions;
  Alcotest.(check int) "false suspicions" 2 s.Collector.false_suspicions;
  Alcotest.(check (float 1e-9)) "false rate" (2.0 /. 3.0) s.Collector.false_suspicion_rate;
  Alcotest.(check int) "crashes detected" 2 s.Collector.crashes_detected;
  Alcotest.(check (float 1e-9)) "mean time-to-detect" 15.0 s.Collector.detect_latency_mean;
  (* interval filtering *)
  let s = Collector.summary ~since:15.0 ~until:28.0 c in
  Alcotest.(check int) "windowed suspicions" 1 s.Collector.suspicions;
  Alcotest.(check int) "windowed false suspicions" 0 s.Collector.false_suspicions;
  Alcotest.(check int) "windowed detections" 1 s.Collector.crashes_detected;
  Alcotest.(check (float 1e-9)) "windowed TTD" 12.0 s.Collector.detect_latency_mean

(* -------------------------------------------- live ground-truth scoring *)

let test_live_fail_silent_suspicions_and_ttd () =
  let live = Live.create (flat_config ()) ~n_endpoints:16 in
  spawn_overlay live ~n:10;
  Live.run_until live 300.0;
  (* a fail-silent victim is alive (still registered): every suspicion of
     it is a false suspicion against ground truth *)
  Live.inject live
    (Schedule.fail_silent ~label:"mute" ~time:300.0 ~duration:400.0 0.1);
  Live.run_until live 700.0;
  let s = Collector.summary (Live.collector live) in
  Alcotest.(check bool) "victim's sends were swallowed" true
    ((Net.stats (Live.net live)).Net.dropped_node > 0);
  Alcotest.(check bool) "the silent-but-alive node got suspected" true
    (s.Collector.false_suspicions > 0);
  Alcotest.(check int) "no true crash detected yet" 0 s.Collector.crashes_detected;
  (* now a real (non-graceful) crash: detection latency is measured from
     the crash instant to the first suspicion anywhere in the overlay *)
  Live.inject live (Schedule.crash_fraction ~label:"crash" ~time:700.0 0.2);
  Live.run_until live 1100.0;
  let s = Collector.summary (Live.collector live) in
  Alcotest.(check bool) "true crashes detected" true (s.Collector.crashes_detected > 0);
  Alcotest.(check bool) "positive detection latency" true
    (s.Collector.detect_latency_mean > 0.0)

let test_live_e2e_retries_raise_success_under_loss () =
  let run e2e =
    let live =
      Live.create (flat_config ~lookup_rate:0.5 ~seed:21 ~e2e ()) ~n_endpoints:16
    in
    spawn_overlay live ~n:10;
    Live.run_until live 900.0;
    (Collector.summary ~until:850.0 (Live.collector live)).Collector.success_rate
  in
  (* heavy uniform loss; same seed and workload either way *)
  let with_loss e2e =
    let live =
      Live.create
        { (flat_config ~lookup_rate:0.5 ~seed:21 ~e2e ()) with Sim.loss_rate = 0.25 }
        ~n_endpoints:16
    in
    spawn_overlay live ~n:10;
    Live.run_until live 900.0;
    (Collector.summary ~until:850.0 (Live.collector live)).Collector.success_rate
  in
  let baseline = run 0 in
  Alcotest.(check bool) "lossless baseline succeeds" true (baseline >= 0.99);
  (* under very heavy loss the residual failures are wrong-root
     deliveries (the deliverer believes it is the root and acks), which
     no amount of re-sending fixes — so the check is a solid improvement,
     not perfection; the >= 99% acceptance bar lives in the bursty-loss
     experiment at realistic loss rates (EXPERIMENTS.md E-faults B') *)
  let s0 = with_loss 0 and s3 = with_loss 3 in
  Alcotest.(check bool)
    (Printf.sprintf "retries improve end-to-end success (%.4f -> %.4f)" s0 s3)
    true
    (s3 > s0 && s3 >= 0.9)

let suite =
  [
    ( "nodefaults",
      [
        Alcotest.test_case "fail-slow model" `Quick test_fail_slow_model;
        Alcotest.test_case "fail-silent model" `Quick test_fail_silent_model;
        Alcotest.test_case "flapping model" `Quick test_flapping_model;
        Alcotest.test_case "compose model" `Quick test_compose_model;
        Alcotest.test_case "net fail-slow delay" `Quick test_net_fail_slow_delay;
        Alcotest.test_case "net fail-silent" `Quick test_net_fail_silent;
        Alcotest.test_case "net flapping re-judged at delivery" `Quick
          test_net_flapping_rejudged_at_delivery;
        Alcotest.test_case "schedule node-fault constructors" `Quick
          test_schedule_node_fault_constructors;
        Alcotest.test_case "schedule equal timestamps keep insertion order" `Quick
          test_schedule_equal_timestamps_keep_insertion_order;
        Alcotest.test_case "live heal before overlay is a no-op" `Slow
          test_live_heal_before_overlay_is_noop;
        Alcotest.test_case "suspicion negative caching" `Quick
          test_suspicion_negative_caching;
        Alcotest.test_case "probe volley escalation" `Quick
          test_probe_volley_escalation;
        Alcotest.test_case "e2e retry and ack" `Quick test_e2e_retry_and_ack;
        Alcotest.test_case "root dedup and receipt" `Quick test_root_dedup_and_receipt;
        Alcotest.test_case "root dedup off by default" `Quick
          test_root_dedup_off_by_default;
        Alcotest.test_case "new events roundtrip" `Quick test_event_roundtrip;
        Alcotest.test_case "collector detector metrics" `Quick
          test_collector_detector_metrics;
        Alcotest.test_case "live fail-silent suspicions and TTD" `Slow
          test_live_fail_silent_suspicions_and_ttd;
        Alcotest.test_case "live e2e retries raise success under loss" `Slow
          test_live_e2e_retries_raise_success_under_loss;
      ] );
  ]
