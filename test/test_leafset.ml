module Nodeid = Pastry.Nodeid
module Peer = Pastry.Peer
module Leafset = Pastry.Leafset
module Rng = Repro_util.Rng

let peer i = Peer.make (Nodeid.of_int i) i

let ls ?(l = 8) me_i =
  Leafset.create ~l ~me:(peer me_i)

let ids_of peers = List.map (fun p -> Nodeid.to_hex p.Peer.id) peers

let test_create_validation () =
  Alcotest.check_raises "odd l" (Invalid_argument "Leafset.create: l must be even and >= 2")
    (fun () -> ignore (ls ~l:3 0))

let test_add_remove_mem () =
  let t = ls 100 in
  Alcotest.(check bool) "added" true (Leafset.add t (peer 90));
  Alcotest.(check bool) "mem" true (Leafset.mem t (Nodeid.of_int 90));
  Alcotest.(check bool) "duplicate" false (Leafset.add t (peer 90));
  Alcotest.(check bool) "self ignored" false (Leafset.add t (peer 100));
  Alcotest.(check bool) "removed" true (Leafset.remove t (Nodeid.of_int 90));
  Alcotest.(check bool) "gone" false (Leafset.mem t (Nodeid.of_int 90));
  Alcotest.(check bool) "remove absent" false (Leafset.remove t (Nodeid.of_int 90))

let test_neighbor_ordering () =
  (* me=100; ring neighbours 90,95 (left) and 105,110 (right); l=4 keeps
     the sides exact (larger l would wrap this tiny ring) *)
  let t = ls ~l:4 100 in
  List.iter (fun i -> ignore (Leafset.add t (peer i))) [ 90; 110; 95; 105 ];
  let get = function Some p -> p.Peer.addr | None -> -1 in
  Alcotest.(check int) "left neighbor" 95 (get (Leafset.left_neighbor t));
  Alcotest.(check int) "right neighbor" 105 (get (Leafset.right_neighbor t));
  Alcotest.(check int) "leftmost" 90 (get (Leafset.leftmost t));
  Alcotest.(check int) "rightmost" 110 (get (Leafset.rightmost t))

let test_capacity_trim () =
  (* l=4 -> 2 per side; the closest two on each side must win *)
  let t = ls ~l:4 100 in
  List.iter (fun i -> ignore (Leafset.add t (peer i))) [ 80; 90; 95; 105; 110; 120 ];
  Alcotest.(check int) "left size" 2 (Leafset.left_size t);
  Alcotest.(check int) "right size" 2 (Leafset.right_size t);
  Alcotest.(check bool) "80 evicted" false (Leafset.mem t (Nodeid.of_int 80));
  Alcotest.(check bool) "95 kept" true (Leafset.mem t (Nodeid.of_int 95));
  Alcotest.(check bool) "120 evicted" false (Leafset.mem t (Nodeid.of_int 120))

let test_wrap_small_ring () =
  (* 3-node ring with l=8: all other nodes appear on both sides *)
  let t = ls 100 in
  ignore (Leafset.add t (peer 10));
  ignore (Leafset.add t (peer 200));
  Alcotest.(check bool) "wraps" true (Leafset.wraps t);
  Alcotest.(check bool) "complete via wrap" true (Leafset.complete t);
  Alcotest.(check int) "two distinct members" 2 (Leafset.size t)

let test_complete () =
  let t = ls ~l:4 100 in
  Alcotest.(check bool) "empty is complete (singleton)" true (Leafset.complete t);
  ignore (Leafset.add t (peer 90));
  (* one member, appears on both sides -> wrap -> complete *)
  Alcotest.(check bool) "two-node ring complete" true (Leafset.complete t);
  (* large ring: fill both sides *)
  let t = ls ~l:4 1000 in
  List.iter
    (fun i -> ignore (Leafset.add t (peer i)))
    [ 900; 950; 1050; 1100; 10; 2000; 3000; 4000; 5000 ];
  Alcotest.(check bool) "full sides complete" true (Leafset.complete t)

let test_covers () =
  let t = ls ~l:4 100 in
  List.iter (fun i -> ignore (Leafset.add t (peer i))) [ 80; 90; 110; 120; 150; 60 ];
  Alcotest.(check bool) "inside arc" true (Leafset.covers t (Nodeid.of_int 105));
  Alcotest.(check bool) "at me" true (Leafset.covers t (Nodeid.of_int 100));
  Alcotest.(check bool) "outside" false (Leafset.covers t (Nodeid.of_int 500));
  (* singleton covers everything *)
  let t1 = ls 5 in
  Alcotest.(check bool) "singleton covers" true (Leafset.covers t1 (Nodeid.of_int 99999))

let test_closest () =
  let t = ls ~l:8 100 in
  List.iter (fun i -> ignore (Leafset.add t (peer i))) [ 90; 95; 105; 110 ];
  Alcotest.(check int) "key 104 -> 105" 105 (Leafset.closest t (Nodeid.of_int 104)).Peer.addr;
  Alcotest.(check int) "key 99 -> me" 100 (Leafset.closest t (Nodeid.of_int 99)).Peer.addr;
  Alcotest.(check int) "key 92 -> 90 (tie: smaller id)" 90
    (Leafset.closest t (Nodeid.of_int 92)).Peer.addr

let test_closest_excluding () =
  let t = ls ~l:8 100 in
  List.iter (fun i -> ignore (Leafset.add t (peer i))) [ 90; 95; 105; 110 ];
  let excl id = Nodeid.equal id (Nodeid.of_int 105) in
  match Leafset.closest_excluding t (Nodeid.of_int 104) ~excluded:excl with
  | Some p -> Alcotest.(check bool) "next best" true (p.Peer.addr = 100 || p.Peer.addr = 110)
  | None -> Alcotest.fail "expected candidate"

let test_would_admit_matches_add () =
  let rng = Rng.create 55 in
  for _ = 1 to 100 do
    let me = Nodeid.random rng in
    let t = Leafset.create ~l:8 ~me:(Peer.make me 0) in
    for k = 1 to 12 do
      ignore (Leafset.add t (Peer.make (Nodeid.random rng) k))
    done;
    let candidate = Nodeid.random rng in
    let predicted = Leafset.would_admit t candidate in
    let actual = Leafset.add t (Peer.make candidate 99) in
    Alcotest.(check bool) "would_admit = add changes" predicted actual
  done

let test_members_dedup () =
  let t = ls 100 in
  ignore (Leafset.add t (peer 10));
  ignore (Leafset.add t (peer 200));
  (* both appear on both sides; members must be distinct *)
  let ms = List.sort_uniq compare (ids_of (Leafset.members t)) in
  Alcotest.(check int) "distinct" (List.length ms) (List.length (Leafset.members t))

(* brute-force oracle comparison for closest *)
let qcheck_closest_oracle =
  QCheck.Test.make ~name:"closest matches brute force" ~count:200
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 1 12) small_int))
    (fun (seed, _) ->
      let rng = Rng.create seed in
      let me = Nodeid.random rng in
      let t = Leafset.create ~l:32 ~me:(Peer.make me 0) in
      let members = List.init 10 (fun k -> Peer.make (Nodeid.random rng) (k + 1)) in
      List.iter (fun p -> ignore (Leafset.add t p)) members;
      let key = Nodeid.random rng in
      let best = Leafset.closest t key in
      (* with l=32 and 10 members nothing is evicted: compare against all *)
      List.for_all
        (fun p ->
          Peer.equal p best || not (Nodeid.closer ~key p.Peer.id best.Peer.id))
        (Peer.make me 0 :: members))

(* model-based check: after any sequence of adds, each side must equal
   the closest-per-side prefix of a naive sorted model. (Removals are
   excluded on purpose: a real leaf set cannot resurrect nodes it evicted
   earlier, so after a removal it legitimately knows less than the
   model.) *)
let qcheck_model_sides =
  QCheck.Test.make ~name:"sides match naive model" ~count:200 QCheck.int (fun seed ->
      let rng = Rng.create seed in
      let me = Nodeid.random rng in
      let l = 8 in
      let t = Leafset.create ~l ~me:(Peer.make me 0) in
      let model = Hashtbl.create 16 in
      let ops = 30 + Rng.int rng 30 in
      for k = 1 to ops do
        let id = Nodeid.random rng in
        if not (Nodeid.equal id me) then begin
          ignore (Leafset.add t (Peer.make id k));
          Hashtbl.replace model id ()
        end
      done;
      let ids = Hashtbl.fold (fun id () acc -> id :: acc) model [] in
      let by_cw =
        List.sort
          (fun a b -> Nodeid.compare (Nodeid.cw_dist me a) (Nodeid.cw_dist me b))
          ids
      in
      let by_ccw =
        List.sort
          (fun a b -> Nodeid.compare (Nodeid.cw_dist a me) (Nodeid.cw_dist b me))
          ids
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: r -> x :: take (n - 1) r
      in
      let expect_right = take (l / 2) by_cw and expect_left = take (l / 2) by_ccw in
      (* leaf set must contain exactly the union of the two prefixes *)
      let expected =
        List.sort_uniq Nodeid.compare (expect_left @ expect_right)
      in
      let actual =
        List.sort_uniq Nodeid.compare
          (List.map (fun p -> p.Peer.id) (Leafset.members t))
      in
      List.length expected = List.length actual
      && List.for_all2 Nodeid.equal expected actual)

let suite =
  [
    ( "leafset",
      [
        Alcotest.test_case "create validation" `Quick test_create_validation;
        Alcotest.test_case "add/remove/mem" `Quick test_add_remove_mem;
        Alcotest.test_case "neighbor ordering" `Quick test_neighbor_ordering;
        Alcotest.test_case "capacity trim" `Quick test_capacity_trim;
        Alcotest.test_case "wrap on small ring" `Quick test_wrap_small_ring;
        Alcotest.test_case "completeness" `Quick test_complete;
        Alcotest.test_case "covers" `Quick test_covers;
        Alcotest.test_case "closest with tie-break" `Quick test_closest;
        Alcotest.test_case "closest excluding" `Quick test_closest_excluding;
        Alcotest.test_case "would_admit matches add" `Quick test_would_admit_matches_add;
        Alcotest.test_case "members dedup" `Quick test_members_dedup;
        QCheck_alcotest.to_alcotest qcheck_closest_oracle;
        QCheck_alcotest.to_alcotest qcheck_model_sides;
      ] );
  ]
