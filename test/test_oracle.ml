module Oracle = Harness.Oracle
module Nodeid = Pastry.Nodeid
module Rng = Repro_util.Rng

let test_empty () =
  let o = Oracle.create () in
  Alcotest.(check int) "size" 0 (Oracle.size o);
  Alcotest.(check bool) "closest none" true (Oracle.closest o (Nodeid.of_int 5) = None)

let test_add_remove () =
  let o = Oracle.create () in
  Oracle.add o (Nodeid.of_int 10) 1;
  Oracle.add o (Nodeid.of_int 20) 2;
  Alcotest.(check int) "size" 2 (Oracle.size o);
  Alcotest.(check bool) "mem" true (Oracle.mem o (Nodeid.of_int 10));
  Oracle.remove o (Nodeid.of_int 10);
  Alcotest.(check bool) "removed" false (Oracle.mem o (Nodeid.of_int 10));
  Alcotest.(check int) "size" 1 (Oracle.size o)

let test_closest_simple () =
  let o = Oracle.create () in
  Oracle.add o (Nodeid.of_int 10) 1;
  Oracle.add o (Nodeid.of_int 100) 2;
  (match Oracle.closest o (Nodeid.of_int 12) with
  | Some (_, addr) -> Alcotest.(check int) "nearest" 1 addr
  | None -> Alcotest.fail "expected owner");
  match Oracle.closest o (Nodeid.of_int 90) with
  | Some (_, addr) -> Alcotest.(check int) "nearest" 2 addr
  | None -> Alcotest.fail "expected owner"

let test_closest_wraps () =
  let o = Oracle.create () in
  (* nodes near both ends of the id space; a key at the very top should
     wrap to the low node if it is ring-closer *)
  Oracle.add o (Nodeid.of_int 5) 1;
  let high = Nodeid.sub Nodeid.zero (Nodeid.of_int 100) in
  Oracle.add o high 2;
  (* key = -2 mod 2^128: distance 7 to node 5 (wrapping), 98 to high *)
  let key = Nodeid.sub Nodeid.zero (Nodeid.of_int 2) in
  match Oracle.closest o key with
  | Some (_, addr) -> Alcotest.(check int) "wrapped" 1 addr
  | None -> Alcotest.fail "expected owner"

let test_closest_tiebreak () =
  let o = Oracle.create () in
  Oracle.add o (Nodeid.of_int 8) 1;
  Oracle.add o (Nodeid.of_int 12) 2;
  (* key 10 equidistant: numerically smaller id (8) wins, matching
     Nodeid.closer *)
  match Oracle.closest o (Nodeid.of_int 10) with
  | Some (_, addr) -> Alcotest.(check int) "tie to smaller id" 1 addr
  | None -> Alcotest.fail "expected owner"

let qcheck_matches_bruteforce =
  QCheck.Test.make ~name:"oracle matches brute force" ~count:300 QCheck.int (fun seed ->
      let rng = Rng.create seed in
      let o = Oracle.create () in
      let n = 1 + Rng.int rng 20 in
      let ids = List.init n (fun k -> (Nodeid.random rng, k)) in
      List.iter (fun (id, a) -> Oracle.add o id a) ids;
      let key = Nodeid.random rng in
      match Oracle.closest o key with
      | None -> false
      | Some (best, _) ->
          List.for_all
            (fun (id, _) -> Nodeid.equal id best || not (Nodeid.closer ~key id best))
            ids)

(* ------------------------------------------------------- ring audit *)

let ring3 () =
  let o = Oracle.create () in
  Oracle.add o (Nodeid.of_int 10) 1;
  Oracle.add o (Nodeid.of_int 20) 2;
  Oracle.add o (Nodeid.of_int 30) 3;
  o

(* the true (left, right) = (predecessor, successor) neighbours of the
   sorted ring 10 -> 20 -> 30 (with wrap) *)
let truth = function
  | 1 -> Some (Some (Nodeid.of_int 30), Some (Nodeid.of_int 20))
  | 2 -> Some (Some (Nodeid.of_int 10), Some (Nodeid.of_int 30))
  | 3 -> Some (Some (Nodeid.of_int 20), Some (Nodeid.of_int 10))
  | _ -> None

let test_ring_audit_consistent () =
  let a = Oracle.ring_audit (ring3 ()) ~neighbors:truth in
  Alcotest.(check int) "audited" 3 a.Oracle.audited;
  Alcotest.(check int) "left all ok" 3 a.Oracle.left_ok;
  Alcotest.(check int) "right all ok" 3 a.Oracle.right_ok;
  Alcotest.(check (float 1e-9)) "full agreement" 1.0 a.Oracle.agreement

let test_ring_audit_disagreement () =
  (* node 2 is confused about its left neighbour *)
  let lie addr =
    if addr = 2 then Some (Some (Nodeid.of_int 30), Some (Nodeid.of_int 30))
    else truth addr
  in
  let a = Oracle.ring_audit (ring3 ()) ~neighbors:lie in
  Alcotest.(check int) "left wrong once" 2 a.Oracle.left_ok;
  Alcotest.(check int) "right intact" 3 a.Oracle.right_ok;
  Alcotest.(check (float 1e-9)) "5/6 agreement" (5.0 /. 6.0) a.Oracle.agreement

let test_ring_audit_skips () =
  (* an unauditable node (e.g. not yet active) is excluded, not failed *)
  let partial addr = if addr = 3 then None else truth addr in
  let a = Oracle.ring_audit (ring3 ()) ~neighbors:partial in
  Alcotest.(check int) "audited" 2 a.Oracle.audited;
  Alcotest.(check (float 1e-9)) "agreement over audited" 1.0 a.Oracle.agreement

let test_ring_audit_singleton_and_empty () =
  let o = Oracle.create () in
  let a = Oracle.ring_audit o ~neighbors:(fun _ -> Some (None, None)) in
  Alcotest.(check int) "empty audits nothing" 0 a.Oracle.audited;
  Alcotest.(check (float 1e-9)) "vacuous agreement" 1.0 a.Oracle.agreement;
  Oracle.add o (Nodeid.of_int 10) 1;
  (* a singleton ring has no neighbours; claiming one is a disagreement *)
  let a1 = Oracle.ring_audit o ~neighbors:(fun _ -> Some (None, None)) in
  Alcotest.(check (float 1e-9)) "singleton agrees on None" 1.0 a1.Oracle.agreement;
  let a2 =
    Oracle.ring_audit o ~neighbors:(fun _ ->
        Some (Some (Nodeid.of_int 99), None))
  in
  Alcotest.(check (float 1e-9)) "phantom neighbour flagged" 0.5 a2.Oracle.agreement

let qcheck_ring_audit_truth =
  QCheck.Test.make ~name:"ring audit accepts ground truth" ~count:200 QCheck.int
    (fun seed ->
      let rng = Rng.create seed in
      let o = Oracle.create () in
      let n = 2 + Rng.int rng 20 in
      let ids = Array.init n (fun k -> (Nodeid.random rng, k)) in
      Array.iter (fun (id, a) -> Oracle.add o id a) ids;
      (* ground truth by brute force over the sorted id list *)
      let sorted = Array.map fst ids in
      Array.sort Nodeid.compare sorted;
      let index_of id =
        let r = ref (-1) in
        Array.iteri (fun i x -> if Nodeid.equal x id then r := i) sorted;
        !r
      in
      let neighbors addr =
        let id = fst ids.(addr) in
        let i = index_of id in
        Some
          ( Some sorted.((i + n - 1) mod n),
            Some sorted.((i + 1) mod n) )
      in
      let a = Oracle.ring_audit o ~neighbors in
      a.Oracle.audited = n && a.Oracle.agreement = 1.0)

let suite =
  [
    ( "oracle",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "add/remove" `Quick test_add_remove;
        Alcotest.test_case "closest simple" `Quick test_closest_simple;
        Alcotest.test_case "closest wraps" `Quick test_closest_wraps;
        Alcotest.test_case "closest tie-break" `Quick test_closest_tiebreak;
        QCheck_alcotest.to_alcotest qcheck_matches_bruteforce;
        Alcotest.test_case "ring audit consistent" `Quick test_ring_audit_consistent;
        Alcotest.test_case "ring audit disagreement" `Quick test_ring_audit_disagreement;
        Alcotest.test_case "ring audit skips unauditable" `Quick test_ring_audit_skips;
        Alcotest.test_case "ring audit singleton/empty" `Quick
          test_ring_audit_singleton_and_empty;
        QCheck_alcotest.to_alcotest qcheck_ring_audit_truth;
      ] );
  ]
