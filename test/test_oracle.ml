module Oracle = Harness.Oracle
module Nodeid = Pastry.Nodeid
module Rng = Repro_util.Rng

let test_empty () =
  let o = Oracle.create () in
  Alcotest.(check int) "size" 0 (Oracle.size o);
  Alcotest.(check bool) "closest none" true (Oracle.closest o (Nodeid.of_int 5) = None)

let test_add_remove () =
  let o = Oracle.create () in
  Oracle.add o (Nodeid.of_int 10) 1;
  Oracle.add o (Nodeid.of_int 20) 2;
  Alcotest.(check int) "size" 2 (Oracle.size o);
  Alcotest.(check bool) "mem" true (Oracle.mem o (Nodeid.of_int 10));
  Oracle.remove o (Nodeid.of_int 10);
  Alcotest.(check bool) "removed" false (Oracle.mem o (Nodeid.of_int 10));
  Alcotest.(check int) "size" 1 (Oracle.size o)

let test_closest_simple () =
  let o = Oracle.create () in
  Oracle.add o (Nodeid.of_int 10) 1;
  Oracle.add o (Nodeid.of_int 100) 2;
  (match Oracle.closest o (Nodeid.of_int 12) with
  | Some (_, addr) -> Alcotest.(check int) "nearest" 1 addr
  | None -> Alcotest.fail "expected owner");
  match Oracle.closest o (Nodeid.of_int 90) with
  | Some (_, addr) -> Alcotest.(check int) "nearest" 2 addr
  | None -> Alcotest.fail "expected owner"

let test_closest_wraps () =
  let o = Oracle.create () in
  (* nodes near both ends of the id space; a key at the very top should
     wrap to the low node if it is ring-closer *)
  Oracle.add o (Nodeid.of_int 5) 1;
  let high = Nodeid.sub Nodeid.zero (Nodeid.of_int 100) in
  Oracle.add o high 2;
  (* key = -2 mod 2^128: distance 7 to node 5 (wrapping), 98 to high *)
  let key = Nodeid.sub Nodeid.zero (Nodeid.of_int 2) in
  match Oracle.closest o key with
  | Some (_, addr) -> Alcotest.(check int) "wrapped" 1 addr
  | None -> Alcotest.fail "expected owner"

let test_closest_tiebreak () =
  let o = Oracle.create () in
  Oracle.add o (Nodeid.of_int 8) 1;
  Oracle.add o (Nodeid.of_int 12) 2;
  (* key 10 equidistant: numerically smaller id (8) wins, matching
     Nodeid.closer *)
  match Oracle.closest o (Nodeid.of_int 10) with
  | Some (_, addr) -> Alcotest.(check int) "tie to smaller id" 1 addr
  | None -> Alcotest.fail "expected owner"

let qcheck_matches_bruteforce =
  QCheck.Test.make ~name:"oracle matches brute force" ~count:300 QCheck.int (fun seed ->
      let rng = Rng.create seed in
      let o = Oracle.create () in
      let n = 1 + Rng.int rng 20 in
      let ids = List.init n (fun k -> (Nodeid.random rng, k)) in
      List.iter (fun (id, a) -> Oracle.add o id a) ids;
      let key = Nodeid.random rng in
      match Oracle.closest o key with
      | None -> false
      | Some (best, _) ->
          List.for_all
            (fun (id, _) -> Nodeid.equal id best || not (Nodeid.closer ~key id best))
            ids)

let suite =
  [
    ( "oracle",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "add/remove" `Quick test_add_remove;
        Alcotest.test_case "closest simple" `Quick test_closest_simple;
        Alcotest.test_case "closest wraps" `Quick test_closest_wraps;
        Alcotest.test_case "closest tie-break" `Quick test_closest_tiebreak;
        QCheck_alcotest.to_alcotest qcheck_matches_bruteforce;
      ] );
  ]
