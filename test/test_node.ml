(* Protocol-level unit tests: a single MSPastry node against a scripted
   environment. Every message the node sends is captured; replies are
   injected by hand. This pins down the wire behaviour of Fig 2 and the
   §3-§4 mechanisms independently of the full simulator. *)

module Node = Mspastry.Node
module M = Mspastry.Message
module Config = Mspastry.Config
module Nodeid = Pastry.Nodeid
module Peer = Pastry.Peer
module Engine = Simkit.Engine

type script = {
  engine : Engine.t;
  mutable sent : (int * M.t) list; (* reverse order: (dst addr, message) *)
  mutable delivered : M.lookup list;
  mutable activations : int;
  mutable join_failures : int;
  mutable drops : M.lookup list;
}

let make_script () =
  {
    engine = Engine.create ();
    sent = [];
    delivered = [];
    activations = 0;
    join_failures = 0;
    drops = [];
  }

let env_of s =
  {
    Node.now = (fun () -> Engine.now s.engine);
    send = (fun ~dst msg -> s.sent <- (dst, msg) :: s.sent);
    schedule = (fun ~delay fn -> Engine.schedule s.engine ~delay fn);
    cancel = (fun ev -> Engine.cancel s.engine ev);
    rng = Repro_util.Rng.create 42;
    deliver = (fun l -> s.delivered <- l :: s.delivered);
    forward = (fun ~prev:_ _ -> Node.Continue);
    on_active = (fun () -> s.activations <- s.activations + 1);
    on_join_failed = (fun () -> s.join_failures <- s.join_failures + 1);
    on_lookup_drop = (fun l -> s.drops <- l :: s.drops);
  }

let cfg = Config.default

let hexid prefix =
  Nodeid.of_hex
    (prefix ^ String.concat "" (List.init (32 - String.length prefix) (fun _ -> "0")))

let take_sent s =
  let out = List.rev s.sent in
  s.sent <- [];
  out

let sent_to s addr =
  List.filter_map (fun (d, m) -> if d = addr then Some m else None) (take_sent s)

let payloads msgs = List.map (fun (m : M.t) -> m.M.payload) msgs

let advance s dt = Engine.run s.engine ~until:(Engine.now s.engine +. dt)

(* a fully-active node with one leaf-set member [other] *)
let active_pair () =
  let s = make_script () in
  let node = Node.create ~cfg ~env:(env_of s) ~id:(hexid "a0") ~addr:0 in
  Node.bootstrap node;
  let other = Peer.make (hexid "b0") 1 in
  Node.handle node ~src:1
    (M.make ~sender:other (M.Ls_probe { leaf = []; failed = []; trt = 30.0 }));
  s.sent <- [];
  (s, node, other)

(* ---------------- bootstrap and join ---------------- *)

let test_bootstrap_active () =
  let s = make_script () in
  let node = Node.create ~cfg ~env:(env_of s) ~id:(hexid "a0") ~addr:0 in
  Alcotest.(check bool) "inactive at birth" false (Node.is_active node);
  Node.bootstrap node;
  Alcotest.(check bool) "active" true (Node.is_active node);
  Alcotest.(check int) "on_active fired once" 1 s.activations;
  Node.bootstrap node;
  Alcotest.(check int) "idempotent" 1 s.activations

let test_join_sends_nn_request () =
  let s = make_script () in
  let node = Node.create ~cfg ~env:(env_of s) ~id:(hexid "a0") ~addr:0 in
  Node.join node ~bootstrap_addr:9;
  match take_sent s with
  | [ (9, { M.payload = M.Nn_request; _ }) ] -> ()
  | _ -> Alcotest.fail "expected a single Nn_request to the bootstrap"

let test_nn_reply_triggers_distance_probes () =
  let s = make_script () in
  let node = Node.create ~cfg ~env:(env_of s) ~id:(hexid "a0") ~addr:0 in
  Node.join node ~bootstrap_addr:9;
  s.sent <- [];
  let seed = Peer.make (hexid "b0") 9 in
  let leafmate = Peer.make (hexid "c0") 5 in
  Node.handle node ~src:9 (M.make ~sender:seed (M.Nn_reply { leaf = [ leafmate ] }));
  let probes =
    List.filter
      (fun (_, m) -> match m.M.payload with M.Distance_probe _ -> true | _ -> false)
      (take_sent s)
  in
  Alcotest.(check int) "one single-sample probe per target" 2 (List.length probes)

let test_nn_probe_replies_lead_to_join_request () =
  let s = make_script () in
  let node = Node.create ~cfg ~env:(env_of s) ~id:(hexid "a0") ~addr:0 in
  Node.join node ~bootstrap_addr:9;
  s.sent <- [];
  let seed = Peer.make (hexid "b0") 9 in
  Node.handle node ~src:9 (M.make ~sender:seed (M.Nn_reply { leaf = [] }));
  (* answer the distance probe *)
  let reply_probe (dst, (m : M.t)) =
    match m.M.payload with
    | M.Distance_probe { probe_seq } ->
        let from = if dst = 9 then seed else Peer.make (hexid "c0") dst in
        advance s 0.001;
        Node.handle node ~src:dst
          (M.make ~sender:from (M.Distance_probe_reply { probe_seq }))
    | _ -> ()
  in
  List.iter reply_probe (List.rev s.sent);
  (* the nn round asked the seed again or joined; drive one more round *)
  advance s 5.0;
  let rec drain rounds =
    if rounds > 5 then Alcotest.fail "nn never converged"
    else begin
      let msgs = take_sent s in
      let join =
        List.exists
          (fun (_, m) -> match m.M.payload with M.Join_request _ -> true | _ -> false)
          msgs
      in
      if join then ()
      else begin
        List.iter
          (fun (dst, (m : M.t)) ->
            match m.M.payload with
            | M.Nn_request ->
                Node.handle node ~src:dst (M.make ~sender:seed (M.Nn_reply { leaf = [] }))
            | M.Distance_probe { probe_seq } ->
                Node.handle node ~src:dst
                  (M.make ~sender:seed (M.Distance_probe_reply { probe_seq }))
            | _ -> ())
          msgs;
        advance s 1.0;
        drain (rounds + 1)
      end
    end
  in
  drain 0

let test_join_reply_probes_leafset () =
  let s = make_script () in
  let node = Node.create ~cfg ~env:(env_of s) ~id:(hexid "a0") ~addr:0 in
  Node.join node ~bootstrap_addr:9;
  s.sent <- [];
  let root = Peer.make (hexid "a1") 9 in
  let m1 = Peer.make (hexid "a2") 2 and m2 = Peer.make (hexid "9f") 3 in
  Node.handle node ~src:9
    (M.make ~sender:root (M.Join_reply { rows = []; leaf = [ root; m1; m2 ] }));
  Alcotest.(check bool) "not active before probes answered" false (Node.is_active node);
  let probed =
    List.filter_map
      (fun (dst, m) -> match m.M.payload with M.Ls_probe _ -> Some dst | _ -> None)
      (take_sent s)
  in
  Alcotest.(check (list int)) "probes all three members" [ 2; 3; 9 ]
    (List.sort compare probed)

let test_activation_after_all_probe_replies () =
  let s = make_script () in
  let node = Node.create ~cfg ~env:(env_of s) ~id:(hexid "a0") ~addr:0 in
  Node.join node ~bootstrap_addr:9;
  s.sent <- [];
  let root = Peer.make (hexid "a1") 9 in
  let m1 = Peer.make (hexid "a2") 2 in
  Node.handle node ~src:9
    (M.make ~sender:root (M.Join_reply { rows = []; leaf = [ root; m1 ] }));
  s.sent <- [];
  let members = [ root; m1 ] in
  let reply from =
    Node.handle node ~src:from.Peer.addr
      (M.make ~sender:from
         (M.Ls_probe_reply { leaf = members; failed = []; trt = 30.0 }))
  in
  reply root;
  Alcotest.(check bool) "still waiting for m1" false (Node.is_active node);
  reply m1;
  Alcotest.(check bool) "active once everyone agreed" true (Node.is_active node);
  Alcotest.(check int) "on_active" 1 s.activations

let test_join_retry_and_failure () =
  let s = make_script () in
  let node = Node.create ~cfg ~env:(env_of s) ~id:(hexid "a0") ~addr:0 in
  Node.join node ~bootstrap_addr:9;
  (* never answer anything; retries then gives up *)
  Engine.run s.engine
    ~until:(cfg.Config.join_retry_period *. float_of_int (cfg.Config.max_join_retries + 2));
  Alcotest.(check int) "join failed" 1 s.join_failures;
  Alcotest.(check bool) "node dead" false (Node.is_alive node);
  let nn_requests =
    List.filter
      (fun (_, m) -> match m.M.payload with M.Nn_request -> true | _ -> false)
      s.sent
  in
  Alcotest.(check int) "one attempt per retry"
    (cfg.Config.max_join_retries + 1)
    (List.length nn_requests)

(* ---------------- leaf-set probing (Fig 2) ---------------- *)

let test_ls_probe_gets_reply_and_insertion () =
  let s, node, other = active_pair () in
  Alcotest.(check bool) "sender inserted" true
    (Pastry.Leafset.mem (Node.leafset node) other.Peer.id);
  ignore (take_sent s);
  let third = Peer.make (hexid "c0") 2 in
  Node.handle node ~src:2
    (M.make ~sender:third (M.Ls_probe { leaf = []; failed = []; trt = 30.0 }));
  let to_third = sent_to s 2 in
  let has_reply =
    List.exists (function M.Ls_probe_reply _ -> true | _ -> false) (payloads to_third)
  in
  Alcotest.(check bool) "reply sent" true has_reply;
  Alcotest.(check bool) "third inserted" true
    (Pastry.Leafset.mem (Node.leafset node) third.Peer.id)

let test_ls_probe_candidates_probed_not_inserted () =
  let s, node, other = active_pair () in
  ignore (take_sent s);
  let unseen = Peer.make (hexid "c5") 7 in
  (* [other] gossips [unseen] in its leaf set *)
  Node.handle node ~src:1
    (M.make ~sender:other (M.Ls_probe { leaf = [ unseen ]; failed = []; trt = 30.0 }));
  Alcotest.(check bool) "anti-bounce: not inserted from hearsay" false
    (Pastry.Leafset.mem (Node.leafset node) unseen.Peer.id);
  let probed_unseen =
    List.exists (function M.Ls_probe _ -> true | _ -> false) (payloads (sent_to s 7))
  in
  Alcotest.(check bool) "probed before admission" true probed_unseen

let test_claimed_failure_is_verified () =
  let s, node, other = active_pair () in
  (* add a second member directly *)
  let third = Peer.make (hexid "c0") 2 in
  Node.handle node ~src:2
    (M.make ~sender:third (M.Ls_probe { leaf = []; failed = []; trt = 30.0 }));
  ignore (take_sent s);
  (* [other] claims [third] is dead *)
  Node.handle node ~src:1
    (M.make ~sender:other
       (M.Ls_probe { leaf = []; failed = [ third.Peer.id ]; trt = 30.0 }));
  Alcotest.(check bool) "evicted pending verification" false
    (Pastry.Leafset.mem (Node.leafset node) third.Peer.id);
  let verification =
    List.exists (function M.Ls_probe _ -> true | _ -> false) (payloads (sent_to s 2))
  in
  Alcotest.(check bool) "verification probe to the accused" true verification;
  (* the accused answers: it must be re-admitted *)
  Node.handle node ~src:2
    (M.make ~sender:third (M.Ls_probe_reply { leaf = []; failed = []; trt = 30.0 }));
  Alcotest.(check bool) "false positive recovered" true
    (Pastry.Leafset.mem (Node.leafset node) third.Peer.id)

let test_probe_timeout_marks_faulty () =
  let s, node, other = active_pair () in
  let third = Peer.make (hexid "c0") 2 in
  Node.handle node ~src:2
    (M.make ~sender:third (M.Ls_probe { leaf = []; failed = []; trt = 30.0 }));
  ignore (take_sent s);
  (* accuse the third node; it never answers the verification probe *)
  Node.handle node ~src:1
    (M.make ~sender:other
       (M.Ls_probe { leaf = []; failed = [ third.Peer.id ]; trt = 30.0 }));
  (* timeout: (retries+1) * To, plus slack *)
  advance s (float_of_int (cfg.Config.max_probe_retries + 1) *. cfg.Config.t_out +. 1.0);
  (* Fig 2 clears failed_i as soon as probing completes with a complete
     leaf set, so we assert the durable effects: eviction, no re-adoption *)
  Alcotest.(check bool) "not in leafset" false
    (Pastry.Leafset.mem (Node.leafset node) third.Peer.id);
  Alcotest.(check int) "no probe left outstanding" 0 (Node.pending_probes node);
  (* probes were retried before giving up *)
  let probes_to_third =
    List.filter (function M.Ls_probe _ -> true | _ -> false) (payloads (sent_to s 2))
  in
  Alcotest.(check int) "initial probe plus retries"
    (cfg.Config.max_probe_retries + 1)
    (List.length probes_to_third)

(* ---------------- heartbeats (§4.1) ---------------- *)

let test_heartbeat_to_left_neighbor () =
  let s, node, _other = active_pair () in
  ignore (take_sent s);
  (* first tick lands within one jitter window and may be suppressed by
     the join-time traffic; two full periods guarantee a beat *)
  advance s ((2.0 *. cfg.Config.t_ls) +. 2.0);
  (* with one member, it is both left and right neighbour *)
  let heartbeats =
    List.filter (function M.Heartbeat -> true | _ -> false) (payloads (sent_to s 1))
  in
  Alcotest.(check bool) "heartbeat sent" true (List.length heartbeats >= 1);
  ignore node

let test_silent_right_neighbor_suspected () =
  let s, node, _other = active_pair () in
  ignore (take_sent s);
  (* stay silent: after the neighbour-change grace period plus Tls + To
     (up to four heartbeat periods including scheduling jitter) the node
     must probe its right neighbour *)
  advance s ((4.0 *. cfg.Config.t_ls) +. 10.0);
  let probes =
    List.filter (function M.Ls_probe _ -> true | _ -> false) (payloads (sent_to s 1))
  in
  Alcotest.(check bool) "suspect probe sent" true (List.length probes >= 1);
  ignore node

let test_fresh_traffic_suppresses_suspicion () =
  let s, node, other = active_pair () in
  ignore (take_sent s);
  (* keep talking: inject a message from [other] every 10 s *)
  for _ = 1 to 12 do
    advance s 10.0;
    Node.handle node ~src:1 (M.make ~sender:other M.Heartbeat)
  done;
  let probes =
    List.filter (function M.Ls_probe _ -> true | _ -> false) (payloads (sent_to s 1))
  in
  Alcotest.(check int) "no suspicion while chatty" 0 (List.length probes)

(* ---------------- per-hop acks (§3.2) ---------------- *)

(* an active node with one routing-table entry far away and a leaf member *)
let routed_setup () =
  let s, node, other = active_pair () in
  (* install a row-0 entry directly (direct contact => legitimate) *)
  let far = Peer.make (hexid "f0") 4 in
  Node.handle node ~src:4 (M.make ~sender:far (M.Rtt_report { rtt = 0.05 }));
  ignore (take_sent s);
  (s, node, other, far)

let test_lookup_forwarded_with_hop_tag () =
  let s, node, other, _far = routed_setup () in
  (* two-node overlay: key f8's root is [other] (the leaf set wraps) *)
  Node.lookup node ~key:(hexid "f8") ~seq:1;
  (match sent_to s other.Peer.addr with
  | [ { M.hop = Some _; M.payload = M.Lookup l; _ } ] ->
      Alcotest.(check int) "hop counted" 1 l.M.hops;
      Alcotest.(check bool) "not a retransmission" false l.M.retx
  | _ -> Alcotest.fail "expected a hop-tagged lookup to the owner");
  Alcotest.(check int) "pending hop buffered" 1 (Node.pending_hops node)

let test_ack_clears_pending () =
  let s, node, other, _far = routed_setup () in
  Node.lookup node ~key:(hexid "f8") ~seq:1;
  let hop_id =
    match sent_to s other.Peer.addr with
    | [ { M.hop = Some h; _ } ] -> h
    | _ -> Alcotest.fail "expected tagged hop"
  in
  advance s 0.01;
  Node.handle node ~src:other.Peer.addr (M.make ~sender:other (M.Hop_ack { hop_id }));
  Alcotest.(check int) "pending cleared" 0 (Node.pending_hops node);
  (* no retransmission later *)
  advance s 5.0;
  let retx =
    List.exists
      (function M.Lookup l -> l.M.retx | _ -> false)
      (payloads (sent_to s other.Peer.addr))
  in
  Alcotest.(check bool) "no retransmit after ack" false retx

let test_missed_ack_reroutes () =
  let s, node, other, _far = routed_setup () in
  Node.lookup node ~key:(hexid "f8") ~seq:1;
  ignore (take_sent s);
  (* the owner [other] never acks. The consistency guard retransmits the
     lookup straight to the owner with growing backoff before the local
     node may deliver in its stead *)
  advance s 1.2;
  let early = take_sent s in
  Alcotest.(check int) "no premature local delivery" 0 (List.length s.delivered);
  let retx =
    List.exists
      (fun (dst, m) ->
        dst = other.Peer.addr
        && match m.M.payload with M.Lookup l -> l.M.retx | _ -> false)
      early
  in
  Alcotest.(check bool) "retransmitted to the owner" true retx;
  (* and the silent node is being checked on (it is a leaf member) *)
  let probed =
    List.exists
      (fun (dst, m) ->
        dst = other.Peer.addr
        && match m.M.payload with M.Rt_probe | M.Ls_probe _ -> true | _ -> false)
      early
  in
  Alcotest.(check bool) "silent node probed" true probed;
  (* once the probes evict the dead owner, we are the root and deliver *)
  advance s 20.0;
  Alcotest.(check int) "delivered after eviction" 1 (List.length s.delivered);
  ignore node

let test_unreliable_lookup_unacked () =
  let s, node, other, _far = routed_setup () in
  Node.lookup ~reliable:false node ~key:(hexid "f8") ~seq:1;
  (match sent_to s other.Peer.addr with
  | [ { M.hop = None; M.payload = M.Lookup l; _ } ] ->
      Alcotest.(check bool) "flagged unreliable" false l.M.reliable
  | _ -> Alcotest.fail "expected an untagged lookup");
  Alcotest.(check int) "nothing buffered" 0 (Node.pending_hops node)

let test_receiver_acks_hop () =
  let s, node, other = active_pair () in
  ignore (take_sent s);
  let lookup =
    M.make ~hop:77 ~sender:other
      (M.Lookup
         { key = hexid "a0"; seq = 5; origin = other; hops = 1; retx = false; reliable = true })
  in
  Node.handle node ~src:1 lookup;
  let acks =
    List.filter (function M.Hop_ack { hop_id } -> hop_id = 77 | _ -> false)
      (payloads (sent_to s 1))
  in
  Alcotest.(check int) "ack sent back" 1 (List.length acks);
  Alcotest.(check int) "delivered locally (we are root)" 1 (List.length s.delivered)

(* ---------------- misc handlers ---------------- *)

let test_rt_probe_replied () =
  let s, node, other = active_pair () in
  ignore (take_sent s);
  Node.handle node ~src:1 (M.make ~sender:other M.Rt_probe);
  let replies =
    List.filter (function M.Rt_probe_reply _ -> true | _ -> false)
      (payloads (sent_to s 1))
  in
  Alcotest.(check int) "reply" 1 (List.length replies);
  ignore node

let test_distance_probe_replied () =
  let s, node, other = active_pair () in
  ignore (take_sent s);
  Node.handle node ~src:1 (M.make ~sender:other (M.Distance_probe { probe_seq = 3 }));
  let ok =
    List.exists
      (function M.Distance_probe_reply { probe_seq } -> probe_seq = 3 | _ -> false)
      (payloads (sent_to s 1))
  in
  Alcotest.(check bool) "echoed seq" true ok;
  ignore node

let test_rtt_report_installs () =
  let _s, node, _ = active_pair () in
  let far = Peer.make (hexid "f0") 4 in
  Node.handle node ~src:4 (M.make ~sender:far (M.Rtt_report { rtt = 0.03 }));
  match Pastry.Routing_table.find (Node.table node) far.Peer.id with
  | Some e -> Alcotest.(check (float 1e-9)) "rtt stored" 0.03 e.Pastry.Routing_table.rtt
  | None -> Alcotest.fail "entry not installed"

let test_row_request_reply () =
  let s, node, _ = active_pair () in
  let far = Peer.make (hexid "f0") 4 in
  Node.handle node ~src:4 (M.make ~sender:far (M.Rtt_report { rtt = 0.03 }));
  ignore (take_sent s);
  Node.handle node ~src:4 (M.make ~sender:far (M.Row_request { row = 0 }));
  let ok =
    List.exists
      (function
        | M.Row_reply { row = 0; entries } ->
            List.exists (fun ((p : Peer.t), _) -> Nodeid.equal p.Peer.id (hexid "f0")) entries
        | _ -> false)
      (payloads (sent_to s 4))
  in
  Alcotest.(check bool) "row contains the entry" true ok;
  ignore node

let test_slot_request_reply () =
  let s, node, _ = active_pair () in
  let far = Peer.make (hexid "f0") 4 in
  Node.handle node ~src:4 (M.make ~sender:far (M.Rtt_report { rtt = 0.03 }));
  ignore (take_sent s);
  let r, c =
    match Pastry.Routing_table.slot_of (Node.table node) far.Peer.id with
    | Some rc -> rc
    | None -> Alcotest.fail "slot"
  in
  Node.handle node ~src:4 (M.make ~sender:far (M.Slot_request { row = r; col = c }));
  let ok =
    List.exists
      (function
        | M.Slot_reply { entry = Some ((p : Peer.t), _); _ } ->
            Nodeid.equal p.Peer.id (hexid "f0")
        | _ -> false)
      (payloads (sent_to s 4))
  in
  Alcotest.(check bool) "slot echoed" true ok

let test_repair_request_reply () =
  let s, node, other = active_pair () in
  ignore (take_sent s);
  Node.handle node ~src:1 (M.make ~sender:other (M.Repair_request { left_side = true }));
  let ok =
    List.exists
      (function
        | M.Repair_reply { candidates } ->
            List.exists (fun (p : Peer.t) -> Nodeid.equal p.Peer.id (hexid "a0")) candidates
        | _ -> false)
      (payloads (sent_to s 1))
  in
  Alcotest.(check bool) "reply includes self" true ok;
  ignore node

let test_announce_rows_after_activation () =
  (* a joiner that received routing rows announces itself to the rows'
     members once active *)
  let s = make_script () in
  let node = Node.create ~cfg ~env:(env_of s) ~id:(hexid "a0") ~addr:0 in
  Node.join node ~bootstrap_addr:9;
  s.sent <- [];
  let root = Peer.make (hexid "a1") 9 in
  let row_peer = Peer.make (hexid "f0") 4 in
  Node.handle node ~src:9
    (M.make ~sender:root
       (M.Join_reply { rows = [ (0, [ (row_peer, 0.05) ]) ]; leaf = [ root ] }));
  s.sent <- [];
  Node.handle node ~src:9
    (M.make ~sender:root (M.Ls_probe_reply { leaf = [ root ]; failed = []; trt = 30.0 }));
  Alcotest.(check bool) "active" true (Node.is_active node);
  let announced =
    List.exists
      (fun (dst, m) ->
        dst = 4 && match m.M.payload with M.Row_announce _ -> true | _ -> false)
      (take_sent s)
  in
  Alcotest.(check bool) "row announced to its members" true announced

let test_maintenance_round_row_requests () =
  (* active probing off: scripted peers never answer probes and would be
     evicted long before the 20-minute maintenance round *)
  let s = make_script () in
  let cfg = { cfg with Config.active_probing = false } in
  let node = Node.create ~cfg ~env:(env_of s) ~id:(hexid "a0") ~addr:0 in
  Node.bootstrap node;
  let far = Peer.make (hexid "f0") 4 in
  Node.handle node ~src:4 (M.make ~sender:far (M.Rtt_report { rtt = 0.05 }));
  ignore (take_sent s);
  (* wait past the maintenance period *)
  advance s (cfg.Config.rt_maintenance_period +. cfg.Config.rt_maintenance_period +. 5.0);
  let requests =
    List.filter
      (fun (_, m) -> match m.M.payload with M.Row_request _ -> true | _ -> false)
      (take_sent s)
  in
  Alcotest.(check bool) "periodic row requests sent" true (List.length requests >= 1);
  ignore node

let test_trt_piggybacked_is_local_estimate () =
  (* nodes gossip their own solution, not the adopted median: drive the
     node's remotes very low and check the value it piggybacks *)
  let s, node, other = active_pair () in
  ignore (take_sent s);
  for _ = 1 to 40 do
    Node.handle node ~src:1 (M.make ~sender:other (M.Rt_probe_reply { trt = 10.0 }))
  done;
  (* let a tuning refresh run *)
  advance s (2.0 *. cfg.Config.tuning_refresh_period +. 1.0);
  Alcotest.(check bool) "adopted Trt pulled down by remotes" true
    (Node.current_trt node < 60.0);
  s.sent <- [];
  Node.handle node ~src:1 (M.make ~sender:other M.Rt_probe);
  (match sent_to s 1 with
  | msgs -> (
      match
        List.find_opt (function M.Rt_probe_reply _ -> true | _ -> false) (payloads msgs)
      with
      | Some (M.Rt_probe_reply { trt }) ->
          (* no failures observed locally: the local estimate is the cap,
             regardless of the low adopted median *)
          Alcotest.(check (float 1e-6)) "piggybacks local estimate"
            cfg.Config.t_rt_max trt
      | _ -> Alcotest.fail "expected a probe reply"))

let test_join_rows_installed_unmeasured () =
  let s = make_script () in
  let node = Node.create ~cfg ~env:(env_of s) ~id:(hexid "a0") ~addr:0 in
  Node.join node ~bootstrap_addr:9;
  let root = Peer.make (hexid "a1") 9 in
  let row_peer = Peer.make (hexid "f0") 4 in
  Node.handle node ~src:9
    (M.make ~sender:root
       (M.Join_reply { rows = [ (0, [ (row_peer, 0.123) ]) ]; leaf = [ root ] }));
  (match Pastry.Routing_table.find (Node.table node) (hexid "f0") with
  | Some e ->
      (* installed for routing, but the carried RTT (someone else's
         vantage point) is not trusted as a PNS measurement *)
      Alcotest.(check bool) "unmeasured" false (Float.is_finite e.Pastry.Routing_table.rtt)
  | None -> Alcotest.fail "row entry not installed");
  (* and a distance probe is queued to measure it ourselves *)
  let probed =
    List.exists
      (fun (dst, m) ->
        dst = 4 && match m.M.payload with M.Distance_probe _ -> true | _ -> false)
      (List.rev s.sent)
  in
  Alcotest.(check bool) "own measurement started" true probed

let test_goodbye_immediate_eviction () =
  let s, node, other = active_pair () in
  ignore (take_sent s);
  Node.handle node ~src:1 (M.make ~sender:other M.Goodbye);
  Alcotest.(check bool) "evicted without probing" false
    (Pastry.Leafset.mem (Node.leafset node) other.Peer.id);
  (* no verification probes wasted on a node that told us it left *)
  let probes =
    List.filter
      (fun (_, m) -> match m.M.payload with M.Ls_probe _ -> true | _ -> false)
      (take_sent s)
  in
  Alcotest.(check int) "no probes to the departed" 0
    (List.length
       (List.filter (fun (dst, _) -> dst = other.Peer.addr) (List.map (fun m -> (1, m)) probes)));
  ignore probes

let test_leave_sends_goodbyes () =
  let s, node, other = active_pair () in
  ignore (take_sent s);
  Node.leave node;
  let goodbyes =
    List.filter
      (fun (dst, m) ->
        dst = other.Peer.addr && match m.M.payload with M.Goodbye -> true | _ -> false)
      (take_sent s)
  in
  Alcotest.(check int) "goodbye to the leaf member" 1 (List.length goodbyes);
  Alcotest.(check bool) "halted" false (Node.is_alive node)

let test_crash_silences () =
  let s, node, other = active_pair () in
  ignore (take_sent s);
  Node.crash node;
  Node.handle node ~src:1 (M.make ~sender:other M.Rt_probe);
  advance s 120.0;
  Alcotest.(check int) "no messages after crash" 0 (List.length s.sent);
  Alcotest.(check bool) "not active" false (Node.is_active node)

let test_inactive_buffering () =
  let s = make_script () in
  let node = Node.create ~cfg ~env:(env_of s) ~id:(hexid "a0") ~addr:0 in
  Node.join node ~bootstrap_addr:9;
  s.sent <- [];
  let root = Peer.make (hexid "a1") 9 in
  Node.handle node ~src:9
    (M.make ~sender:root (M.Join_reply { rows = []; leaf = [ root ] }));
  s.sent <- [];
  (* a lookup for our own id arrives while we are still inactive *)
  Node.handle node ~src:9
    (M.make ~sender:root
       (M.Lookup
         { key = hexid "a0"; seq = 3; origin = root; hops = 1; retx = false; reliable = true }));
  Alcotest.(check int) "not delivered while inactive" 0 (List.length s.delivered);
  (* activation: the root confirms our leaf set *)
  Node.handle node ~src:9
    (M.make ~sender:root (M.Ls_probe_reply { leaf = [ root ]; failed = []; trt = 30.0 }));
  Alcotest.(check bool) "active" true (Node.is_active node);
  advance s 2.0;
  Alcotest.(check int) "buffered lookup delivered after activation" 1
    (List.length s.delivered)

let suite =
  [
    ( "node",
      [
        Alcotest.test_case "bootstrap activates" `Quick test_bootstrap_active;
        Alcotest.test_case "join sends Nn_request" `Quick test_join_sends_nn_request;
        Alcotest.test_case "nn reply triggers distance probes" `Quick
          test_nn_reply_triggers_distance_probes;
        Alcotest.test_case "nn converges to join request" `Quick
          test_nn_probe_replies_lead_to_join_request;
        Alcotest.test_case "join reply probes leaf set" `Quick test_join_reply_probes_leafset;
        Alcotest.test_case "activation after all replies" `Quick
          test_activation_after_all_probe_replies;
        Alcotest.test_case "join retry then failure" `Quick test_join_retry_and_failure;
        Alcotest.test_case "ls probe: reply and insertion" `Quick
          test_ls_probe_gets_reply_and_insertion;
        Alcotest.test_case "ls probe: hearsay is probed, not inserted" `Quick
          test_ls_probe_candidates_probed_not_inserted;
        Alcotest.test_case "claimed failures verified" `Quick test_claimed_failure_is_verified;
        Alcotest.test_case "probe timeout marks faulty" `Quick test_probe_timeout_marks_faulty;
        Alcotest.test_case "heartbeat to left neighbour" `Quick test_heartbeat_to_left_neighbor;
        Alcotest.test_case "silent right neighbour suspected" `Quick
          test_silent_right_neighbor_suspected;
        Alcotest.test_case "traffic suppresses suspicion" `Quick
          test_fresh_traffic_suppresses_suspicion;
        Alcotest.test_case "lookup forwarded with hop tag" `Quick
          test_lookup_forwarded_with_hop_tag;
        Alcotest.test_case "ack clears pending hop" `Quick test_ack_clears_pending;
        Alcotest.test_case "missed ack reroutes and probes" `Quick test_missed_ack_reroutes;
        Alcotest.test_case "unreliable lookups unacked" `Quick
          test_unreliable_lookup_unacked;
        Alcotest.test_case "receiver acks hops" `Quick test_receiver_acks_hop;
        Alcotest.test_case "rt probe replied" `Quick test_rt_probe_replied;
        Alcotest.test_case "distance probe replied" `Quick test_distance_probe_replied;
        Alcotest.test_case "rtt report installs entry" `Quick test_rtt_report_installs;
        Alcotest.test_case "row request" `Quick test_row_request_reply;
        Alcotest.test_case "slot request" `Quick test_slot_request_reply;
        Alcotest.test_case "repair request" `Quick test_repair_request_reply;
        Alcotest.test_case "row announcements after activation" `Quick
          test_announce_rows_after_activation;
        Alcotest.test_case "maintenance row requests" `Quick
          test_maintenance_round_row_requests;
        Alcotest.test_case "piggybacked Trt is the local estimate" `Quick
          test_trt_piggybacked_is_local_estimate;
        Alcotest.test_case "join rows installed unmeasured" `Quick
          test_join_rows_installed_unmeasured;
        Alcotest.test_case "goodbye evicts immediately" `Quick
          test_goodbye_immediate_eviction;
        Alcotest.test_case "leave sends goodbyes" `Quick test_leave_sends_goodbyes;
        Alcotest.test_case "crash silences the node" `Quick test_crash_silences;
        Alcotest.test_case "inactive lookups buffered" `Quick test_inactive_buffering;
      ] );
  ]
