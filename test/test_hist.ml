module Hist = Repro_obs.Hist

(* Exact order statistic with the same rank rule as Hist.quantile: the
   0-based index of the sample a cumulative-count walk past q*(n-1)
   lands on. *)
let exact_at sorted q =
  let n = Array.length sorted in
  let target = q *. float_of_int (n - 1) in
  let i = int_of_float (floor target) in
  sorted.(max 0 (min (n - 1) i))

let rel_err est truth =
  if truth = 0.0 then Float.abs est else Float.abs (est -. truth) /. truth

let test_empty () =
  let h = Hist.create () in
  Alcotest.(check int) "count" 0 (Hist.count h);
  Alcotest.(check bool) "quantile nan" true (Float.is_nan (Hist.quantile h 0.5));
  Alcotest.(check bool) "min nan" true (Float.is_nan (Hist.min_value h))

let test_single_value () =
  let h = Hist.create () in
  Hist.add h 0.123;
  (* min/max clamping makes a single sample exact at every quantile *)
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "q=%.2f" q)
        0.123 (Hist.quantile h q))
    [ 0.0; 0.5; 1.0 ]

let test_out_of_range_clamped () =
  (* values below [lo] land in the underflow bucket but the estimate is
     clamped to the observed min/max, so tiny samples stay exact *)
  let h = Hist.create ~lo:1e-6 ~hi:1e4 () in
  Hist.add h 1e-9;
  Alcotest.(check (float 1e-15)) "tiny sample exact" 1e-9 (Hist.quantile h 0.5);
  let g = Hist.create ~lo:1e-6 ~hi:1e4 () in
  Hist.add g 1e6;
  Alcotest.(check (float 1e-3)) "huge sample clamped to max" 1e6
    (Hist.quantile g 1.0)

let test_rejects_bad_input () =
  let h = Hist.create () in
  Alcotest.check_raises "negative raises" (Invalid_argument "Hist.add")
    (fun () -> Hist.add h (-1.0));
  Alcotest.check_raises "bad alpha" (Invalid_argument "Hist.create: alpha")
    (fun () -> ignore (Hist.create ~alpha:1.5 ()))

let test_merge_param_mismatch () =
  let a = Hist.create ~alpha:0.01 () and b = Hist.create ~alpha:0.02 () in
  Alcotest.check_raises "mismatch raises"
    (Invalid_argument "Hist.merge: parameter mismatch") (fun () ->
      ignore (Hist.merge a b))

let lognormal_gen =
  (* log-uniform over ~[1e-3, 1e3]: spans six decades, the shape queueing
     delays and lookup latencies actually have *)
  QCheck.Gen.(
    array_size (int_range 1 400)
      (map (fun u -> Float.exp ((u -. 0.5) *. 13.8)) (float_bound_exclusive 1.0)))

let arb_samples = QCheck.make ~print:QCheck.Print.(array string_of_float) lognormal_gen

let qcheck_quantile_accuracy =
  QCheck.Test.make ~name:"quantiles within alpha of exact" ~count:200
    arb_samples (fun xs ->
      let h = Hist.create ~alpha:0.01 ~lo:1e-6 ~hi:1e4 () in
      Array.iter (Hist.add h) xs;
      let sorted = Array.copy xs in
      Array.sort compare sorted;
      List.for_all
        (fun q ->
          let est = Hist.quantile h q in
          (* the rank the walk lands on can sit either side of the exact
             index when buckets hold several samples: accept the better
             of the two neighbouring order statistics *)
          let lo_i = exact_at sorted q in
          let hi_i =
            let n = Array.length sorted in
            let i = int_of_float (ceil (q *. float_of_int (n - 1))) in
            sorted.(max 0 (min (n - 1) i))
          in
          let err = Float.min (rel_err est lo_i) (rel_err est hi_i) in
          err <= Hist.alpha h +. 1e-9)
        [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ])

let qcheck_merge_equals_union =
  QCheck.Test.make ~name:"merge == histogram of concatenation" ~count:100
    (QCheck.pair arb_samples arb_samples) (fun (xs, ys) ->
      let mk arr =
        let h = Hist.create () in
        Array.iter (Hist.add h) arr;
        h
      in
      let merged = Hist.merge (mk xs) (mk ys) in
      let union = mk (Array.append xs ys) in
      Hist.count merged = Hist.count union
      && List.for_all
           (fun q ->
             let a = Hist.quantile merged q and b = Hist.quantile union q in
             Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs b))
           [ 0.0; 0.5; 0.9; 0.99; 1.0 ])

let test_merge_associative () =
  let mk seed n =
    let rng = Repro_util.Rng.create seed in
    let h = Hist.create () in
    for _ = 1 to n do
      Hist.add h (0.001 +. Repro_util.Rng.float rng 10.0)
    done;
    h
  in
  let a = mk 1 100 and b = mk 2 250 and c = mk 3 40 in
  let l = Hist.merge (Hist.merge a b) c and r = Hist.merge a (Hist.merge b c) in
  Alcotest.(check int) "counts" (Hist.count l) (Hist.count r);
  Alcotest.(check (float 1e-12)) "sum" (Hist.sum l) (Hist.sum r);
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "q=%.2f" q)
        (Hist.quantile l q) (Hist.quantile r q))
    [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ]

let test_summary_json () =
  let h = Hist.create () in
  List.iter (Hist.add h) [ 1.0; 2.0; 3.0 ];
  let j = Hist.summary_json h in
  let get k = Option.bind (Repro_obs.Json.member k j) Repro_obs.Json.to_float in
  Alcotest.(check (option (float 1e-9))) "count" (Some 3.0) (get "count");
  Alcotest.(check (option (float 1e-9))) "mean" (Some 2.0) (get "mean");
  Alcotest.(check (option (float 1e-9))) "min" (Some 1.0) (get "min");
  Alcotest.(check (option (float 1e-9))) "max" (Some 3.0) (get "max")

let suite =
  [
    ( "hist",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "single value" `Quick test_single_value;
        Alcotest.test_case "out-of-range clamped" `Quick test_out_of_range_clamped;
        Alcotest.test_case "rejects bad input" `Quick test_rejects_bad_input;
        Alcotest.test_case "merge param mismatch" `Quick test_merge_param_mismatch;
        Alcotest.test_case "merge associative" `Quick test_merge_associative;
        Alcotest.test_case "summary json" `Quick test_summary_json;
        QCheck_alcotest.to_alcotest qcheck_quantile_accuracy;
        QCheck_alcotest.to_alcotest qcheck_merge_equals_union;
      ] );
  ]
