let () =
  Alcotest.run "mspastry-repro"
    (Test_rng.suite @ Test_stats.suite @ Test_heap.suite @ Test_series.suite
   @ Test_engine.suite @ Test_nodeid.suite @ Test_leafset.suite
   @ Test_routing_table.suite @ Test_node.suite @ Test_message.suite @ Test_route.suite @ Test_rto.suite @ Test_tuning.suite
   @ Test_topology.suite @ Test_trace.suite @ Test_netsim.suite @ Test_faults.suite
   @ Test_nodefaults.suite
   @ Test_oracle.suite
   @ Test_obs.suite @ Test_hist.suite @ Test_collector.suite @ Test_harness.suite @ Test_integration.suite @ Test_squirrel.suite
   @ Test_scribe.suite @ Test_past.suite)
