module Sim = Harness.Sim
module Live = Sim.Live
module Node = Mspastry.Node
module Rng = Repro_util.Rng

let build_overlay ?(seed = 42) n =
  let config =
    {
      Sim.default_config with
      topology = Sim.Flat 0.02;
      seed;
      lookup_rate = 0.0;
      warmup = 0.0;
      window = 60.0;
    }
  in
  let live = Live.create config ~n_endpoints:(max 8 n) in
  for i = 0 to n - 1 do
    Live.spawn_at live ~time:(float_of_int i *. 5.0) ()
  done;
  Live.run_until live ((float_of_int n *. 5.0) +. 120.0);
  live

let advance live dt =
  Live.run_until live (Simkit.Engine.now (Live.engine live) +. dt)

let test_group_of_name () =
  let a = Scribe.group_of_name "sports" in
  let b = Scribe.group_of_name "sports" in
  let c = Scribe.group_of_name "news" in
  Alcotest.(check bool) "deterministic" true (Pastry.Nodeid.equal a b);
  Alcotest.(check bool) "distinct" false (Pastry.Nodeid.equal a c)

let test_subscribe_and_multicast () =
  let live = build_overlay 20 in
  let scribe = Scribe.create ~live () in
  let group = Scribe.group_of_name "g" in
  let nodes = Array.of_list (Live.active_nodes live) in
  for i = 0 to 9 do
    Scribe.subscribe scribe ~member:nodes.(i) group
  done;
  advance live 10.0;
  Alcotest.(check int) "members" 10 (Scribe.members scribe group);
  let msg = Scribe.multicast scribe ~from:nodes.(15) group in
  advance live 10.0;
  Alcotest.(check int) "all members reached" 10 (Scribe.delivered scribe group msg)

let test_non_members_not_counted () =
  let live = build_overlay 12 in
  let scribe = Scribe.create ~live () in
  let group = Scribe.group_of_name "exclusive" in
  let nodes = Array.of_list (Live.active_nodes live) in
  Scribe.subscribe scribe ~member:nodes.(0) group;
  Scribe.subscribe scribe ~member:nodes.(1) group;
  advance live 5.0;
  let msg = Scribe.multicast scribe ~from:nodes.(5) group in
  advance live 10.0;
  Alcotest.(check int) "exactly the two members" 2
    (Scribe.delivered scribe group msg)

let test_multiple_groups_independent () =
  let live = build_overlay 16 in
  let scribe = Scribe.create ~live () in
  let g1 = Scribe.group_of_name "one" and g2 = Scribe.group_of_name "two" in
  let nodes = Array.of_list (Live.active_nodes live) in
  Scribe.subscribe scribe ~member:nodes.(0) g1;
  Scribe.subscribe scribe ~member:nodes.(1) g2;
  advance live 5.0;
  let m1 = Scribe.multicast scribe ~from:nodes.(2) g1 in
  advance live 10.0;
  Alcotest.(check int) "g1 delivered" 1 (Scribe.delivered scribe g1 m1);
  Alcotest.(check int) "g2 untouched" 0 (Scribe.delivered scribe g2 m1)

let test_tree_heals_after_crash () =
  let live = build_overlay 24 in
  (* short refresh so the tree heals within the test *)
  let scribe = Scribe.create ~refresh_period:20.0 ~live () in
  let group = Scribe.group_of_name "resilient" in
  let nodes = Array.of_list (Live.active_nodes live) in
  for i = 0 to 11 do
    Scribe.subscribe scribe ~member:nodes.(i) group
  done;
  advance live 10.0;
  (* crash three non-member nodes (possible forwarders) *)
  for i = 12 to 14 do
    Live.crash_node live nodes.(i)
  done;
  (* wait past eviction plus two refresh rounds *)
  advance live 90.0;
  let publisher = nodes.(20) in
  let msg = Scribe.multicast scribe ~from:publisher group in
  advance live 15.0;
  let live_members = Scribe.members scribe group in
  Alcotest.(check int) "members still alive" 12 live_members;
  Alcotest.(check int) "multicast reaches all after healing" live_members
    (Scribe.delivered scribe group msg)

let test_member_crash_reduces_membership () =
  let live = build_overlay 12 in
  let scribe = Scribe.create ~live () in
  let group = Scribe.group_of_name "shrinking" in
  let nodes = Array.of_list (Live.active_nodes live) in
  Scribe.subscribe scribe ~member:nodes.(0) group;
  Scribe.subscribe scribe ~member:nodes.(1) group;
  advance live 5.0;
  Live.crash_node live nodes.(0);
  advance live 5.0;
  Alcotest.(check int) "one live member" 1 (Scribe.members scribe group)

let test_stats () =
  let live = build_overlay 10 in
  let scribe = Scribe.create ~live () in
  let group = Scribe.group_of_name "stats" in
  let nodes = Array.of_list (Live.active_nodes live) in
  Scribe.subscribe scribe ~member:nodes.(0) group;
  advance live 5.0;
  ignore (Scribe.multicast scribe ~from:nodes.(1) group);
  advance live 10.0;
  let s = Scribe.stats scribe in
  Alcotest.(check bool) "subscribes" true (s.Scribe.subscribes_sent >= 1);
  Alcotest.(check int) "multicasts" 1 s.Scribe.multicasts_sent;
  Alcotest.(check int) "deliveries" 1 s.Scribe.deliveries

let suite =
  [
    ( "scribe",
      [
        Alcotest.test_case "group naming" `Quick test_group_of_name;
        Alcotest.test_case "subscribe and multicast" `Quick test_subscribe_and_multicast;
        Alcotest.test_case "non-members not counted" `Quick test_non_members_not_counted;
        Alcotest.test_case "groups independent" `Quick test_multiple_groups_independent;
        Alcotest.test_case "tree heals after forwarder crash" `Slow
          test_tree_heals_after_crash;
        Alcotest.test_case "member crash shrinks group" `Quick
          test_member_crash_reduces_membership;
        Alcotest.test_case "stats" `Quick test_stats;
      ] );
  ]
