module Engine = Simkit.Engine
module Net = Netsim.Net
module Rng = Repro_util.Rng

let make ?(loss_rate = 0.0) ?(delay = 0.01) ?(n = 8) () =
  let engine = Engine.create () in
  let topology = Topology.constant ~n_endpoints:n ~delay in
  let net = Net.create ~loss_rate ~engine ~topology ~rng:(Rng.create 1) () in
  (engine, net)

let test_delivery_with_delay () =
  let engine, net = make () in
  let got = ref [] in
  Net.register net ~addr:1 (fun ~src msg -> got := (src, msg, Engine.now engine) :: !got);
  Net.send net ~src:0 ~dst:1 "hello";
  Engine.run_all engine;
  match !got with
  | [ (src, msg, at) ] ->
      Alcotest.(check int) "src" 0 src;
      Alcotest.(check string) "payload" "hello" msg;
      Alcotest.(check (float 1e-9)) "propagation delay" 0.01 at
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_unregistered_dropped () =
  let engine, net = make () in
  Net.send net ~src:0 ~dst:5 "lost";
  Engine.run_all engine;
  Alcotest.(check int) "dropped" 1 (Net.n_dropped net);
  Alcotest.(check int) "sent" 1 (Net.n_sent net);
  Alcotest.(check int) "delivered" 0 (Net.n_delivered net)

let test_crash_after_send () =
  let engine, net = make () in
  let got = ref 0 in
  Net.register net ~addr:1 (fun ~src:_ _ -> incr got);
  Net.send net ~src:0 ~dst:1 "in flight";
  (* crash before the message arrives *)
  Net.unregister net ~addr:1;
  Engine.run_all engine;
  Alcotest.(check int) "nothing delivered" 0 !got;
  Alcotest.(check int) "dropped" 1 (Net.n_dropped net);
  (* the in-flight drop is attributed to the dead destination, not loss *)
  let s = Net.stats net in
  Alcotest.(check int) "dropped_dead" 1 s.Net.dropped_dead;
  Alcotest.(check int) "dropped_loss" 0 s.Net.dropped_loss;
  Alcotest.(check int) "dropped_fault" 0 s.Net.dropped_fault

let test_loss_statistics () =
  let engine, net = make ~loss_rate:0.5 () in
  let got = ref 0 in
  Net.register net ~addr:1 (fun ~src:_ _ -> incr got);
  for _ = 1 to 2000 do
    Net.send net ~src:0 ~dst:1 "x"
  done;
  Engine.run_all engine;
  Alcotest.(check bool) "about half lost" true (!got > 850 && !got < 1150)

let test_loss_rate_validation () =
  Alcotest.check_raises "loss 1.0" (Invalid_argument "Net.create: loss_rate") (fun () ->
      ignore (make ~loss_rate:1.0 ()))

let test_set_loss_rate_validation () =
  let _, net = make () in
  Alcotest.check_raises "loss 1.0" (Invalid_argument "Net.set_loss_rate: loss_rate")
    (fun () -> Net.set_loss_rate net 1.0);
  Alcotest.check_raises "negative" (Invalid_argument "Net.set_loss_rate: loss_rate")
    (fun () -> Net.set_loss_rate net (-0.01));
  (* the rejected values left the configured rate untouched *)
  Alcotest.(check (float 1e-9)) "rate unchanged" 0.0 (Net.loss_rate net);
  Net.set_loss_rate net 0.999;
  Alcotest.(check (float 1e-9)) "boundary accepted" 0.999 (Net.loss_rate net);
  Net.set_loss_rate net 0.0;
  Alcotest.(check (float 1e-9)) "zero accepted" 0.0 (Net.loss_rate net)

let test_on_send_tap () =
  let engine, net = make () in
  let taps = ref [] in
  Net.on_send net (fun ~time ~src ~dst msg -> taps := (time, src, dst, msg) :: !taps);
  Net.register net ~addr:2 (fun ~src:_ _ -> ());
  Net.send net ~src:0 ~dst:2 "a";
  Net.send net ~src:1 ~dst:7 "b";
  (* tap sees even undeliverable sends *)
  Engine.run_all engine;
  Alcotest.(check int) "tap count" 2 (List.length !taps)

let test_endpoint_mapping () =
  let engine = Engine.create () in
  let topology = Topology.constant ~n_endpoints:2 ~delay:0.5 in
  (* addresses 0,2 share endpoint 0; address 1 is endpoint 1 *)
  let net =
    Net.create ~endpoint_of:(fun a -> a mod 2) ~engine ~topology ~rng:(Rng.create 1) ()
  in
  Alcotest.(check (float 1e-9)) "cross endpoint" 0.5 (Net.delay net 0 1);
  Alcotest.(check bool) "same endpoint, distinct addr: small LAN delay" true
    (Net.delay net 0 2 > 0.0 && Net.delay net 0 2 < 0.01);
  Alcotest.(check (float 1e-9)) "self" 0.0 (Net.delay net 0 0)

let test_set_loss_rate () =
  let engine, net = make () in
  let got = ref 0 in
  Net.register net ~addr:1 (fun ~src:_ _ -> incr got);
  Net.set_loss_rate net 0.999;
  Alcotest.(check (float 1e-9)) "getter" 0.999 (Net.loss_rate net);
  for _ = 1 to 200 do
    Net.send net ~src:0 ~dst:1 "x"
  done;
  Engine.run_all engine;
  Alcotest.(check bool) "almost all lost" true (!got < 10)

(* ---------------------------------------------- capacity / queue model *)

let make_cap ?priority_of ~service_rate ~queue_limit () =
  let engine = Engine.create () in
  let topology = Topology.constant ~n_endpoints:8 ~delay:0.01 in
  let net =
    Net.create ?priority_of
      ~capacity:{ Net.service_rate; queue_limit }
      ~engine ~topology ~rng:(Rng.create 1) ()
  in
  (engine, net)

let test_capacity_queueing_delay () =
  (* service 0.1 s/message: three back-to-back messages to the same node
     serialise — delivery at arrival + k*service for the k-th in line *)
  let engine, net = make_cap ~service_rate:10.0 ~queue_limit:16 () in
  let got = ref [] in
  Net.register net ~addr:1 (fun ~src:_ _ -> got := Engine.now engine :: !got);
  for _ = 1 to 3 do
    Net.send net ~src:0 ~dst:1 "x"
  done;
  Engine.run_all engine;
  Alcotest.(check (list (float 1e-9))) "serialised deliveries"
    [ 0.11; 0.21; 0.31 ] (List.rev !got)

let test_capacity_overflow_drop () =
  let engine, net = make_cap ~service_rate:10.0 ~queue_limit:2 () in
  let got = ref 0 in
  Net.register net ~addr:1 (fun ~src:_ _ -> incr got);
  for _ = 1 to 5 do
    Net.send net ~src:0 ~dst:1 "x"
  done;
  Engine.run_all engine;
  Alcotest.(check int) "first two queued" 2 !got;
  let s = Net.stats net in
  Alcotest.(check int) "rest dropped as congestion" 3 s.Net.dropped_congestion;
  Alcotest.(check int) "n_dropped includes congestion" 3 (Net.n_dropped net);
  Alcotest.(check int) "no other drop cause" 0
    (s.Net.dropped_loss + s.Net.dropped_dead + s.Net.dropped_fault + s.Net.dropped_node)

let test_capacity_priority () =
  (* two low-priority messages fill the line; a later high-priority one
     overtakes them (waits only behind the high band) *)
  let engine, net =
    make_cap
      ~priority_of:(fun m -> if m = "hi" then 1 else 0)
      ~service_rate:10.0 ~queue_limit:16 ()
  in
  let got = ref [] in
  Net.register net ~addr:1 (fun ~src:_ msg -> got := (msg, Engine.now engine) :: !got);
  Net.send net ~src:0 ~dst:1 "lo1";
  Net.send net ~src:0 ~dst:1 "lo2";
  Net.send net ~src:0 ~dst:1 "hi";
  Net.send net ~src:0 ~dst:1 "lo3";
  Engine.run_all engine;
  let order = List.rev_map fst !got in
  Alcotest.(check (list string)) "high overtakes queued low"
    [ "lo1"; "hi"; "lo2"; "lo3" ] order;
  let at_of m =
    match List.assoc_opt m (List.rev !got) with
    | Some at -> at
    | None -> Alcotest.failf "%s lost" m
  in
  Alcotest.(check (float 1e-9)) "high unqueued" 0.11 (at_of "hi");
  (* lo2 was committed before the high arrival and keeps its slot; the
     high insertion pushes back only low work enqueued after it *)
  Alcotest.(check (float 1e-9)) "committed low keeps slot" 0.21 (at_of "lo2");
  Alcotest.(check (float 1e-9)) "later low pushed back" 0.41 (at_of "lo3")

let test_capacity_occupancy_and_tap () =
  let engine, net = make_cap ~service_rate:10.0 ~queue_limit:16 () in
  let taps = ref [] in
  Net.on_queue net (fun ~addr ~cls:_ ~delay -> taps := (addr, delay) :: !taps);
  Net.register net ~addr:1 (fun ~src:_ _ -> ());
  for _ = 1 to 3 do
    Net.send net ~src:0 ~dst:1 "x"
  done;
  (* backlog at t=0: three unserved messages, 0.31 s of work *)
  Alcotest.(check int) "occupancy while backlogged" 3 (Net.queue_occupancy net ~addr:1);
  Alcotest.(check int) "untouched node empty" 0 (Net.queue_occupancy net ~addr:5);
  Alcotest.(check (list (float 1e-9))) "tap reports wait + service"
    [ 0.1; 0.2; 0.3 ]
    (List.rev_map snd !taps |> List.map (fun d -> Float.round (d *. 1e9) /. 1e9));
  List.iter (fun (a, _) -> Alcotest.(check int) "tap addr" 1 a) !taps;
  Engine.run_all engine;
  Alcotest.(check int) "drained" 0 (Net.queue_occupancy net ~addr:1)

let test_capacity_default_off () =
  (* no capacity configured: no queue samples, no congestion drops, and
     the accessor reports empty *)
  let engine, net = make () in
  let taps = ref 0 in
  Net.on_queue net (fun ~addr:_ ~cls:_ ~delay:_ -> incr taps);
  Net.register net ~addr:1 (fun ~src:_ _ -> ());
  for _ = 1 to 100 do
    Net.send net ~src:0 ~dst:1 "x"
  done;
  Engine.run_all engine;
  Alcotest.(check int) "no taps" 0 !taps;
  Alcotest.(check int) "no congestion drops" 0 (Net.stats net).Net.dropped_congestion;
  Alcotest.(check int) "occupancy zero" 0 (Net.queue_occupancy net ~addr:1);
  Alcotest.(check bool) "no capacity" true (Net.capacity net = None)

let test_capacity_validation () =
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Net.capacity: service_rate must be > 0") (fun () ->
      ignore (make_cap ~service_rate:0.0 ~queue_limit:4 ()));
  Alcotest.check_raises "empty queue"
    (Invalid_argument "Net.capacity: queue_limit must be >= 1") (fun () ->
      ignore (make_cap ~service_rate:1.0 ~queue_limit:0 ()));
  let _, net = make () in
  Alcotest.check_raises "set_capacity validates too"
    (Invalid_argument "Net.capacity: service_rate must be > 0") (fun () ->
      Net.set_capacity net (Some { Net.service_rate = -1.0; queue_limit = 4 }))

let test_set_loss_rate_vs_fault_model () =
  (* with a fault model installed the uniform process is inert: setting
     it is a programming error, not a silent no-op *)
  let _, net = make () in
  Net.set_fault_model net (Some (Repro_faults.Netfault.uniform ~rate:0.5));
  Alcotest.check_raises "raises while model installed"
    (Invalid_argument
       "Net.set_loss_rate: a fault model is installed and overrides the \
        uniform process; clear it first (set_fault_model t None)") (fun () ->
      Net.set_loss_rate net 0.1);
  Net.set_fault_model net None;
  Net.set_loss_rate net 0.1;
  Alcotest.(check (float 1e-9)) "accepted after clearing" 0.1 (Net.loss_rate net)

(* every send is accounted for exactly once, whatever mix of loss,
   fault models, node faults, congestion and dead destinations it met *)
let qcheck_stats_conservation =
  QCheck.Test.make ~name:"netsim conserves sent = delivered + drops" ~count:60
    QCheck.(pair small_nat (int_bound 3))
    (fun (seed, scenario) ->
      let engine = Engine.create () in
      let topology = Topology.constant ~n_endpoints:8 ~delay:0.01 in
      let capacity =
        if scenario = 3 then Some { Net.service_rate = 20.0; queue_limit = 3 }
        else None
      in
      let net =
        Net.create ~loss_rate:(if scenario = 0 then 0.3 else 0.0) ?capacity
          ~engine ~topology ~rng:(Rng.create (seed + 1)) ()
      in
      if scenario = 1 then
        Net.set_fault_model net (Some (Repro_faults.Netfault.uniform ~rate:0.4));
      if scenario = 2 then
        Net.set_node_fault_model net
          (Some (Repro_faults.Nodefault.fail_silent ~addrs:[ 1; 2 ] ()));
      let rng = Rng.create seed in
      (* register only half the addresses: dead destinations included *)
      for a = 0 to 3 do
        Net.register net ~addr:a (fun ~src:_ _ -> ())
      done;
      let n_msgs = 200 in
      for _ = 1 to n_msgs do
        let src = Rng.int rng 8 and dst = Rng.int rng 8 in
        ignore (Simkit.Engine.schedule engine ~delay:(Rng.float rng 2.0) (fun () ->
            Net.send net ~src ~dst "m"))
      done;
      (* crash one node mid-run so in-flight messages hit a dead handler *)
      ignore (Simkit.Engine.schedule engine ~delay:1.0 (fun () ->
          Net.unregister net ~addr:3));
      Engine.run_all engine;
      let s = Net.stats net in
      let drops =
        s.Net.dropped_loss + s.Net.dropped_dead + s.Net.dropped_fault
        + s.Net.dropped_node + s.Net.dropped_congestion
      in
      s.Net.sent = n_msgs
      && drops = Net.n_dropped net
      && s.Net.sent = s.Net.delivered + drops)

let test_handler_replacement () =
  let engine, net = make () in
  let a = ref 0 and b = ref 0 in
  Net.register net ~addr:1 (fun ~src:_ _ -> incr a);
  Net.register net ~addr:1 (fun ~src:_ _ -> incr b);
  Net.send net ~src:0 ~dst:1 "x";
  Engine.run_all engine;
  Alcotest.(check int) "old handler silent" 0 !a;
  Alcotest.(check int) "new handler fired" 1 !b

let suite =
  [
    ( "netsim",
      [
        Alcotest.test_case "delivery with delay" `Quick test_delivery_with_delay;
        Alcotest.test_case "unregistered dropped" `Quick test_unregistered_dropped;
        Alcotest.test_case "crash drops in-flight" `Quick test_crash_after_send;
        Alcotest.test_case "loss statistics" `Quick test_loss_statistics;
        Alcotest.test_case "loss rate validation" `Quick test_loss_rate_validation;
        Alcotest.test_case "set loss rate validation" `Quick
          test_set_loss_rate_validation;
        Alcotest.test_case "on_send tap" `Quick test_on_send_tap;
        Alcotest.test_case "endpoint mapping" `Quick test_endpoint_mapping;
        Alcotest.test_case "set loss rate" `Quick test_set_loss_rate;
        Alcotest.test_case "handler replacement" `Quick test_handler_replacement;
        Alcotest.test_case "capacity: queueing delay" `Quick
          test_capacity_queueing_delay;
        Alcotest.test_case "capacity: overflow drops" `Quick
          test_capacity_overflow_drop;
        Alcotest.test_case "capacity: priority bands" `Quick test_capacity_priority;
        Alcotest.test_case "capacity: occupancy and taps" `Quick
          test_capacity_occupancy_and_tap;
        Alcotest.test_case "capacity: default off" `Quick test_capacity_default_off;
        Alcotest.test_case "capacity: validation" `Quick test_capacity_validation;
        Alcotest.test_case "set_loss_rate vs fault model" `Quick
          test_set_loss_rate_vs_fault_model;
        QCheck_alcotest.to_alcotest qcheck_stats_conservation;
      ] );
  ]
