module Engine = Simkit.Engine
module Net = Netsim.Net
module Rng = Repro_util.Rng

let make ?(loss_rate = 0.0) ?(delay = 0.01) ?(n = 8) () =
  let engine = Engine.create () in
  let topology = Topology.constant ~n_endpoints:n ~delay in
  let net = Net.create ~loss_rate ~engine ~topology ~rng:(Rng.create 1) () in
  (engine, net)

let test_delivery_with_delay () =
  let engine, net = make () in
  let got = ref [] in
  Net.register net ~addr:1 (fun ~src msg -> got := (src, msg, Engine.now engine) :: !got);
  Net.send net ~src:0 ~dst:1 "hello";
  Engine.run_all engine;
  match !got with
  | [ (src, msg, at) ] ->
      Alcotest.(check int) "src" 0 src;
      Alcotest.(check string) "payload" "hello" msg;
      Alcotest.(check (float 1e-9)) "propagation delay" 0.01 at
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_unregistered_dropped () =
  let engine, net = make () in
  Net.send net ~src:0 ~dst:5 "lost";
  Engine.run_all engine;
  Alcotest.(check int) "dropped" 1 (Net.n_dropped net);
  Alcotest.(check int) "sent" 1 (Net.n_sent net);
  Alcotest.(check int) "delivered" 0 (Net.n_delivered net)

let test_crash_after_send () =
  let engine, net = make () in
  let got = ref 0 in
  Net.register net ~addr:1 (fun ~src:_ _ -> incr got);
  Net.send net ~src:0 ~dst:1 "in flight";
  (* crash before the message arrives *)
  Net.unregister net ~addr:1;
  Engine.run_all engine;
  Alcotest.(check int) "nothing delivered" 0 !got;
  Alcotest.(check int) "dropped" 1 (Net.n_dropped net);
  (* the in-flight drop is attributed to the dead destination, not loss *)
  let s = Net.stats net in
  Alcotest.(check int) "dropped_dead" 1 s.Net.dropped_dead;
  Alcotest.(check int) "dropped_loss" 0 s.Net.dropped_loss;
  Alcotest.(check int) "dropped_fault" 0 s.Net.dropped_fault

let test_loss_statistics () =
  let engine, net = make ~loss_rate:0.5 () in
  let got = ref 0 in
  Net.register net ~addr:1 (fun ~src:_ _ -> incr got);
  for _ = 1 to 2000 do
    Net.send net ~src:0 ~dst:1 "x"
  done;
  Engine.run_all engine;
  Alcotest.(check bool) "about half lost" true (!got > 850 && !got < 1150)

let test_loss_rate_validation () =
  Alcotest.check_raises "loss 1.0" (Invalid_argument "Net.create: loss_rate") (fun () ->
      ignore (make ~loss_rate:1.0 ()))

let test_set_loss_rate_validation () =
  let _, net = make () in
  Alcotest.check_raises "loss 1.0" (Invalid_argument "Net.set_loss_rate: loss_rate")
    (fun () -> Net.set_loss_rate net 1.0);
  Alcotest.check_raises "negative" (Invalid_argument "Net.set_loss_rate: loss_rate")
    (fun () -> Net.set_loss_rate net (-0.01));
  (* the rejected values left the configured rate untouched *)
  Alcotest.(check (float 1e-9)) "rate unchanged" 0.0 (Net.loss_rate net);
  Net.set_loss_rate net 0.999;
  Alcotest.(check (float 1e-9)) "boundary accepted" 0.999 (Net.loss_rate net);
  Net.set_loss_rate net 0.0;
  Alcotest.(check (float 1e-9)) "zero accepted" 0.0 (Net.loss_rate net)

let test_on_send_tap () =
  let engine, net = make () in
  let taps = ref [] in
  Net.on_send net (fun ~time ~src ~dst msg -> taps := (time, src, dst, msg) :: !taps);
  Net.register net ~addr:2 (fun ~src:_ _ -> ());
  Net.send net ~src:0 ~dst:2 "a";
  Net.send net ~src:1 ~dst:7 "b";
  (* tap sees even undeliverable sends *)
  Engine.run_all engine;
  Alcotest.(check int) "tap count" 2 (List.length !taps)

let test_endpoint_mapping () =
  let engine = Engine.create () in
  let topology = Topology.constant ~n_endpoints:2 ~delay:0.5 in
  (* addresses 0,2 share endpoint 0; address 1 is endpoint 1 *)
  let net =
    Net.create ~endpoint_of:(fun a -> a mod 2) ~engine ~topology ~rng:(Rng.create 1) ()
  in
  Alcotest.(check (float 1e-9)) "cross endpoint" 0.5 (Net.delay net 0 1);
  Alcotest.(check bool) "same endpoint, distinct addr: small LAN delay" true
    (Net.delay net 0 2 > 0.0 && Net.delay net 0 2 < 0.01);
  Alcotest.(check (float 1e-9)) "self" 0.0 (Net.delay net 0 0)

let test_set_loss_rate () =
  let engine, net = make () in
  let got = ref 0 in
  Net.register net ~addr:1 (fun ~src:_ _ -> incr got);
  Net.set_loss_rate net 0.999;
  Alcotest.(check (float 1e-9)) "getter" 0.999 (Net.loss_rate net);
  for _ = 1 to 200 do
    Net.send net ~src:0 ~dst:1 "x"
  done;
  Engine.run_all engine;
  Alcotest.(check bool) "almost all lost" true (!got < 10)

let test_handler_replacement () =
  let engine, net = make () in
  let a = ref 0 and b = ref 0 in
  Net.register net ~addr:1 (fun ~src:_ _ -> incr a);
  Net.register net ~addr:1 (fun ~src:_ _ -> incr b);
  Net.send net ~src:0 ~dst:1 "x";
  Engine.run_all engine;
  Alcotest.(check int) "old handler silent" 0 !a;
  Alcotest.(check int) "new handler fired" 1 !b

let suite =
  [
    ( "netsim",
      [
        Alcotest.test_case "delivery with delay" `Quick test_delivery_with_delay;
        Alcotest.test_case "unregistered dropped" `Quick test_unregistered_dropped;
        Alcotest.test_case "crash drops in-flight" `Quick test_crash_after_send;
        Alcotest.test_case "loss statistics" `Quick test_loss_statistics;
        Alcotest.test_case "loss rate validation" `Quick test_loss_rate_validation;
        Alcotest.test_case "set loss rate validation" `Quick
          test_set_loss_rate_validation;
        Alcotest.test_case "on_send tap" `Quick test_on_send_tap;
        Alcotest.test_case "endpoint mapping" `Quick test_endpoint_mapping;
        Alcotest.test_case "set loss rate" `Quick test_set_loss_rate;
        Alcotest.test_case "handler replacement" `Quick test_handler_replacement;
      ] );
  ]
