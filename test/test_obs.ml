(* The observability layer: ring-buffer sink semantics, JSONL
   round-tripping of every event variant, hop-path reconstruction from a
   live overlay's trace, engine/net runtime counters, and the guarantee
   that a disabled trace changes nothing. *)

module Obs = Repro_obs
module Event = Obs.Event
module Sim = Harness.Sim
module Live = Sim.Live
module Node = Mspastry.Node
module M = Mspastry.Message
module Collector = Overlay_metrics.Collector
module Peer = Pastry.Peer

(* ---------------------------------------------------------------- ring *)

let test_ring_eviction () =
  let r = Obs.Sink.Ring.create ~capacity:4 in
  for i = 1 to 10 do
    Obs.Sink.Ring.push r i
  done;
  Alcotest.(check (list int)) "keeps newest, oldest first" [ 7; 8; 9; 10 ]
    (Obs.Sink.Ring.to_list r);
  Alcotest.(check int) "evicted count" 6 (Obs.Sink.Ring.evicted r);
  Alcotest.(check int) "length" 4 (Obs.Sink.Ring.length r);
  Alcotest.(check int) "capacity" 4 (Obs.Sink.Ring.capacity r);
  Obs.Sink.Ring.clear r;
  Alcotest.(check (list int)) "clear empties" [] (Obs.Sink.Ring.to_list r);
  Obs.Sink.Ring.push r 42;
  Alcotest.(check (list int)) "usable after clear" [ 42 ] (Obs.Sink.Ring.to_list r)

(* ------------------------------------------------------ JSON round-trip *)

let every_variant : Event.t list =
  let t = 1234.56789 in
  [
    { time = t; body = Event.Send { src = 1; dst = 2; cls = "lookup"; seq = Some 7 } };
    { time = t; body = Event.Send { src = 1; dst = 2; cls = "join"; seq = None } };
    { time = t; body = Event.Recv { src = 3; dst = 4; cls = "rt-probes" } };
    {
      time = t;
      body =
        Event.Drop { src = 5; dst = 6; cls = "lookup"; seq = Some 9; reason = Event.Loss };
    };
    {
      time = t;
      body =
        Event.Drop
          { src = 5; dst = 6; cls = "join"; seq = None; reason = Event.Dead_destination };
    };
    {
      time = t;
      body =
        Event.Drop
          { src = 5; dst = 6; cls = "lookup"; seq = Some 10; reason = Event.Congested };
    };
    { time = t; body = Event.Timer_fired };
    { time = t; body = Event.Timer_cancelled };
    { time = t; body = Event.Node_join { addr = 11 } };
    { time = t; body = Event.Node_crash { addr = 12 } };
    {
      time = t;
      body =
        Event.Lookup_hop { seq = 3; addr = 13; stage = Event.Leafset; hops = 2; retx = true };
    };
    {
      time = t;
      body =
        Event.Lookup_hop { seq = 4; addr = 14; stage = Event.Table; hops = 0; retx = false };
    };
    {
      time = t;
      body =
        Event.Lookup_hop { seq = 5; addr = 15; stage = Event.Closest; hops = 1; retx = false };
    };
    {
      time = t;
      body =
        Event.Drop
          { src = 7; dst = 8; cls = "lookup"; seq = Some 11; reason = Event.Faulted };
    };
    { time = t; body = Event.Fault { label = "mass-crash"; action = "crash 25%" } };
    { time = t; body = Event.Hop_ack { addr = 16; dst = 17; rtt = 0.042 } };
    { time = t; body = Event.Ack_timeout { addr = 18; dst = 19; waited = 1.5; reroutes = 2 } };
    { time = t; body = Event.Probe { addr = 20; target = 21; kind = "leafset" } };
    { time = t; body = Event.Suspected { addr = 22; target = 23; backoff = 4.0 } };
    { time = t; body = Event.Unsuspected { addr = 22; target = 23 } };
    { time = t; body = Event.Lookup_retry { seq = 6; addr = 24; attempt = 1 } };
    { time = t; body = Event.Queue { addr = 25; cls = "lookup"; delay = 0.012; occ = 3 } };
  ]

let test_jsonl_roundtrip () =
  List.iter
    (fun ev ->
      let line = Obs.Json.to_string (Event.to_json ev) in
      match Obs.Json.of_string line with
      | Error e -> Alcotest.failf "unparseable %S: %s" line e
      | Ok j -> (
          match Event.of_json j with
          | Error e -> Alcotest.failf "bad event %S: %s" line e
          | Ok ev' ->
              Alcotest.(check bool)
                (Printf.sprintf "round-trips %s" (Event.kind_name ev))
                true (ev = ev')))
    every_variant

let test_jsonl_file_sink () =
  let path = Filename.temp_file "obs" ".jsonl" in
  let trace = Obs.Trace.create (Obs.Sink.jsonl_file path) in
  List.iter (Obs.Trace.emit trace) every_variant;
  Obs.Trace.close trace;
  let ic = open_in path in
  let back = ref [] in
  (try
     while true do
       let line = input_line ic in
       match Obs.Json.of_string line with
       | Ok j -> (
           match Event.of_json j with
           | Ok ev -> back := ev :: !back
           | Error e -> Alcotest.failf "bad line %S: %s" line e)
       | Error e -> Alcotest.failf "bad json %S: %s" line e
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "file round-trips all variants" true
    (List.rev !back = every_variant)

(* ------------------------------------------------ hop-path reconstruction *)

let traced_flat_config ?(lookup_rate = 0.0) () =
  {
    Sim.default_config with
    topology = Sim.Flat 0.02;
    lookup_rate;
    warmup = 0.0;
    window = 60.0;
    tracing = Sim.Trace_memory 200_000;
  }

let test_hop_path_3_nodes () =
  let live = Live.create (traced_flat_config ()) ~n_endpoints:8 in
  for i = 0 to 2 do
    Live.spawn_at live ~time:(float_of_int i *. 5.0) ()
  done;
  Live.run_until live 120.0;
  Alcotest.(check int) "3 nodes active" 3 (Live.node_count live);
  let nodes = Live.active_nodes live in
  let origin = List.hd nodes in
  (* route to another node's exact id: that node is the key's root *)
  let target =
    List.find
      (fun n -> (Node.me n).Peer.addr <> (Node.me origin).Peer.addr)
      nodes
  in
  let key = (Node.me target).Peer.id in
  let seq = Live.lookup live origin ~key in
  Live.run_until live 130.0;
  let events = Obs.Trace.events (Live.trace live) in
  let path = Obs.Hoppath.find events ~seq in
  Alcotest.(check bool) "path non-empty" true (path <> []);
  let first = List.hd path and last = List.nth path (List.length path - 1) in
  Alcotest.(check int) "starts at the origin" (Node.me origin).Peer.addr
    first.Obs.Hoppath.addr;
  Alcotest.(check int) "ends at the key's root" (Node.me target).Peer.addr
    last.Obs.Hoppath.addr;
  Alcotest.(check int) "origin counts zero hops" 0 first.Obs.Hoppath.hops;
  (* hop counters increase along the reconstructed path *)
  let rec ordered = function
    | a :: (b :: _ as rest) ->
        a.Obs.Hoppath.hops < b.Obs.Hoppath.hops
        && a.Obs.Hoppath.time <= b.Obs.Hoppath.time
        && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "hops and time increase" true (ordered path);
  (* the same path comes back through of_events *)
  let all = Obs.Hoppath.of_events events in
  match List.find_opt (fun p -> p.Obs.Hoppath.seq = seq) all with
  | None -> Alcotest.fail "lookup missing from of_events"
  | Some p -> Alcotest.(check bool) "of_events agrees with find" true (p.path = path)

(* --------------------------------------------------------- null sink *)

let run_counters config =
  let live = Live.create config ~n_endpoints:16 in
  for i = 0 to 9 do
    Live.spawn_at live ~time:(float_of_int i *. 5.0) ()
  done;
  Live.run_until live 600.0;
  let net = Live.net live in
  let summary =
    Collector.summary ~since:0.0 ~until:infinity ~drain:0.0 (Live.collector live)
  in
  (Simkit.Engine.stats (Live.engine live), Netsim.Net.stats net, summary)

let test_null_sink_sanity () =
  (* the disabled trace must not change behaviour: identical engine,
     network and collector numbers with tracing off and on *)
  let e_off, n_off, s_off = run_counters (traced_flat_config ~lookup_rate:0.05 ()) in
  let e_on, n_on, s_on =
    run_counters
      { (traced_flat_config ~lookup_rate:0.05 ()) with tracing = Sim.Trace_off }
  in
  Alcotest.(check bool) "engine stats identical" true (e_off = e_on);
  Alcotest.(check bool) "net stats identical" true (n_off = n_on);
  Alcotest.(check bool) "summaries identical" true (s_off = s_on);
  Alcotest.(check bool) "some traffic flowed" true (n_on.Netsim.Net.sent > 0);
  (* emitting into the disabled trace is a no-op *)
  Alcotest.(check bool) "disabled trace off" false (Obs.Trace.enabled Obs.Trace.disabled);
  Obs.Trace.emit Obs.Trace.disabled (List.hd every_variant);
  Alcotest.(check (list pass)) "disabled trace holds nothing" []
    (Obs.Trace.events Obs.Trace.disabled)

(* ----------------------------------------------------- engine counters *)

let test_engine_counters () =
  let e = Simkit.Engine.create () in
  let fired = ref 0 in
  let id1 = Simkit.Engine.schedule e ~delay:1.0 (fun () -> incr fired) in
  let _id2 = Simkit.Engine.schedule e ~delay:2.0 (fun () -> incr fired) in
  let id3 = Simkit.Engine.schedule e ~delay:3.0 (fun () -> incr fired) in
  Simkit.Engine.cancel e id3;
  Simkit.Engine.run e ~until:10.0;
  let s = Simkit.Engine.stats e in
  Alcotest.(check int) "scheduled" 3 s.Simkit.Engine.scheduled;
  Alcotest.(check int) "fired" 2 s.Simkit.Engine.fired;
  Alcotest.(check int) "cancelled" 1 s.Simkit.Engine.cancelled;
  Alcotest.(check int) "pending" 0 s.Simkit.Engine.pending;
  Alcotest.(check int) "callbacks ran" 2 !fired;
  Alcotest.(check bool) "heap high-water mark" true (s.Simkit.Engine.heap_hwm >= 3);
  (* cancelling a fired event is a no-op, not a counter corruption *)
  Simkit.Engine.cancel e id1;
  let s' = Simkit.Engine.stats e in
  Alcotest.(check int) "cancel after fire ignored" 1 s'.Simkit.Engine.cancelled;
  Alcotest.(check int) "pending not driven negative" 0 s'.Simkit.Engine.pending

let test_registry () =
  let r = Obs.Registry.create () in
  let x = ref 5 in
  Obs.Registry.gauge_i r "x" (fun () -> !x);
  Obs.Registry.gauge_f r "y" (fun () -> 2.5);
  x := 7;
  Alcotest.(check bool) "dump samples live, in order" true
    (Obs.Registry.dump r = [ ("x", Obs.Registry.Int 7); ("y", Obs.Registry.Float 2.5) ]);
  Alcotest.(check bool) "find" true (Obs.Registry.find r "x" = Some (Obs.Registry.Int 7));
  Alcotest.check_raises "re-register raises"
    (Invalid_argument "Registry.register: duplicate metric \"x\"") (fun () ->
      Obs.Registry.gauge_i r "x" (fun () -> 0));
  Alcotest.(check bool) "original closure untouched" true
    (Obs.Registry.find r "x" = Some (Obs.Registry.Int 7))

(* ------------------------------------- trace counts vs collector (E2E) *)

let test_trace_matches_collector () =
  (* a churning flat-topology run: per-class send counts seen by the
     trace must equal the collector's control/lookup aggregates *)
  let live = Live.create (traced_flat_config ~lookup_rate:0.05 ()) ~n_endpoints:32 in
  for i = 0 to 19 do
    Live.spawn_at live ~time:(float_of_int i *. 5.0) ()
  done;
  Live.run_until live 900.0;
  let events = Obs.Trace.events (Live.trace live) in
  let count_class name =
    List.fold_left
      (fun acc ev ->
        match ev.Event.body with
        | Event.Send { cls; _ } when cls = name -> acc + 1
        | _ -> acc)
      0 events
  in
  let summary =
    Collector.summary ~since:0.0 ~until:infinity ~drain:0.0 (Live.collector live)
  in
  let traced_control =
    List.fold_left
      (fun acc c -> if M.is_control c then acc + count_class (M.class_name c) else acc)
      0 M.all_classes
  in
  let traced_lookup = count_class (M.class_name M.C_lookup) in
  Alcotest.(check bool) "events captured" true (events <> []);
  Alcotest.(check int) "control sends match collector"
    (int_of_float summary.Collector.control_msgs)
    traced_control;
  Alcotest.(check int) "lookup sends match collector"
    (int_of_float summary.Collector.lookup_msgs)
    traced_lookup;
  (* and both agree with the network's own per-class counters *)
  List.iter
    (fun c ->
      let name = M.class_name c in
      Alcotest.(check int)
        (Printf.sprintf "net counter matches trace for %s" name)
        (Netsim.Net.sent_in_class (Live.net live) name)
        (count_class name))
    M.all_classes

(* ------------------------------------------------------------- profile *)

let test_profile_disabled_noop () =
  Obs.Profile.reset ();
  let ph = Obs.Profile.phase "test.noop" in
  Alcotest.(check bool) "off by default after reset" false (Obs.Profile.enabled ());
  Obs.Profile.enter ph;
  Obs.Profile.leave ph;
  let r = Obs.Profile.report () in
  Alcotest.(check int64) "no wall time" 0L r.Obs.Profile.wall_ns;
  List.iter
    (fun e -> Alcotest.(check int) "no calls recorded" 0 e.Obs.Profile.calls)
    r.Obs.Profile.entries;
  Obs.Profile.reset ()

let spin () =
  (* burn a little real time so self_ns is visibly positive *)
  let x = ref 0 in
  for i = 1 to 200_000 do
    x := !x + i
  done;
  ignore !x

let test_profile_accounting () =
  Obs.Profile.reset ();
  let pa = Obs.Profile.phase "test.outer" and pb = Obs.Profile.phase "test.inner" in
  Alcotest.(check int) "phase ids idempotent" pa (Obs.Profile.phase "test.outer");
  Obs.Profile.set_enabled true;
  Obs.Profile.enter pa;
  spin ();
  Obs.Profile.enter pb;
  spin ();
  Obs.Profile.leave pb;
  spin ();
  Obs.Profile.leave pa;
  Obs.Profile.set_enabled false;
  let r = Obs.Profile.report () in
  let entry name =
    List.find (fun e -> e.Obs.Profile.name = name) r.Obs.Profile.entries
  in
  let a = entry "test.outer" and b = entry "test.inner" in
  Alcotest.(check int) "outer calls" 1 a.Obs.Profile.calls;
  Alcotest.(check int) "inner calls" 1 b.Obs.Profile.calls;
  Alcotest.(check bool) "self positive" true (a.Obs.Profile.self_ns > 0L);
  Alcotest.(check bool) "inclusive >= self" true
    (a.Obs.Profile.total_ns >= a.Obs.Profile.self_ns);
  Alcotest.(check bool) "outer inclusive covers inner" true
    (a.Obs.Profile.total_ns >= b.Obs.Profile.total_ns);
  (* self times plus the unattributed remainder partition the wall *)
  let sum_self =
    List.fold_left
      (fun acc e -> Int64.add acc e.Obs.Profile.self_ns)
      0L r.Obs.Profile.entries
  in
  Alcotest.(check int64) "self + unattributed = wall" r.Obs.Profile.wall_ns
    (Int64.add sum_self r.Obs.Profile.unattributed_ns);
  Alcotest.(check bool) "wall covers outer" true
    (r.Obs.Profile.wall_ns >= a.Obs.Profile.total_ns);
  (* the json rendering carries every phase *)
  (match Obs.Json.member "phases" (Obs.Profile.report_to_json r) with
  | Some (Obs.Json.List phases) ->
      Alcotest.(check bool) "json phases present" true (List.length phases >= 2)
  | _ -> Alcotest.fail "report_to_json: no phases list");
  Obs.Profile.reset ()

let test_profile_reentrant () =
  Obs.Profile.reset ();
  let p = Obs.Profile.phase "test.recur" in
  Obs.Profile.set_enabled true;
  Obs.Profile.enter p;
  Obs.Profile.enter p;
  Obs.Profile.leave p;
  Obs.Profile.leave p;
  Obs.Profile.set_enabled false;
  let r = Obs.Profile.report () in
  let e = List.find (fun e -> e.Obs.Profile.name = "test.recur") r.Obs.Profile.entries in
  Alcotest.(check int) "both entries counted" 2 e.Obs.Profile.calls;
  Alcotest.(check bool) "inclusive not double-counted" true
    (e.Obs.Profile.total_ns <= r.Obs.Profile.wall_ns);
  Obs.Profile.reset ()

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "ring buffer eviction order" `Quick test_ring_eviction;
        Alcotest.test_case "jsonl round-trip, every variant" `Quick test_jsonl_roundtrip;
        Alcotest.test_case "jsonl file sink round-trip" `Quick test_jsonl_file_sink;
        Alcotest.test_case "hop path of a 3-node lookup" `Quick test_hop_path_3_nodes;
        Alcotest.test_case "null sink changes nothing" `Quick test_null_sink_sanity;
        Alcotest.test_case "engine counters" `Quick test_engine_counters;
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "trace counts match collector" `Quick
          test_trace_matches_collector;
      ] );
  ]
