module Sim = Harness.Sim
module Live = Sim.Live
module Cache = Squirrel.Cache
module Workload = Squirrel.Workload
module Rng = Repro_util.Rng

let test_key_of_url () =
  let k1 = Cache.key_of_url "http://a/x" in
  let k2 = Cache.key_of_url "http://a/x" in
  let k3 = Cache.key_of_url "http://a/y" in
  Alcotest.(check bool) "deterministic" true (Pastry.Nodeid.equal k1 k2);
  Alcotest.(check bool) "distinct urls differ" false (Pastry.Nodeid.equal k1 k3)

let test_workload_structure () =
  let wl =
    Workload.generate ~rng:(Rng.create 1) ~n_clients:10 ~duration:(2.0 *. 86_400.0) ()
  in
  let reqs = Workload.requests wl in
  Alcotest.(check bool) "nonempty" true (Array.length reqs > 100);
  let sorted = ref true in
  for i = 1 to Array.length reqs - 1 do
    if reqs.(i).Workload.time < reqs.(i - 1).Workload.time then sorted := false
  done;
  Alcotest.(check bool) "sorted" true !sorted;
  Array.iter
    (fun r ->
      Alcotest.(check bool) "client in range" true
        (r.Workload.client >= 0 && r.Workload.client < 10))
    reqs;
  Alcotest.(check bool) "zipf reuses urls" true
    (Workload.distinct_urls wl < Workload.n_requests wl)

let test_workload_diurnal () =
  let wl =
    Workload.generate ~rng:(Rng.create 2) ~n_clients:20 ~duration:86_400.0 ()
  in
  let reqs = Workload.requests wl in
  let in_window lo hi =
    Array.fold_left
      (fun acc r -> if r.Workload.time >= lo && r.Workload.time < hi then acc + 1 else acc)
      0 reqs
  in
  (* office hours (10:00-11:00) vs night (03:00-04:00), day 0 is a weekday *)
  let busy = in_window (10.0 *. 3600.0) (11.0 *. 3600.0) in
  let calm = in_window (3.0 *. 3600.0) (4.0 *. 3600.0) in
  Alcotest.(check bool) "diurnal shape" true (busy > 3 * calm)

let test_workload_weekend () =
  (* day 4 (Fri) vs day 5 (Sat) of a 6-day trace *)
  let wl =
    Workload.generate ~rng:(Rng.create 3) ~n_clients:20 ~duration:(6.0 *. 86_400.0) ()
  in
  let reqs = Workload.requests wl in
  let on_day d =
    Array.fold_left
      (fun acc r ->
        let day = int_of_float (r.Workload.time /. 86_400.0) in
        if day = d then acc + 1 else acc)
      0 reqs
  in
  Alcotest.(check bool) "weekend quieter" true (on_day 5 * 2 < on_day 4)

let build_overlay n =
  let config =
    {
      Sim.default_config with
      topology = Sim.Flat 0.02;
      lookup_rate = 0.0;
      warmup = 0.0;
      window = 60.0;
    }
  in
  let live = Live.create config ~n_endpoints:(max 8 n) in
  for i = 0 to n - 1 do
    Live.spawn_at live ~time:(float_of_int i *. 5.0) ()
  done;
  Live.run_until live ((float_of_int n *. 5.0) +. 120.0);
  live

let test_hit_after_miss () =
  let live = build_overlay 10 in
  let cache = Cache.create ~live () in
  let client = List.hd (Live.active_nodes live) in
  Cache.request cache ~client ~url:"http://example/page";
  Live.run_until live (Simkit.Engine.now (Live.engine live) +. 10.0);
  let s1 = Cache.stats cache in
  Alcotest.(check int) "first is a miss" 1 s1.Cache.misses;
  Alcotest.(check int) "no hit yet" 0 s1.Cache.hits;
  Alcotest.(check int) "responded" 1 s1.Cache.responses;
  (* second request for the same url from a different client: a hit *)
  let client2 = List.nth (Live.active_nodes live) 5 in
  Cache.request cache ~client:client2 ~url:"http://example/page";
  Live.run_until live (Simkit.Engine.now (Live.engine live) +. 10.0);
  let s2 = Cache.stats cache in
  Alcotest.(check int) "hit" 1 s2.Cache.hits;
  Alcotest.(check int) "still one miss" 1 s2.Cache.misses;
  Alcotest.(check int) "one object cached" 1 s2.Cache.cached_objects

let test_distinct_urls_different_homes () =
  let live = build_overlay 10 in
  let cache = Cache.create ~live () in
  let client = List.hd (Live.active_nodes live) in
  for i = 0 to 19 do
    Cache.request cache ~client ~url:(Printf.sprintf "http://example/p%d" i)
  done;
  Live.run_until live (Simkit.Engine.now (Live.engine live) +. 20.0);
  let s = Cache.stats cache in
  Alcotest.(check int) "all misses" 20 s.Cache.misses;
  Alcotest.(check int) "all answered" 20 s.Cache.responses;
  Alcotest.(check int) "all cached" 20 s.Cache.cached_objects

let test_latency_hit_faster_than_miss () =
  let live = build_overlay 10 in
  let cache = Cache.create ~live () in
  let client = List.hd (Live.active_nodes live) in
  Cache.request cache ~client ~url:"http://example/slow";
  Live.run_until live (Simkit.Engine.now (Live.engine live) +. 10.0);
  let miss_latency = (Cache.stats cache).Cache.mean_latency in
  (* a hit avoids the 2 * 150 ms origin fetch *)
  Cache.request cache ~client ~url:"http://example/slow";
  Live.run_until live (Simkit.Engine.now (Live.engine live) +. 10.0);
  let s = Cache.stats cache in
  let hit_latency = (s.Cache.mean_latency *. 2.0) -. miss_latency in
  Alcotest.(check bool) "hit faster" true (hit_latency < miss_latency -. 0.1)

let test_eviction () =
  let live = build_overlay 4 in
  let cache = Cache.create ~capacity_per_node:5 ~live () in
  let client = List.hd (Live.active_nodes live) in
  for i = 0 to 39 do
    Cache.request cache ~client ~url:(Printf.sprintf "http://bulk/%d" i)
  done;
  Live.run_until live (Simkit.Engine.now (Live.engine live) +. 30.0);
  let s = Cache.stats cache in
  (* 4 home nodes x capacity 5 = at most 20 resident objects *)
  Alcotest.(check bool) "capacity respected" true (s.Cache.cached_objects <= 20)

let test_deployment_smoke () =
  let r = Squirrel.Deployment.run ~n_nodes:10 ~duration:7200.0 ~window:600.0 ~seed:5 () in
  Alcotest.(check int) "all nodes" 10 r.Squirrel.Deployment.n_nodes;
  Alcotest.(check bool) "requests flowed" true
    (r.Squirrel.Deployment.cache_stats.Cache.requests > 10);
  Alcotest.(check bool) "most answered" true
    (r.Squirrel.Deployment.cache_stats.Cache.failed * 10
    < r.Squirrel.Deployment.cache_stats.Cache.requests);
  Alcotest.(check bool) "traffic series populated" true
    (Array.length r.Squirrel.Deployment.total_traffic > 0)

let suite =
  [
    ( "squirrel",
      [
        Alcotest.test_case "key of url" `Quick test_key_of_url;
        Alcotest.test_case "workload structure" `Quick test_workload_structure;
        Alcotest.test_case "workload diurnal" `Quick test_workload_diurnal;
        Alcotest.test_case "workload weekend" `Quick test_workload_weekend;
        Alcotest.test_case "hit after miss" `Quick test_hit_after_miss;
        Alcotest.test_case "distinct urls, distinct homes" `Quick
          test_distinct_urls_different_homes;
        Alcotest.test_case "hits are faster" `Quick test_latency_hit_faster_than_miss;
        Alcotest.test_case "eviction respects capacity" `Quick test_eviction;
        Alcotest.test_case "deployment smoke" `Slow test_deployment_smoke;
      ] );
  ]
