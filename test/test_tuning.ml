module Tuning = Mspastry.Tuning
module Config = Mspastry.Config
module Nodeid = Pastry.Nodeid
module Peer = Pastry.Peer
module Leafset = Pastry.Leafset

let cfg = Config.default

let test_pf_limits () =
  Alcotest.(check (float 0.0)) "mu=0" 0.0 (Tuning.pf ~t_detect:100.0 ~mu:0.0);
  Alcotest.(check (float 0.0)) "t=0" 0.0 (Tuning.pf ~t_detect:0.0 ~mu:0.1);
  Alcotest.(check bool) "large x -> 1" true (Tuning.pf ~t_detect:1e9 ~mu:1.0 > 0.999);
  (* small x: pf ~ x/2 *)
  let p = Tuning.pf ~t_detect:1.0 ~mu:1e-6 in
  Alcotest.(check bool) "small x linear" true (Float.abs (p -. 5e-7) < 1e-8)

let test_pf_monotone () =
  let prev = ref 0.0 in
  List.iter
    (fun t ->
      let p = Tuning.pf ~t_detect:t ~mu:1e-3 in
      Alcotest.(check bool) "monotone in T" true (p >= !prev);
      prev := p)
    [ 1.0; 10.0; 100.0; 1000.0; 10000.0 ]

let test_expected_hops () =
  (* b=4, N=65536: 15/16 * log16(65536) = 15/16*4 = 3.75 *)
  Alcotest.(check (float 1e-6)) "known value" 3.75 (Tuning.expected_hops ~b:4 ~n:65536.0);
  Alcotest.(check bool) "at least 1" true (Tuning.expected_hops ~b:4 ~n:2.0 >= 1.0)

let test_raw_loss_monotone_in_trt () =
  let prev = ref 0.0 in
  List.iter
    (fun trt ->
      let lr = Tuning.raw_loss_rate cfg ~trt ~n:1000.0 ~mu:1e-4 in
      Alcotest.(check bool) "monotone" true (lr >= !prev);
      prev := lr)
    [ 10.0; 30.0; 100.0; 300.0; 1000.0 ]

let test_solve_trt_hits_target () =
  let n = 1000.0 and mu = 1e-4 in
  let trt = Tuning.solve_trt cfg ~n ~mu in
  let achieved = Tuning.raw_loss_rate cfg ~trt ~n ~mu in
  Alcotest.(check bool) "achieves target" true
    (Float.abs (achieved -. cfg.Config.lr_target) < 0.005)

let test_solve_trt_floor () =
  (* catastrophic churn: even the floor misses the target -> floor *)
  let trt = Tuning.solve_trt cfg ~n:1000.0 ~mu:0.05 in
  Alcotest.(check (float 1e-6)) "floor" 9.0 trt

let test_solve_trt_cap () =
  (* almost no churn: max probing period suffices *)
  let trt = Tuning.solve_trt cfg ~n:1000.0 ~mu:1e-9 in
  Alcotest.(check (float 1e-6)) "cap" cfg.Config.t_rt_max trt

let leafset_of_n n =
  (* evenly spaced ring of n nodes; leaf set of node 0 *)
  let spacing = Nodeid.to_float Nodeid.max_value /. float_of_int n in
  let me = Peer.make (Nodeid.of_int 0) 0 in
  let ls = Leafset.create ~l:32 ~me in
  for k = 1 to n - 1 do
    (* of_int only goes to 2^62; place nodes by repeated addition *)
    ignore spacing;
    ignore k
  done;
  ls

let test_estimate_n () =
  (* build a ring with known spacing via add of evenly spaced ids *)
  let me = Peer.make (Nodeid.of_int 0) 0 in
  let ls = Leafset.create ~l:8 ~me in
  (* 2^128 / 256 spacing: ids k * 2^120 - use hex construction *)
  let id_at k =
    let hexbyte = Printf.sprintf "%02x" k in
    Nodeid.of_hex (hexbyte ^ String.concat "" (List.init 30 (fun _ -> "0")))
  in
  (* neighbours at 1..4 /256 and 252..255/256 of the ring *)
  List.iter (fun k -> ignore (Leafset.add ls (Peer.make (id_at k) k))) [ 1; 2; 3; 4; 252; 253; 254; 255 ];
  let n = Tuning.estimate_n ls in
  (* 9 nodes spanning 8/256 of the ring -> N ~ 288 *)
  Alcotest.(check bool) "density estimate"
    true
    (n > 200.0 && n < 400.0);
  ignore (leafset_of_n 4)

let test_estimate_n_empty () =
  let ls = Leafset.create ~l:8 ~me:(Peer.make (Nodeid.of_int 0) 0) in
  Alcotest.(check (float 0.0)) "singleton" 1.0 (Tuning.estimate_n ls)

let test_estimate_mu () =
  let t = Tuning.create cfg ~now:0.0 in
  Alcotest.(check (float 0.0)) "no failures" 0.0 (Tuning.estimate_mu t ~m:10 ~now:100.0);
  (* 5 failures among 10 nodes over 1000s -> mu = 5 / (10*1000) *)
  List.iter (fun ts -> Tuning.record_failure t ~now:ts) [ 200.; 400.; 600.; 800.; 1000. ];
  let mu = Tuning.estimate_mu t ~m:10 ~now:1000.0 in
  Alcotest.(check (float 1e-9)) "k/(M Tkf)" 5e-4 mu;
  Alcotest.(check int) "count" 5 (Tuning.failures_seen t)

let test_estimate_mu_zero_members () =
  let t = Tuning.create cfg ~now:0.0 in
  Tuning.record_failure t ~now:10.0;
  Alcotest.(check (float 0.0)) "m=0 safe" 0.0 (Tuning.estimate_mu t ~m:0 ~now:20.0)

let test_current_trt_median () =
  let t = Tuning.create cfg ~now:0.0 in
  let ls = Leafset.create ~l:8 ~me:(Peer.make (Nodeid.of_int 0) 0) in
  (* no local failures: local estimate = cap. Remote values pull the
     median down. *)
  List.iter (fun v -> Tuning.observe_remote t v) [ 50.0; 50.0; 50.0; 50.0; 50.0 ];
  let trt = Tuning.current_trt t ~leafset:ls ~m:10 ~now:100.0 in
  Alcotest.(check (float 1e-6)) "median of remotes" 50.0 trt

let test_current_trt_bounds () =
  let t = Tuning.create cfg ~now:0.0 in
  let ls = Leafset.create ~l:8 ~me:(Peer.make (Nodeid.of_int 0) 0) in
  List.iter (fun v -> Tuning.observe_remote t v) [ 1.0; 1.0; 1.0 ];
  let trt = Tuning.current_trt t ~leafset:ls ~m:10 ~now:100.0 in
  Alcotest.(check bool) "floor enforced" true (trt >= 9.0)

let test_observe_remote_ignores_garbage () =
  let t = Tuning.create cfg ~now:0.0 in
  Tuning.observe_remote t nan;
  Tuning.observe_remote t (-5.0);
  Tuning.observe_remote t infinity;
  let ls = Leafset.create ~l:8 ~me:(Peer.make (Nodeid.of_int 0) 0) in
  (* only the local cap remains *)
  let trt = Tuning.current_trt t ~leafset:ls ~m:10 ~now:100.0 in
  Alcotest.(check (float 1e-6)) "unaffected" cfg.Config.t_rt_max trt

let test_current_trt_caps_at_max () =
  (* absurd remote values cannot push Trt past the configured cap *)
  let t = Tuning.create cfg ~now:0.0 in
  let ls = Leafset.create ~l:8 ~me:(Peer.make (Nodeid.of_int 0) 0) in
  List.iter (fun v -> Tuning.observe_remote t v) [ 1e6; 1e6; 1e6; 1e6; 1e6 ];
  let trt = Tuning.current_trt t ~leafset:ls ~m:10 ~now:100.0 in
  Alcotest.(check (float 1e-6)) "capped at t_rt_max" cfg.Config.t_rt_max trt

let test_observe_remote_ring_converges () =
  (* the remote buffer keeps only the newest 32 samples: after 32 fresh
     observations the old regime is fully forgotten and the median
     converges to the new value *)
  let t = Tuning.create cfg ~now:0.0 in
  let ls = Leafset.create ~l:8 ~me:(Peer.make (Nodeid.of_int 0) 0) in
  for _ = 1 to 32 do
    Tuning.observe_remote t 200.0
  done;
  for _ = 1 to 32 do
    Tuning.observe_remote t 50.0
  done;
  let trt = Tuning.current_trt t ~leafset:ls ~m:10 ~now:100.0 in
  Alcotest.(check (float 1e-6)) "old regime forgotten" 50.0 trt;
  (* halfway through the switch the median still reflects the mix *)
  let t2 = Tuning.create cfg ~now:0.0 in
  for _ = 1 to 32 do
    Tuning.observe_remote t2 200.0
  done;
  for _ = 1 to 8 do
    Tuning.observe_remote t2 50.0
  done;
  let trt2 = Tuning.current_trt t2 ~leafset:ls ~m:10 ~now:100.0 in
  Alcotest.(check (float 1e-6)) "mixed regime keeps old median" 200.0 trt2

let qcheck_solve_in_bounds =
  QCheck.Test.make ~name:"solve_trt within [floor, cap]" ~count:200
    QCheck.(pair (float_range 2.0 100000.0) (float_range 1e-8 0.1))
    (fun (n, mu) ->
      let trt = Tuning.solve_trt cfg ~n ~mu in
      trt >= 9.0 -. 1e-9 && trt <= cfg.Config.t_rt_max +. 1e-9)

let suite =
  [
    ( "tuning",
      [
        Alcotest.test_case "pf limits" `Quick test_pf_limits;
        Alcotest.test_case "pf monotone" `Quick test_pf_monotone;
        Alcotest.test_case "expected hops" `Quick test_expected_hops;
        Alcotest.test_case "raw loss monotone in Trt" `Quick test_raw_loss_monotone_in_trt;
        Alcotest.test_case "solve hits target" `Quick test_solve_trt_hits_target;
        Alcotest.test_case "solve floors under extreme churn" `Quick test_solve_trt_floor;
        Alcotest.test_case "solve caps under no churn" `Quick test_solve_trt_cap;
        Alcotest.test_case "estimate N from density" `Quick test_estimate_n;
        Alcotest.test_case "estimate N singleton" `Quick test_estimate_n_empty;
        Alcotest.test_case "estimate mu" `Quick test_estimate_mu;
        Alcotest.test_case "estimate mu zero members" `Quick test_estimate_mu_zero_members;
        Alcotest.test_case "median of remote values" `Quick test_current_trt_median;
        Alcotest.test_case "floor enforced" `Quick test_current_trt_bounds;
        Alcotest.test_case "garbage remotes ignored" `Quick test_observe_remote_ignores_garbage;
        Alcotest.test_case "caps at t_rt_max" `Quick test_current_trt_caps_at_max;
        Alcotest.test_case "remote ring buffer converges" `Quick
          test_observe_remote_ring_converges;
        QCheck_alcotest.to_alcotest qcheck_solve_in_bounds;
      ] );
  ]
