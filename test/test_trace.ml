module Trace = Churn.Trace
module Rng = Repro_util.Rng

let test_poisson_structure () =
  let t = Trace.poisson (Rng.create 1) ~n_avg:50 ~session_mean:600.0 ~duration:3600.0 in
  let evs = Trace.events t in
  Alcotest.(check bool) "has events" true (Array.length evs > 0);
  (* sorted times *)
  let sorted = ref true in
  for i = 1 to Array.length evs - 1 do
    if evs.(i).Trace.time < evs.(i - 1).Trace.time then sorted := false
  done;
  Alcotest.(check bool) "time sorted" true !sorted;
  (* each node joins before it leaves, and at most once each *)
  let join = Hashtbl.create 64 and leave = Hashtbl.create 64 in
  Array.iter
    (fun e ->
      match e.Trace.kind with
      | Trace.Join ->
          Alcotest.(check bool) "single join" false (Hashtbl.mem join e.Trace.node);
          Hashtbl.replace join e.Trace.node e.Trace.time
      | Trace.Leave ->
          Alcotest.(check bool) "single leave" false (Hashtbl.mem leave e.Trace.node);
          Hashtbl.replace leave e.Trace.node e.Trace.time;
          let jt = Hashtbl.find join e.Trace.node in
          Alcotest.(check bool) "join precedes leave" true (jt <= e.Trace.time))
    evs;
  Alcotest.(check bool) "within duration" true
    (Array.for_all (fun e -> e.Trace.time <= Trace.duration t) evs)

let test_poisson_population () =
  let t = Trace.poisson (Rng.create 2) ~n_avg:100 ~session_mean:1800.0 ~duration:7200.0 in
  let pop = Trace.population_series t ~window:600.0 in
  (* mid-trace population within 40% of target *)
  let mid = pop.(Array.length pop / 2) in
  Alcotest.(check bool) "population near target" true (snd mid > 60.0 && snd mid < 140.0);
  Alcotest.(check bool) "max concurrent sane" true
    (Trace.max_concurrent t > 50 && Trace.max_concurrent t < 220)

let test_poisson_mean_session () =
  let t = Trace.poisson (Rng.create 3) ~n_avg:200 ~session_mean:300.0 ~duration:7200.0 in
  let m = Trace.mean_session t in
  (* censored at the trace end, so slightly below the true mean *)
  Alcotest.(check bool) "mean session plausible" true (m > 200.0 && m < 360.0)

let test_failure_rate_matches_mean_session () =
  let t = Trace.poisson (Rng.create 4) ~n_avg:200 ~session_mean:600.0 ~duration:7200.0 in
  let series = Trace.failure_rate_series t ~window:600.0 in
  (* steady state: failure rate per node ~ 1/session_mean *)
  let mids = Array.sub series 2 (Array.length series - 4) in
  let avg = Array.fold_left (fun a (_, v) -> a +. v) 0.0 mids /. float_of_int (Array.length mids) in
  Alcotest.(check bool) "rate near 1/mean" true
    (avg > 0.5 /. 600.0 && avg < 2.0 /. 600.0)

let test_gnutella_band () =
  let t = Trace.gnutella ~scale:0.1 ~duration:(12.0 *. 3600.0) (Rng.create 5) in
  Alcotest.(check string) "name" "gnutella" (Trace.name t);
  let pop = Trace.population_series t ~window:3600.0 in
  (* scaled band: 130-270 plus ramp effects *)
  let late = Array.sub pop 3 (Array.length pop - 3) in
  Array.iter
    (fun (_, p) -> Alcotest.(check bool) "population in band" true (p > 80.0 && p < 350.0))
    late

let test_microsoft_lower_churn () =
  let g = Trace.gnutella ~scale:0.1 ~duration:(24.0 *. 3600.0) (Rng.create 6) in
  let m = Trace.microsoft ~scale:0.01 ~duration:(24.0 *. 3600.0) (Rng.create 7) in
  let avg_rate t =
    let s = Trace.failure_rate_series t ~window:3600.0 in
    let tail = Array.sub s (Array.length s / 2) (Array.length s / 2) in
    Array.fold_left (fun a (_, v) -> a +. v) 0.0 tail /. float_of_int (Array.length tail)
  in
  let gr = avg_rate g and mr = avg_rate m in
  Alcotest.(check bool) "microsoft an order of magnitude calmer" true (mr < gr /. 5.0)

let test_overnet_generates () =
  let t = Trace.overnet ~scale:0.5 ~duration:(6.0 *. 3600.0) (Rng.create 8) in
  Alcotest.(check string) "name" "overnet" (Trace.name t);
  Alcotest.(check bool) "sessions" true (Trace.n_nodes t > 50)

let test_determinism () =
  let a = Trace.gnutella ~scale:0.05 ~duration:3600.0 (Rng.create 9) in
  let b = Trace.gnutella ~scale:0.05 ~duration:3600.0 (Rng.create 9) in
  Alcotest.(check int) "same sessions" (Trace.n_nodes a) (Trace.n_nodes b);
  Alcotest.(check int) "same events" (Array.length (Trace.events a))
    (Array.length (Trace.events b))

let test_validation () =
  Alcotest.check_raises "bad args" (Invalid_argument "Trace.poisson") (fun () ->
      ignore (Trace.poisson (Rng.create 1) ~n_avg:0 ~session_mean:10.0 ~duration:10.0))

let suite =
  [
    ( "trace",
      [
        Alcotest.test_case "poisson structure" `Quick test_poisson_structure;
        Alcotest.test_case "poisson population" `Quick test_poisson_population;
        Alcotest.test_case "poisson mean session" `Quick test_poisson_mean_session;
        Alcotest.test_case "failure rate matches sessions" `Quick
          test_failure_rate_matches_mean_session;
        Alcotest.test_case "gnutella population band" `Quick test_gnutella_band;
        Alcotest.test_case "microsoft lower churn" `Quick test_microsoft_lower_churn;
        Alcotest.test_case "overnet generates" `Quick test_overnet_generates;
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "validation" `Quick test_validation;
      ] );
  ]
