module Nodeid = Pastry.Nodeid
module Peer = Pastry.Peer
module Leafset = Pastry.Leafset
module Rt = Pastry.Routing_table
module Route = Pastry.Route
module Rng = Repro_util.Rng

let hexid prefix =
  Nodeid.of_hex
    (prefix ^ String.concat "" (List.init (32 - String.length prefix) (fun _ -> "0")))

(* a node with a few leaf members and routing entries *)
let setup () =
  let me = Peer.make (hexid "a0") 0 in
  let leafset = Leafset.create ~l:4 ~me in
  let table = Rt.create ~b:4 ~me:me.Peer.id in
  (me, leafset, table)

let next ?excluded ~leafset ~table key =
  Route.next_hop ?excluded ~leafset ~table ~key ()

let test_singleton_delivers () =
  let _, leafset, table = setup () in
  match next ~leafset ~table (hexid "ff") with
  | Route.Deliver -> ()
  | Route.Forward _ -> Alcotest.fail "singleton must deliver"

let test_leafset_covered_forward () =
  let _, leafset, table = setup () in
  ignore (Leafset.add leafset (Peer.make (hexid "9e") 11));
  ignore (Leafset.add leafset (Peer.make (hexid "9f") 1));
  ignore (Leafset.add leafset (Peer.make (hexid "a1") 2));
  ignore (Leafset.add leafset (Peer.make (hexid "a2") 12));
  (* key a1... exactly: covered, owner is node a1 *)
  match next ~leafset ~table (hexid "a1") with
  | Route.Forward p -> Alcotest.(check int) "to a1" 2 p.Peer.addr
  | Route.Deliver -> Alcotest.fail "should forward to the owner"

let test_leafset_covered_deliver_self () =
  let _, leafset, table = setup () in
  ignore (Leafset.add leafset (Peer.make (hexid "90") 1));
  ignore (Leafset.add leafset (Peer.make (hexid "b0") 2));
  (* key a01... : me (a00) is closest *)
  match next ~leafset ~table (hexid "a01") with
  | Route.Deliver -> ()
  | Route.Forward p -> Alcotest.failf "expected deliver, got %d" p.Peer.addr

let test_routing_table_hop () =
  let _, leafset, table = setup () in
  (* leaf set does not cover key f0...; row-0 entry for digit f exists *)
  ignore (Leafset.add leafset (Peer.make (hexid "9e") 11));
  ignore (Leafset.add leafset (Peer.make (hexid "9f") 1));
  ignore (Leafset.add leafset (Peer.make (hexid "a1") 2));
  ignore (Leafset.add leafset (Peer.make (hexid "a2") 12));
  ignore (Rt.consider table (Peer.make (hexid "f5") 7) ~rtt:0.1);
  match next ~leafset ~table (hexid "f0") with
  | Route.Forward p -> Alcotest.(check int) "row 0 digit f" 7 p.Peer.addr
  | Route.Deliver -> Alcotest.fail "expected routing-table hop"

let test_fallback_closer_node () =
  let _, leafset, table = setup () in
  ignore (Leafset.add leafset (Peer.make (hexid "9e") 11));
  ignore (Leafset.add leafset (Peer.make (hexid "9f") 1));
  ignore (Leafset.add leafset (Peer.make (hexid "a1") 2));
  ignore (Leafset.add leafset (Peer.make (hexid "a2") 12));
  (* no entry for digit f, but a known node e0... is strictly closer to
     f0... than me (a0...) and shares >= 0 digits *)
  ignore (Rt.consider table (Peer.make (hexid "e0") 9) ~rtt:0.1);
  match next ~leafset ~table (hexid "f0") with
  | Route.Forward p -> Alcotest.(check int) "fallback" 9 p.Peer.addr
  | Route.Deliver -> Alcotest.fail "expected fallback hop"

let test_fallback_requires_progress () =
  let _, leafset, table = setup () in
  (* known node is farther from the key than me: must deliver, not loop *)
  ignore (Rt.consider table (Peer.make (hexid "00") 3) ~rtt:0.1);
  ignore (Leafset.add leafset (Peer.make (hexid "00") 3));
  match next ~leafset ~table (hexid "a9") with
  | Route.Deliver -> ()
  | Route.Forward _ -> Alcotest.fail "no progress possible: deliver"

let test_excluded_skipped () =
  let _, leafset, table = setup () in
  ignore (Leafset.add leafset (Peer.make (hexid "9e") 11));
  ignore (Leafset.add leafset (Peer.make (hexid "9f") 1));
  ignore (Leafset.add leafset (Peer.make (hexid "a1") 2));
  ignore (Leafset.add leafset (Peer.make (hexid "a2") 12));
  ignore (Rt.consider table (Peer.make (hexid "f5") 7) ~rtt:0.1);
  ignore (Rt.consider table (Peer.make (hexid "e0") 9) ~rtt:0.1);
  let excluded id = Nodeid.equal id (hexid "f5") in
  match next ~excluded ~leafset ~table (hexid "f0") with
  | Route.Forward p -> Alcotest.(check int) "skips excluded" 9 p.Peer.addr
  | Route.Deliver -> Alcotest.fail "expected alternative hop"

let test_excluded_leaf_owner () =
  let _, leafset, table = setup () in
  ignore (Leafset.add leafset (Peer.make (hexid "9e") 11));
  ignore (Leafset.add leafset (Peer.make (hexid "9f") 1));
  ignore (Leafset.add leafset (Peer.make (hexid "a1") 2));
  ignore (Leafset.add leafset (Peer.make (hexid "a2") 12));
  let excluded id = Nodeid.equal id (hexid "a1") in
  (* owner a1 excluded: the next-closest leaf member (me) takes it *)
  match next ~excluded ~leafset ~table (hexid "a1") with
  | Route.Deliver -> ()
  | Route.Forward p -> Alcotest.failf "expected deliver, got %d" p.Peer.addr

let test_empty_slot_on_path () =
  let _, leafset, table = setup () in
  ignore (Leafset.add leafset (Peer.make (hexid "9e") 11));
  ignore (Leafset.add leafset (Peer.make (hexid "9f") 1));
  ignore (Leafset.add leafset (Peer.make (hexid "a1") 2));
  ignore (Leafset.add leafset (Peer.make (hexid "a2") 12));
  (match Route.empty_slot_on_path ~leafset ~table ~key:(hexid "f0") with
  | Some (0, 0xf) -> ()
  | Some (r, c) -> Alcotest.failf "wrong slot %d,%d" r c
  | None -> Alcotest.fail "expected empty slot");
  ignore (Rt.consider table (Peer.make (hexid "f5") 7) ~rtt:0.1);
  Alcotest.(check bool) "filled now" true
    (Route.empty_slot_on_path ~leafset ~table ~key:(hexid "f0") = None)

(* property: a forwarded hop always makes progress — strictly smaller ring
   distance to the key, or a strictly longer shared prefix *)
let qcheck_progress =
  QCheck.Test.make ~name:"next_hop makes progress" ~count:300 QCheck.int (fun seed ->
      let rng = Rng.create seed in
      let me = Peer.make (Nodeid.random rng) 0 in
      let leafset = Leafset.create ~l:8 ~me in
      let table = Rt.create ~b:4 ~me:me.Peer.id in
      for k = 1 to 20 do
        let p = Peer.make (Nodeid.random rng) k in
        ignore (Leafset.add leafset p);
        ignore (Rt.consider table p ~rtt:0.1)
      done;
      let key = Nodeid.random rng in
      match next ~leafset ~table key with
      | Route.Deliver -> true
      | Route.Forward p ->
          let b = 4 in
          let my_prefix = Nodeid.shared_prefix_length ~b key me.Peer.id in
          let p_prefix = Nodeid.shared_prefix_length ~b key p.Peer.id in
          let closer = Nodeid.closer ~key p.Peer.id me.Peer.id in
          p_prefix > my_prefix || (p_prefix >= my_prefix && closer) || closer)

let suite =
  [
    ( "route",
      [
        Alcotest.test_case "singleton delivers" `Quick test_singleton_delivers;
        Alcotest.test_case "covered key forwards to owner" `Quick test_leafset_covered_forward;
        Alcotest.test_case "covered key delivers at owner" `Quick
          test_leafset_covered_deliver_self;
        Alcotest.test_case "routing-table hop" `Quick test_routing_table_hop;
        Alcotest.test_case "fallback to closer node" `Quick test_fallback_closer_node;
        Alcotest.test_case "fallback requires progress" `Quick test_fallback_requires_progress;
        Alcotest.test_case "excluded next hop skipped" `Quick test_excluded_skipped;
        Alcotest.test_case "excluded leaf owner" `Quick test_excluded_leaf_owner;
        Alcotest.test_case "empty slot detection" `Quick test_empty_slot_on_path;
        QCheck_alcotest.to_alcotest qcheck_progress;
      ] );
  ]
