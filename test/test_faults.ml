(* The fault-injection subsystem: Netfault model statistics (uniform and
   Gilbert–Elliott average loss / burst length), blackhole, partition and
   compose semantics, netsim integration (dropped_fault counter, Faulted
   trace reason, extra delay, heal restores delivery), schedule smart
   constructors, and Live-level recovery — a transient partition episode
   and a 25% massive failure that must end with a finite time-to-repair
   and zero incorrect deliveries after convergence (oracle-checked). *)

module Rng = Repro_util.Rng
module Netfault = Repro_faults.Netfault
module Schedule = Repro_faults.Schedule
module Engine = Simkit.Engine
module Net = Netsim.Net
module Obs = Repro_obs
module Event = Obs.Event
module Sim = Harness.Sim
module Live = Sim.Live
module Collector = Overlay_metrics.Collector

(* ------------------------------------------------------- model statistics *)

let verdicts fault ~rng ~n ~src ~dst =
  List.init n (fun i -> Netfault.decide fault ~rng ~time:(float_of_int i) ~src ~dst)

let loss_fraction vs =
  let lost = List.length (List.filter (fun v -> v = Netfault.Lose) vs) in
  float_of_int lost /. float_of_int (List.length vs)

(* mean length of maximal runs of consecutive Lose verdicts *)
let mean_burst_length vs =
  let runs = ref 0 and losses = ref 0 and in_run = ref false in
  List.iter
    (fun v ->
      if v = Netfault.Lose then begin
        incr losses;
        if not !in_run then incr runs;
        in_run := true
      end
      else in_run := false)
    vs;
  if !runs = 0 then 0.0 else float_of_int !losses /. float_of_int !runs

let test_uniform_statistics () =
  let rng = Rng.create 11 in
  let vs = verdicts (Netfault.uniform ~rate:0.2) ~rng ~n:20_000 ~src:0 ~dst:1 in
  let f = loss_fraction vs in
  Alcotest.(check bool) "about 20% lost" true (f > 0.17 && f < 0.23);
  (* i.i.d. losses: bursts are short (geometric, mean 1/(1-p) = 1.25) *)
  let b = mean_burst_length vs in
  Alcotest.(check bool) "uncorrelated bursts" true (b > 1.0 && b < 1.5)

let test_uniform_validation () =
  Alcotest.check_raises "rate 1.0" (Invalid_argument "Netfault.uniform: rate")
    (fun () -> ignore (Netfault.uniform ~rate:1.0));
  Alcotest.check_raises "negative" (Invalid_argument "Netfault.uniform: rate")
    (fun () -> ignore (Netfault.uniform ~rate:(-0.1)))

let test_gilbert_elliott_statistics () =
  (* open loop, one directional link: the long-run average must match the
     configured rate and the mean loss-burst length the configured burst *)
  let avg = 0.1 and burst = 5.0 in
  let rng = Rng.create 12 in
  let vs =
    verdicts (Netfault.bursty ~avg_loss:avg ~burst) ~rng ~n:200_000 ~src:3 ~dst:4
  in
  let f = loss_fraction vs in
  Alcotest.(check bool)
    (Printf.sprintf "average loss %.4f near %.2f" f avg)
    true
    (f > avg -. 0.015 && f < avg +. 0.015);
  let b = mean_burst_length vs in
  Alcotest.(check bool)
    (Printf.sprintf "mean burst %.2f near %.1f" b burst)
    true
    (b > burst -. 0.8 && b < burst +. 0.8)

let test_gilbert_elliott_degenerate () =
  (* p_good_to_bad = 0 with a stationary start: every chain stays good *)
  let good = Netfault.gilbert_elliott ~p_good_to_bad:0.0 ~p_bad_to_good:0.0 () in
  let rng = Rng.create 13 in
  Alcotest.(check (float 0.0)) "never lossy" 0.0
    (loss_fraction (verdicts good ~rng ~n:1000 ~src:0 ~dst:1));
  (* loss_good = loss_bad = 1: lossy in either state *)
  let bad =
    Netfault.gilbert_elliott ~loss_good:1.0 ~loss_bad:1.0 ~p_good_to_bad:0.5
      ~p_bad_to_good:0.5 ()
  in
  Alcotest.(check (float 0.0)) "always lossy" 1.0
    (loss_fraction (verdicts bad ~rng ~n:1000 ~src:0 ~dst:1))

let test_bursty_validation () =
  Alcotest.check_raises "avg 1.0" (Invalid_argument "Netfault.bursty: avg_loss")
    (fun () -> ignore (Netfault.bursty ~avg_loss:1.0 ~burst:5.0));
  Alcotest.check_raises "burst < 1" (Invalid_argument "Netfault.bursty: burst < 1")
    (fun () -> ignore (Netfault.bursty ~avg_loss:0.1 ~burst:0.5))

(* ------------------------------------------------- deterministic verdicts *)

let decide1 fault ~src ~dst =
  Netfault.decide fault ~rng:(Rng.create 1) ~time:0.0 ~src ~dst

let test_blackhole_directional () =
  let f = Netfault.blackhole ~links:[ (0, 1) ] () in
  Alcotest.(check bool) "0->1 lost" true (decide1 f ~src:0 ~dst:1 = Netfault.Lose);
  Alcotest.(check bool) "1->0 passes" true (decide1 f ~src:1 ~dst:0 = Netfault.Pass);
  let s = Netfault.blackhole ~symmetric:true ~links:[ (0, 1) ] () in
  Alcotest.(check bool) "symmetric reverse lost" true
    (decide1 s ~src:1 ~dst:0 = Netfault.Lose)

let test_partition_model () =
  let f = Netfault.partition ~group_of:(fun e -> e mod 2) in
  Alcotest.(check bool) "cross-group lost" true (decide1 f ~src:0 ~dst:1 = Netfault.Lose);
  Alcotest.(check bool) "intra-group passes" true
    (decide1 f ~src:0 ~dst:2 = Netfault.Pass)

let test_compose () =
  let f =
    Netfault.compose
      [ Netfault.extra_delay 0.1; Netfault.extra_delay 0.2; Netfault.none ]
  in
  (match decide1 f ~src:0 ~dst:1 with
  | Netfault.Delay d -> Alcotest.(check (float 1e-9)) "delays accumulate" 0.3 d
  | _ -> Alcotest.fail "expected Delay");
  let g =
    Netfault.compose [ Netfault.extra_delay 0.1; Netfault.blackhole ~links:[ (0, 1) ] () ]
  in
  Alcotest.(check bool) "Lose short-circuits" true
    (decide1 g ~src:0 ~dst:1 = Netfault.Lose);
  Alcotest.(check bool) "empty compose passes" true
    (decide1 (Netfault.compose []) ~src:0 ~dst:1 = Netfault.Pass)

(* ------------------------------------------------------ netsim integration *)

let make_net ?(n = 4) ?loss_rate ?trace () =
  let engine = Engine.create () in
  let topology = Topology.constant ~n_endpoints:n ~delay:0.01 in
  let net = Net.create ?loss_rate ?trace ~engine ~topology ~rng:(Rng.create 7) () in
  (engine, net)

let test_net_fault_counter_and_trace () =
  let trace = Obs.Trace.create (Obs.Sink.memory ~capacity:100) in
  let engine, net = make_net ~trace () in
  let got = ref 0 in
  Net.register net ~addr:0 (fun ~src:_ _ -> incr got);
  Net.register net ~addr:1 (fun ~src:_ _ -> incr got);
  Net.set_fault_model net (Some (Netfault.blackhole ~links:[ (0, 1) ] ()));
  Net.send net ~src:0 ~dst:1 "dropped";
  Net.send net ~src:1 ~dst:0 "delivered";
  Engine.run_all engine;
  let s = Net.stats net in
  Alcotest.(check int) "dropped_fault" 1 s.Net.dropped_fault;
  Alcotest.(check int) "dropped_loss untouched" 0 s.Net.dropped_loss;
  Alcotest.(check int) "reverse delivered" 1 !got;
  let faulted =
    List.filter
      (fun (e : Event.t) ->
        match e.Event.body with
        | Event.Drop { reason = Event.Faulted; _ } -> true
        | _ -> false)
      (Obs.Trace.events trace)
  in
  Alcotest.(check int) "one Faulted drop event" 1 (List.length faulted);
  (* heal: removing the model restores delivery *)
  Net.set_fault_model net None;
  Alcotest.(check bool) "model cleared" true (Net.fault_model net = None);
  Net.send net ~src:0 ~dst:1 "after heal";
  Engine.run_all engine;
  Alcotest.(check int) "delivered after heal" 2 !got

let test_net_partition_heal_restores_delivery () =
  let engine, net = make_net () in
  let got = ref 0 in
  for a = 0 to 3 do
    Net.register net ~addr:a (fun ~src:_ _ -> incr got)
  done;
  Net.set_fault_model net (Some (Netfault.partition ~group_of:(fun e -> e mod 2)));
  Net.send net ~src:0 ~dst:1 "cross";
  Net.send net ~src:1 ~dst:3 "intra";
  Engine.run_all engine;
  Alcotest.(check int) "only intra-group delivered" 1 !got;
  Net.set_fault_model net None;
  Net.send net ~src:0 ~dst:1 "healed";
  Engine.run_all engine;
  Alcotest.(check int) "cross-group delivered after heal" 2 !got;
  Alcotest.(check int) "one fault drop" 1 (Net.stats net).Net.dropped_fault

let test_net_extra_delay () =
  let engine, net = make_net () in
  let at = ref nan in
  Net.register net ~addr:1 (fun ~src:_ _ -> at := Engine.now engine);
  Net.set_fault_model net (Some (Netfault.extra_delay 0.25));
  Net.send net ~src:0 ~dst:1 "slow";
  Engine.run_all engine;
  Alcotest.(check (float 1e-9)) "propagation + extra" 0.26 !at

let test_net_uniform_model_statistics () =
  (* the installed uniform model behaves like the legacy loss_rate path *)
  let engine, net = make_net () in
  let got = ref 0 in
  Net.register net ~addr:1 (fun ~src:_ _ -> incr got);
  Net.set_fault_model net (Some (Netfault.uniform ~rate:0.5));
  for _ = 1 to 2000 do
    Net.send net ~src:0 ~dst:1 "x"
  done;
  Engine.run_all engine;
  Alcotest.(check bool) "about half lost" true (!got > 850 && !got < 1150);
  Alcotest.(check int) "all drops counted as fault" (2000 - !got)
    (Net.stats net).Net.dropped_fault

(* --------------------------------------------------------------- schedule *)

let test_schedule_constructors () =
  let evs =
    [
      Schedule.crash_fraction ~time:200.0 0.25;
      Schedule.partition ~time:100.0 ~duration:300.0 2;
      Schedule.heal 150.0;
    ]
  in
  let ts = List.map (fun (e : Schedule.event) -> e.Schedule.time) (Schedule.sorted evs) in
  Alcotest.(check (list (float 1e-9))) "sorted by time" [ 100.0; 150.0; 200.0 ] ts;
  Alcotest.(check string) "crash label" "crash 25%"
    (Schedule.crash_fraction ~time:0.0 0.25).Schedule.label;
  Alcotest.(check string) "partition label" "partition 2 ways for 300s"
    (Schedule.partition ~time:0.0 ~duration:300.0 2).Schedule.label;
  Alcotest.(check string) "explicit label wins" "ep1"
    (Schedule.crash_fraction ~label:"ep1" ~time:0.0 0.5).Schedule.label

let test_schedule_validation () =
  Alcotest.check_raises "groups < 2" (Invalid_argument "Schedule.partition: groups < 2")
    (fun () -> ignore (Schedule.partition ~time:0.0 ~duration:10.0 1));
  Alcotest.check_raises "bad fraction" (Invalid_argument "Schedule.crash_fraction")
    (fun () -> ignore (Schedule.crash_fraction ~time:0.0 1.5));
  Alcotest.check_raises "bad duration" (Invalid_argument "Schedule.overlay: duration")
    (fun () -> ignore (Schedule.overlay ~time:0.0 ~duration:0.0 Netfault.none))

(* ---------------------------------------------------------- live recovery *)

let flat_config ?(lookup_rate = 0.3) ?(seed = 9) () =
  {
    Sim.default_config with
    topology = Sim.Flat 0.02;
    lookup_rate;
    seed;
    warmup = 0.0;
    window = 60.0;
  }

let spawn_overlay live ~n =
  for i = 0 to n - 1 do
    Live.spawn_at live ~time:(float_of_int i *. 5.0) ()
  done

let test_live_partition_episode () =
  let live = Live.create (flat_config ()) ~n_endpoints:16 in
  spawn_overlay live ~n:10;
  Live.run_until live 300.0;
  Alcotest.(check int) "all nodes up" 10 (Live.node_count live);
  Live.inject live (Sim.Schedule.partition ~label:"split" ~time:300.0 ~duration:90.0 2);
  Alcotest.(check bool) "fault model installed" true
    (Net.fault_model (Live.net live) <> None);
  Live.run_until live 360.0;
  (* endpoints are split randomly into two groups, so overlay maintenance
     traffic crosses the cut and some of it must be dropped *)
  Alcotest.(check bool) "cross-group traffic dropped" true
    ((Net.stats (Live.net live)).Net.dropped_fault > 0);
  Live.run_until live 600.0;
  Alcotest.(check bool) "healed after duration" true
    (Net.fault_model (Live.net live) = None);
  Alcotest.(check bool) "nobody crashed" true (Live.node_count live = 10);
  match Collector.episodes (Live.collector live) with
  | [ ep ] -> Alcotest.(check string) "episode recorded" "split" ep.Collector.ep_label
  | eps -> Alcotest.failf "expected one episode, got %d" (List.length eps)

let test_live_massive_failure_recovers () =
  let live = Live.create (flat_config ()) ~n_endpoints:32 in
  spawn_overlay live ~n:30;
  Live.run_until live 600.0;
  Alcotest.(check int) "all nodes up" 30 (Live.node_count live);
  Live.inject live (Sim.Schedule.crash_fraction ~label:"mass-crash" ~time:600.0 0.25);
  Alcotest.(check int) "a quarter crashed" 22 (Live.node_count live);
  Live.run_until live 1560.0;
  (match Collector.episodes (Live.collector live) with
  | [ ep ] -> (
      match ep.Collector.time_to_repair with
      | Some ttr ->
          Alcotest.(check bool)
            (Printf.sprintf "finite time-to-repair (%.0fs)" ttr)
            true
            (ttr > 0.0 && ttr <= 600.0)
      | None -> Alcotest.fail "no repair observed before the run ended")
  | eps -> Alcotest.failf "expected one episode, got %d" (List.length eps));
  (* oracle-checked consistency after convergence: every delivery judged
     against the true ring-closest active node *)
  let s =
    Collector.summary ~since:900.0 ~until:1560.0 (Live.collector live)
  in
  Alcotest.(check int) "zero incorrect deliveries after convergence" 0
    s.Collector.incorrect_deliveries;
  Alcotest.(check bool) "lookups flowed post-fault" true (s.Collector.lookups_sent > 100)

let suite =
  [
    ( "faults",
      [
        Alcotest.test_case "uniform statistics" `Quick test_uniform_statistics;
        Alcotest.test_case "uniform validation" `Quick test_uniform_validation;
        Alcotest.test_case "gilbert-elliott statistics" `Quick
          test_gilbert_elliott_statistics;
        Alcotest.test_case "gilbert-elliott degenerate chains" `Quick
          test_gilbert_elliott_degenerate;
        Alcotest.test_case "bursty validation" `Quick test_bursty_validation;
        Alcotest.test_case "blackhole directional" `Quick test_blackhole_directional;
        Alcotest.test_case "partition model" `Quick test_partition_model;
        Alcotest.test_case "compose" `Quick test_compose;
        Alcotest.test_case "net fault counter and trace" `Quick
          test_net_fault_counter_and_trace;
        Alcotest.test_case "net partition heal restores delivery" `Quick
          test_net_partition_heal_restores_delivery;
        Alcotest.test_case "net extra delay" `Quick test_net_extra_delay;
        Alcotest.test_case "net uniform model statistics" `Quick
          test_net_uniform_model_statistics;
        Alcotest.test_case "schedule constructors" `Quick test_schedule_constructors;
        Alcotest.test_case "schedule validation" `Quick test_schedule_validation;
        Alcotest.test_case "live partition episode" `Slow test_live_partition_episode;
        Alcotest.test_case "live massive failure recovers" `Slow
          test_live_massive_failure_recovers;
      ] );
  ]
