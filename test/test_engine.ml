module Engine = Simkit.Engine

let test_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:3.0 (fun () -> log := 3 :: !log));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:2.0 (fun () -> log := 2 :: !log));
  Engine.run_all e;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock at last event" 3.0 (Engine.now e)

let test_fifo_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log))
  done;
  Engine.run_all e;
  Alcotest.(check (list int)) "fifo" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !log)

let test_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let ev = Engine.schedule e ~delay:1.0 (fun () -> fired := true) in
  Engine.cancel e ev;
  Engine.run_all e;
  Alcotest.(check bool) "not fired" false !fired;
  (* double cancel is a no-op *)
  Engine.cancel e ev;
  Alcotest.(check int) "pending" 0 (Engine.pending e)

let test_run_until () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~delay:5.0 (fun () -> log := 5 :: !log));
  Engine.run e ~until:2.0;
  Alcotest.(check (list int)) "only first" [ 1 ] !log;
  Alcotest.(check (float 1e-9)) "clock advanced to until" 2.0 (Engine.now e);
  Engine.run e ~until:10.0;
  Alcotest.(check (list int)) "second fired" [ 5; 1 ] !log

let test_schedule_inside_callback () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule e ~delay:1.0 (fun () -> log := "inner" :: !log))));
  Engine.run_all e;
  Alcotest.(check (list string)) "nested" [ "inner"; "outer" ] !log;
  Alcotest.(check (float 1e-9)) "clock" 2.0 (Engine.now e)

let test_schedule_at_past () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~delay:5.0 (fun () -> ()));
  Engine.run_all e;
  let fired_at = ref 0.0 in
  ignore (Engine.schedule_at e ~time:1.0 (fun () -> fired_at := Engine.now e));
  Engine.run_all e;
  Alcotest.(check (float 1e-9)) "clamped to now" 5.0 !fired_at

let test_negative_delay () =
  let e = Engine.create () in
  let fired = ref false in
  ignore (Engine.schedule e ~delay:(-3.0) (fun () -> fired := true));
  Engine.run_all e;
  Alcotest.(check bool) "fires immediately" true !fired;
  Alcotest.(check (float 1e-9)) "clock unchanged" 0.0 (Engine.now e)

let test_pending_count () =
  let e = Engine.create () in
  let a = Engine.schedule e ~delay:1.0 (fun () -> ()) in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> ()));
  Alcotest.(check int) "two pending" 2 (Engine.pending e);
  Engine.cancel e a;
  Alcotest.(check int) "one pending" 1 (Engine.pending e);
  Engine.run_all e;
  Alcotest.(check int) "none pending" 0 (Engine.pending e)

let test_max_events () =
  let e = Engine.create () in
  (* self-perpetuating event chain *)
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Engine.schedule e ~delay:1.0 tick)
  in
  ignore (Engine.schedule e ~delay:1.0 tick);
  Engine.run_all ~max_events:50 e;
  Alcotest.(check int) "bounded" 50 !count

let test_step () =
  let e = Engine.create () in
  Alcotest.(check bool) "empty step" false (Engine.step e);
  ignore (Engine.schedule e ~delay:1.0 (fun () -> ()));
  Alcotest.(check bool) "one step" true (Engine.step e);
  Alcotest.(check bool) "drained" false (Engine.step e)

let suite =
  [
    ( "engine",
      [
        Alcotest.test_case "time order" `Quick test_time_order;
        Alcotest.test_case "FIFO at same time" `Quick test_fifo_same_time;
        Alcotest.test_case "cancel" `Quick test_cancel;
        Alcotest.test_case "run until" `Quick test_run_until;
        Alcotest.test_case "schedule inside callback" `Quick test_schedule_inside_callback;
        Alcotest.test_case "schedule_at in the past" `Quick test_schedule_at_past;
        Alcotest.test_case "negative delay" `Quick test_negative_delay;
        Alcotest.test_case "pending count" `Quick test_pending_count;
        Alcotest.test_case "max events" `Quick test_max_events;
        Alcotest.test_case "step" `Quick test_step;
      ] );
  ]
