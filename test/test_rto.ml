module Rto = Mspastry.Rto

let make () = Rto.create ~initial:0.5 ~min:0.02 ~max:3.0

let test_initial () =
  let r = make () in
  Alcotest.(check (float 1e-9)) "initial" 0.5 (Rto.timeout r);
  Alcotest.(check (option (float 1e-9))) "no srtt" None (Rto.srtt r);
  Alcotest.(check int) "no samples" 0 (Rto.samples r)

let test_first_sample () =
  let r = make () in
  Rto.observe r 0.1;
  (* srtt = 0.1, rttvar = 0.05 -> rto = 0.1*1.1 + max(0.01, 2*0.05) = 0.21 *)
  Alcotest.(check (float 1e-9)) "rto" 0.21 (Rto.timeout r);
  Alcotest.(check (option (float 1e-9))) "srtt" (Some 0.1) (Rto.srtt r)

let test_converges_on_stable_rtt () =
  let r = make () in
  for _ = 1 to 200 do
    Rto.observe r 0.08
  done;
  (match Rto.srtt r with
  | Some s -> Alcotest.(check bool) "srtt converged" true (Float.abs (s -. 0.08) < 1e-3)
  | None -> Alcotest.fail "srtt missing");
  (* stable samples -> variance collapses -> rto hits the floor near srtt *)
  Alcotest.(check bool) "tight timeout" true (Rto.timeout r < 0.1)

let test_min_clamp () =
  let r = make () in
  for _ = 1 to 300 do
    Rto.observe r 0.001
  done;
  Alcotest.(check (float 1e-9)) "clamped at min" 0.02 (Rto.timeout r)

let test_max_clamp () =
  let r = make () in
  Rto.observe r 10.0;
  Alcotest.(check (float 1e-9)) "clamped at max" 3.0 (Rto.timeout r)

let test_variance_reacts () =
  let r = make () in
  for _ = 1 to 50 do
    Rto.observe r 0.1
  done;
  let calm = Rto.timeout r in
  Rto.observe r 0.5;
  Alcotest.(check bool) "spike raises timeout" true (Rto.timeout r > calm)

let test_negative_ignored () =
  let r = make () in
  Rto.observe r (-1.0);
  Alcotest.(check int) "ignored" 0 (Rto.samples r)

let test_backoff_doubles () =
  let r = make () in
  Rto.observe r 0.1;
  Alcotest.(check (float 1e-9)) "base" 0.21 (Rto.timeout r);
  Rto.backoff r;
  Alcotest.(check (float 1e-9)) "doubled" 0.42 (Rto.timeout r);
  Rto.backoff r;
  Alcotest.(check (float 1e-9)) "doubled again" 0.84 (Rto.timeout r)

let test_backoff_clamps_at_max () =
  let r = make () in
  Rto.observe r 0.1;
  for _ = 1 to 10 do
    Rto.backoff r
  done;
  Alcotest.(check (float 1e-9)) "clamped at max" 3.0 (Rto.timeout r);
  (* also from the pre-sample initial value *)
  let r' = make () in
  for _ = 1 to 4 do
    Rto.backoff r'
  done;
  Alcotest.(check (float 1e-9)) "initial clamped too" 3.0 (Rto.timeout r')

let test_backoff_reset_on_observe () =
  (* Karn: an unambiguous sample ends the backoff episode *)
  let r = make () in
  Rto.observe r 0.1;
  Rto.backoff r;
  Rto.backoff r;
  let backed_off = Rto.timeout r in
  Rto.observe r 0.1;
  Alcotest.(check bool) "multiplier cleared" true (Rto.timeout r < backed_off /. 2.0);
  (* negative (ignored) samples must NOT reset the episode *)
  let r' = make () in
  Rto.observe r' 0.1;
  Rto.backoff r';
  let before = Rto.timeout r' in
  Rto.observe r' (-1.0);
  Alcotest.(check (float 1e-9)) "ignored sample keeps backoff" before (Rto.timeout r')

let test_create_validation () =
  Alcotest.check_raises "bad bounds" (Invalid_argument "Rto.create") (fun () ->
      ignore (Rto.create ~initial:0.5 ~min:1.0 ~max:0.5))

let suite =
  [
    ( "rto",
      [
        Alcotest.test_case "initial timeout" `Quick test_initial;
        Alcotest.test_case "first sample" `Quick test_first_sample;
        Alcotest.test_case "converges on stable RTT" `Quick test_converges_on_stable_rtt;
        Alcotest.test_case "min clamp" `Quick test_min_clamp;
        Alcotest.test_case "max clamp" `Quick test_max_clamp;
        Alcotest.test_case "variance reacts to spikes" `Quick test_variance_reacts;
        Alcotest.test_case "negative samples ignored" `Quick test_negative_ignored;
        Alcotest.test_case "backoff doubles" `Quick test_backoff_doubles;
        Alcotest.test_case "backoff clamps at max" `Quick test_backoff_clamps_at_max;
        Alcotest.test_case "backoff resets on observe" `Quick
          test_backoff_reset_on_observe;
        Alcotest.test_case "create validation" `Quick test_create_validation;
      ] );
  ]
