module Collector = Overlay_metrics.Collector
module M = Mspastry.Message

let test_lookup_lifecycle () =
  let c = Collector.create ~window:10.0 () in
  Collector.set_population c ~time:0.0 4;
  Collector.lookup_sent c ~seq:1 ~time:1.0;
  Collector.lookup_sent c ~seq:2 ~time:2.0;
  Collector.lookup_delivered c ~seq:1 ~time:1.5 ~correct:true ~direct_delay:0.25 ~hops:2;
  (* seq 2 never delivered *)
  let s = Collector.summary ~until:100.0 ~drain:0.0 c in
  Alcotest.(check int) "sent" 2 s.Collector.lookups_sent;
  Alcotest.(check int) "delivered" 1 s.Collector.lookups_delivered;
  Alcotest.(check int) "lost" 1 s.Collector.lookups_lost;
  Alcotest.(check (float 1e-9)) "loss rate" 0.5 s.Collector.loss_rate;
  Alcotest.(check (float 1e-9)) "rdp" 2.0 s.Collector.rdp_mean;
  Alcotest.(check (float 1e-9)) "delay" 0.5 s.Collector.delay_mean;
  Alcotest.(check (float 1e-9)) "hops" 2.0 s.Collector.hops_mean

let test_incorrect_and_duplicates () =
  let c = Collector.create ~window:10.0 () in
  Collector.lookup_sent c ~seq:1 ~time:0.0;
  Collector.lookup_delivered c ~seq:1 ~time:0.2 ~correct:true ~direct_delay:0.1 ~hops:1;
  (* duplicate delivery at the wrong node *)
  Collector.lookup_delivered c ~seq:1 ~time:0.4 ~correct:false ~direct_delay:0.1 ~hops:3;
  let s = Collector.summary ~until:10.0 ~drain:0.0 c in
  Alcotest.(check int) "one lookup delivered" 1 s.Collector.lookups_delivered;
  Alcotest.(check int) "incorrect counted" 1 s.Collector.incorrect_deliveries;
  (* delay stats use the first delivery only *)
  Alcotest.(check (float 1e-9)) "rdp from first" 2.0 s.Collector.rdp_mean

let test_drain_exclusion () =
  let c = Collector.create ~window:10.0 () in
  Collector.lookup_sent c ~seq:1 ~time:95.0;
  (* in flight at the end: excluded from loss accounting *)
  let s = Collector.summary ~until:100.0 ~drain:30.0 c in
  Alcotest.(check int) "not counted" 0 s.Collector.lookups_sent;
  Alcotest.(check int) "not lost" 0 s.Collector.lookups_lost

let test_control_rates () =
  let c = Collector.create ~window:10.0 () in
  (* 2 nodes for the whole first window *)
  Collector.set_population c ~time:0.0 2;
  (* 10 leaf-set messages in 10s over 2 nodes: 0.5 msg/s/node *)
  for i = 0 to 9 do
    Collector.record_send c ~time:(float_of_int i) M.C_leafset
  done;
  let s = Collector.summary ~until:10.0 c in
  Alcotest.(check (float 1e-6)) "control rate" 0.5 s.Collector.control_per_node_per_s;
  Alcotest.(check (float 1e-6)) "mean population" 2.0 s.Collector.mean_population;
  let by_class = s.Collector.control_by_class in
  Alcotest.(check (float 1e-6)) "leafset class" 0.5 (List.assoc M.C_leafset by_class);
  Alcotest.(check (float 1e-6)) "rt class empty" 0.0 (List.assoc M.C_rt_probe by_class)

let test_lookup_not_control () =
  let c = Collector.create ~window:10.0 () in
  Collector.set_population c ~time:0.0 1;
  Collector.record_send c ~time:1.0 M.C_lookup;
  Collector.record_send c ~time:1.0 M.C_join;
  let s = Collector.summary ~until:10.0 c in
  Alcotest.(check (float 1e-6)) "only join counted" 0.1 s.Collector.control_per_node_per_s;
  Alcotest.(check (float 1e-6)) "lookup msgs tracked" 1.0 s.Collector.lookup_msgs

let test_population_series () =
  let c = Collector.create ~window:10.0 () in
  Collector.set_population c ~time:0.0 4;
  Collector.set_population c ~time:5.0 8;
  Collector.set_population c ~time:20.0 0;
  let pop = Collector.population_series c in
  Alcotest.(check (float 1e-6)) "window 0 mean" 6.0 (snd pop.(0));
  Alcotest.(check (float 1e-6)) "window 1 mean" 8.0 (snd pop.(1))

let test_join_latencies () =
  let c = Collector.create ~window:10.0 () in
  Collector.join_recorded c ~latency:2.0;
  Collector.join_recorded c ~latency:4.0;
  let s = Collector.summary ~until:10.0 c in
  Alcotest.(check int) "joins" 2 s.Collector.joins;
  Alcotest.(check (float 1e-9)) "mean" 3.0 s.Collector.join_latency_mean;
  Alcotest.(check int) "raw array" 2 (Array.length (Collector.join_latencies c))

let test_since_filter () =
  let c = Collector.create ~window:10.0 () in
  Collector.set_population c ~time:0.0 1;
  Collector.lookup_sent c ~seq:1 ~time:5.0;
  Collector.lookup_sent c ~seq:2 ~time:25.0;
  Collector.lookup_delivered c ~seq:2 ~time:25.5 ~correct:true ~direct_delay:0.5 ~hops:1;
  let s = Collector.summary ~since:20.0 ~until:40.0 ~drain:0.0 c in
  Alcotest.(check int) "only the second lookup" 1 s.Collector.lookups_sent;
  Alcotest.(check int) "no loss" 0 s.Collector.lookups_lost

let test_zero_direct_delay () =
  let c = Collector.create ~window:10.0 () in
  Collector.lookup_sent c ~seq:1 ~time:0.0;
  Collector.lookup_delivered c ~seq:1 ~time:0.1 ~correct:true ~direct_delay:0.0 ~hops:1;
  let s = Collector.summary ~until:10.0 ~drain:0.0 c in
  Alcotest.(check (float 1e-9)) "rdp defaults to 1" 1.0 s.Collector.rdp_mean

let send c seq time = Collector.lookup_sent c ~seq ~time

let deliver c seq time =
  Collector.lookup_delivered c ~seq ~time ~correct:true ~direct_delay:0.1 ~hops:1

let test_fault_episode_repair () =
  let c = Collector.create ~window:10.0 () in
  (* window 0: pristine baseline — 4 lookups, all delivered correctly *)
  for i = 0 to 3 do
    send c i (1.0 +. float_of_int i);
    deliver c i (1.5 +. float_of_int i)
  done;
  Collector.fault_injected c ~time:12.0 ~label:"ep";
  (* window 1 (the fault window): 2 of 4 lost, 1 delivered incorrectly *)
  List.iter (fun (s, t) -> send c s t) [ (10, 12.0); (11, 13.0); (12, 14.0); (13, 15.0) ];
  deliver c 10 12.5;
  Collector.lookup_delivered c ~seq:11 ~time:13.5 ~correct:false ~direct_delay:0.1
    ~hops:3;
  (* window 2: still degraded — 1 of 4 lost *)
  List.iter (fun (s, t) -> send c s t) [ (20, 21.0); (21, 22.0); (22, 23.0); (23, 24.0) ];
  List.iter (fun (s, t) -> deliver c s t) [ (20, 21.5); (21, 22.5); (22, 23.5) ];
  (* window 3: fully recovered *)
  List.iter (fun (s, t) -> send c s t) [ (30, 31.0); (31, 32.0) ];
  List.iter (fun (s, t) -> deliver c s t) [ (30, 31.5); (31, 32.5) ];
  (* window 4: pushes the horizon so window 3 becomes judgeable *)
  send c 40 45.0;
  deliver c 40 45.5;
  match Collector.episodes ~drain:0.0 c with
  | [ ep ] -> (
      Alcotest.(check string) "label" "ep" ep.Collector.ep_label;
      Alcotest.(check (float 1e-9)) "start" 12.0 ep.Collector.ep_start;
      Alcotest.(check (float 1e-9)) "baseline loss" 0.0 ep.Collector.baseline_loss;
      Alcotest.(check (float 1e-9)) "peak loss" 0.5 ep.Collector.peak_loss;
      Alcotest.(check (float 1e-9)) "peak incorrect" 0.25 ep.Collector.peak_incorrect;
      match ep.Collector.time_to_repair with
      (* repaired at the end of window 3: 4 * 10 - 12 *)
      | Some ttr -> Alcotest.(check (float 1e-9)) "time to repair" 28.0 ttr
      | None -> Alcotest.fail "expected repair")
  | eps -> Alcotest.failf "expected one episode, got %d" (List.length eps)

let test_fault_episode_unrepaired () =
  let c = Collector.create ~window:10.0 () in
  for i = 0 to 3 do
    send c i (1.0 +. float_of_int i);
    deliver c i (1.5 +. float_of_int i)
  done;
  Collector.fault_injected c ~time:12.0 ~label:"dead";
  (* every post-fault lookup is lost through the end of the run *)
  List.iter (fun (s, t) -> send c s t) [ (10, 15.0); (20, 25.0); (30, 35.0); (40, 45.0) ];
  Collector.flush c ~time:50.0;
  match Collector.episodes ~drain:0.0 c with
  | [ ep ] ->
      Alcotest.(check (float 1e-9)) "peak loss" 1.0 ep.Collector.peak_loss;
      Alcotest.(check bool) "never repaired" true
        (ep.Collector.time_to_repair = None)
  | eps -> Alcotest.failf "expected one episode, got %d" (List.length eps)

let test_hist_vs_exact_parity () =
  (* Record a realistic spread of queueing delays and lookup stats, then
     check the bounded histograms agree with exact percentiles over the
     retained samples to within the documented relative-error bound. *)
  let c = Collector.create ~window:10.0 ~exact:true () in
  let rng = Repro_util.Rng.create 11 in
  for i = 0 to 999 do
    let d = 0.001 *. Float.exp (Repro_util.Rng.float rng 6.0) in
    Collector.queue_delay c ~time:(float_of_int i *. 0.1) d;
    Collector.lookup_sent c ~seq:i ~time:(float_of_int i *. 0.1);
    Collector.lookup_delivered c ~seq:i
      ~time:((float_of_int i *. 0.1) +. d)
      ~correct:true ~direct_delay:(d /. 2.0)
      ~hops:(1 + Repro_util.Rng.int rng 6)
  done;
  let exact = Collector.queue_delays c in
  let h = Collector.queue_delay_hist c in
  Alcotest.(check int) "hist sees every sample" (Array.length exact)
    (Repro_obs.Hist.count h);
  let alpha = Repro_obs.Hist.alpha h in
  List.iter
    (fun p ->
      let e = Repro_util.Stats.percentile exact p in
      let est = Repro_obs.Hist.percentile h p in
      let err = Float.abs (est -. e) /. e in
      if err > (2.0 *. alpha) +. 1e-9 then
        Alcotest.failf "p%.0f: hist %.6g vs exact %.6g (err %.4f)" p est e err)
    [ 50.0; 90.0; 99.0 ];
  Alcotest.(check int) "lookup delays all recorded" 1000
    (Repro_obs.Hist.count (Collector.lookup_delay_hist c));
  Alcotest.(check int) "hops all recorded" 1000
    (Repro_obs.Hist.count (Collector.hop_hist c))

let test_exact_gating () =
  let c = Collector.create ~window:10.0 () in
  Collector.queue_delay c ~time:1.0 0.05;
  Alcotest.(check bool) "exact off" false (Collector.exact_samples c);
  Alcotest.(check int) "histogram still fed" 1
    (Repro_obs.Hist.count (Collector.queue_delay_hist c));
  Alcotest.check_raises "queue_delays raises"
    (Invalid_argument
       "Collector.queue_delays: exact sample retention is off (create \
        ~exact:true); use the histogram accessors instead") (fun () ->
      ignore (Collector.queue_delays c))

let suite =
  [
    ( "collector",
      [
        Alcotest.test_case "lookup lifecycle" `Quick test_lookup_lifecycle;
        Alcotest.test_case "incorrect and duplicates" `Quick test_incorrect_and_duplicates;
        Alcotest.test_case "drain exclusion" `Quick test_drain_exclusion;
        Alcotest.test_case "control rates" `Quick test_control_rates;
        Alcotest.test_case "lookup is not control" `Quick test_lookup_not_control;
        Alcotest.test_case "population series" `Quick test_population_series;
        Alcotest.test_case "join latencies" `Quick test_join_latencies;
        Alcotest.test_case "since filter" `Quick test_since_filter;
        Alcotest.test_case "zero direct delay" `Quick test_zero_direct_delay;
        Alcotest.test_case "fault episode repair" `Quick test_fault_episode_repair;
        Alcotest.test_case "fault episode unrepaired" `Quick
          test_fault_episode_unrepaired;
        Alcotest.test_case "hist vs exact parity" `Quick test_hist_vs_exact_parity;
        Alcotest.test_case "exact gating" `Quick test_exact_gating;
      ] );
  ]
