(* Harness plumbing: topology factory, Live session bookkeeping, lookup
   sequence allocation, graceful-vs-crash departures. *)

module Sim = Harness.Sim
module Live = Sim.Live
module Node = Mspastry.Node
module Rng = Repro_util.Rng

let test_topology_factory () =
  let rng = Rng.create 3 in
  List.iter
    (fun (kind, name) ->
      let t = Sim.make_topology kind ~rng ~n_endpoints:16 in
      Alcotest.(check string) "name" name (Topology.name t);
      Alcotest.(check int) "endpoints" 16 (Topology.n_endpoints t))
    [
      (Sim.Gatech, "gatech");
      (Sim.Mercator, "mercator");
      (Sim.Corpnet, "corpnet");
      (Sim.Flat 0.01, "constant");
    ]

let test_default_config_valid () =
  let c = Sim.default_config in
  Alcotest.(check bool) "pastry config valid" true
    (Mspastry.Config.validate c.Sim.pastry = Ok ());
  Alcotest.(check bool) "warmup before nothing" true (c.Sim.warmup > 0.0);
  Alcotest.(check bool) "no loss by default" true (c.Sim.loss_rate = 0.0);
  Alcotest.(check bool) "crash-only departures" true
    (c.Sim.graceful_leave_fraction = 0.0)

let flat () =
  {
    Sim.default_config with
    topology = Sim.Flat 0.02;
    lookup_rate = 0.0;
    warmup = 0.0;
    window = 60.0;
  }

let test_live_bookkeeping () =
  let live = Live.create (flat ()) ~n_endpoints:16 in
  Alcotest.(check int) "empty" 0 (Live.node_count live);
  let n1 = Live.spawn live () in
  Live.run_until live 10.0;
  Alcotest.(check int) "bootstrap active" 1 (Live.node_count live);
  let addr = (Node.me n1).Pastry.Peer.addr in
  (match Live.find_node live ~addr with
  | Some n -> Alcotest.(check bool) "find_node" true (n == n1)
  | None -> Alcotest.fail "node not found");
  Alcotest.(check bool) "unknown addr" true (Live.find_node live ~addr:999 = None);
  Live.crash_node live n1;
  Alcotest.(check int) "crash removes from oracle" 0 (Live.node_count live);
  Alcotest.(check bool) "crash removes registry" true (Live.find_node live ~addr = None);
  Alcotest.(check int) "created counter" 1 (Live.nodes_created live)

let test_alloc_lookup_sequences () =
  let live = Live.create (flat ()) ~n_endpoints:16 in
  let a = Live.alloc_lookup live and b = Live.alloc_lookup live in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check bool) "monotone" true (b > a)

let test_graceful_crash_node () =
  let live = Live.create (flat ()) ~n_endpoints:16 in
  let n1 = Live.spawn live () in
  Live.run_until live 5.0;
  let n2 = Live.spawn live () in
  Live.run_until live 60.0;
  Alcotest.(check int) "pair formed" 2 (Live.node_count live);
  (* graceful departure: the survivor evicts without probe timeouts *)
  Live.crash_node ~graceful:true live n2;
  Live.run_until live 62.0;
  Alcotest.(check bool) "survivor evicted the departed immediately" false
    (Pastry.Leafset.mem (Node.leafset n1) (Node.me n2).Pastry.Peer.id)

let test_spawn_at_schedules () =
  let live = Live.create (flat ()) ~n_endpoints:16 in
  Live.spawn_at live ~time:5.0 ();
  Live.spawn_at live ~time:10.0 ();
  Live.run_until live 4.0;
  Alcotest.(check int) "nothing yet" 0 (Live.node_count live);
  Live.run_until live 60.0;
  Alcotest.(check int) "both up" 2 (Live.node_count live)

let test_live_of_trace_runs () =
  let trace =
    Churn.Trace.poisson (Rng.create 2) ~n_avg:20 ~session_mean:600.0 ~duration:900.0
  in
  let live = Sim.live_of_trace (flat ()) ~trace in
  Live.run_until live 900.0;
  Alcotest.(check bool) "population formed" true (Live.node_count live > 5)

let test_manifest_roundtrip () =
  let path = Filename.temp_file "manifest" ".json" in
  let config = { (flat ()) with Sim.manifest_out = Some path; seed = 17 } in
  let trace =
    Churn.Trace.poisson (Rng.create 2) ~n_avg:10 ~session_mean:600.0 ~duration:300.0
  in
  let live = Sim.live_of_trace config ~trace in
  Live.run_until live 300.0;
  (* close writes the manifest because [manifest_out] is set *)
  Live.close live;
  let ic = open_in path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  match Repro_obs.Json.of_string s with
  | Error e -> Alcotest.failf "manifest unparseable: %s" e
  | Ok j ->
      let module J = Repro_obs.Json in
      let str k = Option.bind (J.member k j) J.to_str in
      Alcotest.(check (option string)) "schema" (Some Harness.Manifest.schema)
        (str "schema");
      Alcotest.(check (option int)) "seed" (Some 17)
        (Option.bind (J.member "seed" j) J.to_int);
      List.iter
        (fun section ->
          if J.member section j = None then
            Alcotest.failf "manifest missing section %S" section)
        [ "git"; "config"; "counters"; "histograms"; "profile"; "engine" ];
      (* spot-check one value per nested section *)
      let deep path =
        List.fold_left (fun acc k -> Option.bind acc (J.member k)) (Some j) path
      in
      Alcotest.(check bool) "engine fired counter present" true
        (Option.bind (deep [ "engine"; "fired" ]) J.to_int <> None);
      Alcotest.(check bool) "lookup hist summary present" true
        (Option.bind (deep [ "histograms"; "lookup_hops"; "count" ]) J.to_int
        <> None);
      Alcotest.(check bool) "config topology recorded" true
        (Option.bind (deep [ "config"; "topology" ]) J.to_str <> None)

let suite =
  [
    ( "harness",
      [
        Alcotest.test_case "topology factory" `Quick test_topology_factory;
        Alcotest.test_case "default config valid" `Quick test_default_config_valid;
        Alcotest.test_case "live bookkeeping" `Quick test_live_bookkeeping;
        Alcotest.test_case "lookup sequence allocation" `Quick test_alloc_lookup_sequences;
        Alcotest.test_case "graceful crash_node" `Quick test_graceful_crash_node;
        Alcotest.test_case "spawn_at schedules" `Quick test_spawn_at_schedules;
        Alcotest.test_case "live_of_trace" `Quick test_live_of_trace_runs;
        Alcotest.test_case "manifest round-trip" `Quick test_manifest_roundtrip;
      ] );
  ]
