module Nodeid = Pastry.Nodeid
module Peer = Pastry.Peer
module Rt = Pastry.Routing_table
module Rng = Repro_util.Rng

let hexid prefix =
  Nodeid.of_hex (prefix ^ String.concat "" (List.init (32 - String.length prefix) (fun _ -> "0")))

let me = hexid "a0"
let table () = Rt.create ~b:4 ~me

let test_dimensions () =
  let t = table () in
  Alcotest.(check int) "rows" 32 (Rt.rows t);
  Alcotest.(check int) "cols" 16 (Rt.cols t);
  Alcotest.(check int) "empty" 0 (Rt.count t)

let test_slot_of () =
  let t = table () in
  (* me = a0...; id b0... differs in first digit -> row 0, col 0xb *)
  Alcotest.(check (option (pair int int))) "row0" (Some (0, 0xb)) (Rt.slot_of t (hexid "b0"));
  (* id a5... shares 1 digit -> row 1, col 5 *)
  Alcotest.(check (option (pair int int))) "row1" (Some (1, 5)) (Rt.slot_of t (hexid "a5"));
  Alcotest.(check (option (pair int int))) "self" None (Rt.slot_of t me)

let test_consider_install_and_pns () =
  let t = table () in
  let p1 = Peer.make (hexid "b0") 1 in
  Alcotest.(check bool) "install" true (Rt.consider t p1 ~rtt:0.1);
  Alcotest.(check int) "count" 1 (Rt.count t);
  (* same slot, farther candidate: rejected *)
  let p2 = Peer.make (hexid "b1") 2 in
  Alcotest.(check bool) "farther rejected" false (Rt.consider t p2 ~rtt:0.2);
  (* same slot, closer candidate: replaces *)
  Alcotest.(check bool) "closer replaces" true (Rt.consider t p2 ~rtt:0.05);
  (match Rt.get t 0 0xb with
  | Some e -> Alcotest.(check int) "occupant" 2 e.Rt.peer.Peer.addr
  | None -> Alcotest.fail "slot empty");
  Alcotest.(check int) "still one entry" 1 (Rt.count t)

let test_consider_same_id_update () =
  let t = table () in
  let p = Peer.make (hexid "b0") 1 in
  ignore (Rt.consider t p ~rtt:0.1);
  Alcotest.(check bool) "same id better rtt" true (Rt.consider t p ~rtt:0.05);
  Alcotest.(check bool) "same id worse rtt" false (Rt.consider t p ~rtt:0.5)

let test_set_unconditional () =
  let t = table () in
  ignore (Rt.consider t (Peer.make (hexid "b0") 1) ~rtt:0.01);
  Alcotest.(check bool) "set overwrites" true (Rt.set t (Peer.make (hexid "b1") 2) ~rtt:9.9);
  match Rt.get t 0 0xb with
  | Some e -> Alcotest.(check int) "new occupant" 2 e.Rt.peer.Peer.addr
  | None -> Alcotest.fail "slot empty"

let test_remove_exact_id () =
  let t = table () in
  ignore (Rt.consider t (Peer.make (hexid "b0") 1) ~rtt:0.1);
  (* removing a different id that maps to the same slot must not evict *)
  Alcotest.(check bool) "other id" false (Rt.remove t (hexid "b1"));
  Alcotest.(check int) "kept" 1 (Rt.count t);
  Alcotest.(check bool) "exact id" true (Rt.remove t (hexid "b0"));
  Alcotest.(check int) "empty" 0 (Rt.count t)

let test_find () =
  let t = table () in
  ignore (Rt.consider t (Peer.make (hexid "b0") 1) ~rtt:0.1);
  Alcotest.(check bool) "found" true (Rt.find t (hexid "b0") <> None);
  Alcotest.(check bool) "same slot, different id" true (Rt.find t (hexid "b1") = None);
  Alcotest.(check bool) "self" true (Rt.find t me = None)

let test_rows_and_entries () =
  let t = table () in
  ignore (Rt.consider t (Peer.make (hexid "b0") 1) ~rtt:0.1);
  ignore (Rt.consider t (Peer.make (hexid "c0") 2) ~rtt:0.1);
  ignore (Rt.consider t (Peer.make (hexid "a5") 3) ~rtt:0.1);
  Alcotest.(check int) "row 0 has 2" 2 (List.length (Rt.row_entries t 0));
  Alcotest.(check int) "row 1 has 1" 1 (List.length (Rt.row_entries t 1));
  Alcotest.(check int) "entries" 3 (List.length (Rt.entries t));
  Alcotest.(check int) "peers" 3 (List.length (Rt.peers t))

let test_update_rtt () =
  let t = table () in
  ignore (Rt.consider t (Peer.make (hexid "b0") 1) ~rtt:0.5);
  Rt.update_rtt t (hexid "b0") 0.25;
  (match Rt.find t (hexid "b0") with
  | Some e -> Alcotest.(check (float 1e-9)) "updated" 0.25 e.Rt.rtt
  | None -> Alcotest.fail "missing");
  (* update for an id not installed is a no-op *)
  Rt.update_rtt t (hexid "b1") 0.1;
  Alcotest.(check int) "count" 1 (Rt.count t)

let qcheck_slot_matches_prefix =
  QCheck.Test.make ~name:"slot row = shared prefix length" ~count:300 QCheck.int
    (fun seed ->
      let rng = Rng.create seed in
      let me = Nodeid.random rng in
      let t = Rt.create ~b:4 ~me in
      let id = Nodeid.random rng in
      match Rt.slot_of t id with
      | None -> Nodeid.equal id me
      | Some (r, c) ->
          r = Nodeid.shared_prefix_length ~b:4 me id && c = Nodeid.digit ~b:4 id r
          && c <> Nodeid.digit ~b:4 me r)

let qcheck_all_b_values =
  QCheck.Test.make ~name:"tables work for b in 1..8" ~count:50 QCheck.int (fun seed ->
      let rng = Rng.create seed in
      List.for_all
        (fun b ->
          let me = Nodeid.random rng in
          let t = Rt.create ~b ~me in
          let ok = ref true in
          for k = 0 to 20 do
            let p = Peer.make (Nodeid.random rng) k in
            ignore (Rt.consider t p ~rtt:0.1)
          done;
          List.iter
            (fun (e : Rt.entry) ->
              match Rt.slot_of t e.Rt.peer.Peer.id with
              | Some (r, c) -> (
                  match Rt.get t r c with
                  | Some e' -> if not (Peer.equal e.Rt.peer e'.Rt.peer) then ok := false
                  | None -> ok := false)
              | None -> ok := false)
            (Rt.entries t);
          !ok)
        [ 1; 2; 3; 4; 5; 8 ])

let suite =
  [
    ( "routing-table",
      [
        Alcotest.test_case "dimensions" `Quick test_dimensions;
        Alcotest.test_case "slot_of" `Quick test_slot_of;
        Alcotest.test_case "consider: install and PNS replace" `Quick
          test_consider_install_and_pns;
        Alcotest.test_case "consider: same id rtt update" `Quick test_consider_same_id_update;
        Alcotest.test_case "set is unconditional" `Quick test_set_unconditional;
        Alcotest.test_case "remove only exact id" `Quick test_remove_exact_id;
        Alcotest.test_case "find" `Quick test_find;
        Alcotest.test_case "rows and entries" `Quick test_rows_and_entries;
        Alcotest.test_case "update rtt" `Quick test_update_rtt;
        QCheck_alcotest.to_alcotest qcheck_slot_matches_prefix;
        QCheck_alcotest.to_alcotest qcheck_all_b_values;
      ] );
  ]
