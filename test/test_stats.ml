module Stats = Repro_util.Stats
module Rng = Repro_util.Rng

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_f msg expected actual =
  Alcotest.(check (float 1e-9)) msg expected actual

let test_mean () =
  check_f "empty" 0.0 (Stats.mean [||]);
  check_f "single" 4.0 (Stats.mean [| 4.0 |]);
  check_f "several" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |])

let test_stddev () =
  check_f "empty" 0.0 (Stats.stddev [||]);
  check_f "single" 0.0 (Stats.stddev [| 3.0 |]);
  check_f "known" 2.0 (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])

let test_median () =
  check_f "odd" 3.0 (Stats.median [| 5.0; 3.0; 1.0 |]);
  check_f "even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |]);
  check_f "empty" 0.0 (Stats.median [||])

let test_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0 |] in
  check_f "p0" 10.0 (Stats.percentile xs 0.0);
  check_f "p100" 40.0 (Stats.percentile xs 100.0);
  check_f "p50" 25.0 (Stats.percentile xs 50.0);
  (* does not mutate *)
  Alcotest.(check (array (float 0.0))) "unchanged" [| 10.0; 20.0; 30.0; 40.0 |] xs

let test_cdf () =
  let c = Stats.cdf [| 3.0; 1.0; 2.0 |] in
  Alcotest.(check int) "points" 3 (Array.length c);
  Alcotest.(check bool) "sorted and ends at 1" true
    (fst c.(0) = 1.0 && feq (snd c.(2)) 1.0 && snd c.(0) < snd c.(2))

let test_online_matches_batch () =
  let rng = Rng.create 5 in
  let xs = Array.init 500 (fun _ -> Rng.float rng 100.0) in
  let o = Stats.Online.create () in
  Array.iter (Stats.Online.add o) xs;
  Alcotest.(check int) "count" 500 (Stats.Online.count o);
  Alcotest.(check bool) "mean" true (feq ~eps:1e-6 (Stats.mean xs) (Stats.Online.mean o));
  Alcotest.(check bool) "stddev" true
    (feq ~eps:1e-6 (Stats.stddev xs) (Stats.Online.stddev o));
  Alcotest.(check bool) "min/max" true
    (Stats.Online.min o <= Stats.Online.mean o && Stats.Online.mean o <= Stats.Online.max o)

let test_online_empty () =
  let o = Stats.Online.create () in
  check_f "mean" 0.0 (Stats.Online.mean o);
  check_f "stddev" 0.0 (Stats.Online.stddev o);
  Alcotest.(check bool) "min" true (Stats.Online.min o = infinity)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 in
  Stats.Histogram.add h 0.5;
  Stats.Histogram.add h 9.9;
  Stats.Histogram.add h (-3.0);
  (* clamps low *)
  Stats.Histogram.add h 42.0;
  (* clamps high *)
  let c = Stats.Histogram.counts h in
  Alcotest.(check int) "total" 4 (Stats.Histogram.total h);
  Alcotest.(check int) "first bin" 2 c.(0);
  Alcotest.(check int) "last bin" 2 c.(4);
  check_f "bin mid" 1.0 (Stats.Histogram.bin_mid h 0)

let test_histogram_validation () =
  Alcotest.check_raises "bad" (Invalid_argument "Histogram.create") (fun () ->
      ignore (Stats.Histogram.create ~lo:1.0 ~hi:0.0 ~bins:3))

let test_zipf_range_and_skew () =
  let z = Stats.Zipf.create ~n:100 ~s:1.0 in
  let rng = Rng.create 3 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let k = Stats.Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 100);
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "heavy head" true (counts.(0) > 20_000 / 20)

let qcheck_cdf_monotone =
  QCheck.Test.make ~name:"cdf is monotone" ~count:200
    QCheck.(array_of_size (QCheck.Gen.int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let c = Stats.cdf xs in
      let ok = ref true in
      for i = 1 to Array.length c - 1 do
        if fst c.(i) < fst c.(i - 1) || snd c.(i) < snd c.(i - 1) then ok := false
      done;
      !ok)

let qcheck_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min/max" ~count:200
    QCheck.(
      pair
        (array_of_size (QCheck.Gen.int_range 1 50) (float_range (-50.) 50.))
        (float_range 0. 100.))
    (fun (xs, p) ->
      let v = Stats.percentile xs p in
      let mn = Array.fold_left Float.min infinity xs in
      let mx = Array.fold_left Float.max neg_infinity xs in
      v >= mn -. 1e-9 && v <= mx +. 1e-9)

let suite =
  [
    ( "stats",
      [
        Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "stddev" `Quick test_stddev;
        Alcotest.test_case "median" `Quick test_median;
        Alcotest.test_case "percentile" `Quick test_percentile;
        Alcotest.test_case "cdf" `Quick test_cdf;
        Alcotest.test_case "online matches batch" `Quick test_online_matches_batch;
        Alcotest.test_case "online empty" `Quick test_online_empty;
        Alcotest.test_case "histogram" `Quick test_histogram;
        Alcotest.test_case "histogram validation" `Quick test_histogram_validation;
        Alcotest.test_case "zipf range and skew" `Quick test_zipf_range_and_skew;
        QCheck_alcotest.to_alcotest qcheck_cdf_monotone;
        QCheck_alcotest.to_alcotest qcheck_percentile_bounds;
      ] );
  ]
