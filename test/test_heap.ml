module Heap = Repro_util.Heap
module Rng = Repro_util.Rng

let test_basic () =
  let h = Heap.create ~leq:(fun a b -> a <= b) () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h 3;
  Heap.push h 1;
  Heap.push h 2;
  Alcotest.(check int) "size" 3 (Heap.size h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Heap.pop h);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Heap.pop h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h)

let test_peek_nondestructive () =
  let h = Heap.create ~leq:(fun a b -> a <= b) () in
  Heap.push h 7;
  Alcotest.(check (option int)) "peek" (Some 7) (Heap.peek h);
  Alcotest.(check int) "size unchanged" 1 (Heap.size h)

let test_fifo_ties () =
  (* elements compare equal on key; insertion order must be preserved *)
  let h = Heap.create ~leq:(fun (a, _) (b, _) -> a <= b) () in
  for i = 0 to 19 do
    Heap.push h (0, i)
  done;
  for i = 0 to 19 do
    match Heap.pop h with
    | Some (_, v) -> Alcotest.(check int) "fifo order" i v
    | None -> Alcotest.fail "premature empty"
  done

let test_mixed_ties () =
  let h = Heap.create ~leq:(fun (a, _) (b, _) -> a <= b) () in
  Heap.push h (1, "a");
  Heap.push h (0, "b");
  Heap.push h (1, "c");
  Heap.push h (0, "d");
  let order = List.init 4 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "keys then fifo" [ "b"; "d"; "a"; "c" ] order

let test_clear () =
  let h = Heap.create ~leq:(fun a b -> a <= b) () in
  Heap.push h 1;
  Heap.push h 2;
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h);
  Heap.push h 9;
  Alcotest.(check (option int)) "usable after clear" (Some 9) (Heap.pop h)

let test_interleaved () =
  let h = Heap.create ~leq:(fun a b -> a <= b) () in
  let rng = Rng.create 99 in
  let reference = ref [] in
  for _ = 1 to 2000 do
    if Rng.bool rng || !reference = [] then begin
      let v = Rng.int rng 1000 in
      Heap.push h v;
      reference := List.sort compare (v :: !reference)
    end
    else begin
      match (Heap.pop h, !reference) with
      | Some v, r :: rest ->
          Alcotest.(check int) "pop is min" r v;
          reference := rest
      | _ -> Alcotest.fail "mismatch"
    end
  done

let qcheck_sorted_drain =
  QCheck.Test.make ~name:"heap drains sorted" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Heap.create ~leq:(fun a b -> a <= b) () in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with Some v -> drain (v :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

let suite =
  [
    ( "heap",
      [
        Alcotest.test_case "basic order" `Quick test_basic;
        Alcotest.test_case "peek non-destructive" `Quick test_peek_nondestructive;
        Alcotest.test_case "FIFO tie-break" `Quick test_fifo_ties;
        Alcotest.test_case "mixed keys and ties" `Quick test_mixed_ties;
        Alcotest.test_case "clear" `Quick test_clear;
        Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
        QCheck_alcotest.to_alcotest qcheck_sorted_drain;
      ] );
  ]
