module Rng = Repro_util.Rng

let test_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_split_independent () =
  let a = Rng.create 7 in
  let c1 = Rng.split a in
  let c2 = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 c1 = Rng.bits64 c2 then incr same
  done;
  Alcotest.(check bool) "children differ" true (!same < 4)

let test_copy_same_stream () =
  let a = Rng.create 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  for _ = 1 to 20 do
    Alcotest.(check int64) "copy equal" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_int_rejects_nonpositive () =
  let r = Rng.create 1 in
  Alcotest.check_raises "zero" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_float_bounds () =
  let r = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float r 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.5)
  done

let test_bytes_length () =
  let r = Rng.create 13 in
  Alcotest.(check int) "len" 16 (String.length (Rng.bytes r 16));
  Alcotest.(check int) "len0" 0 (String.length (Rng.bytes r 0))

let test_exponential_mean () =
  let r = Rng.create 17 in
  let n = 20_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential r ~mean:5.0
  done;
  let m = !acc /. float_of_int n in
  Alcotest.(check bool) "mean close to 5" true (Float.abs (m -. 5.0) < 0.25)

let test_normal_moments () =
  let r = Rng.create 19 in
  let n = 20_000 in
  let acc = ref 0.0 and acc2 = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.normal r ~mean:2.0 ~stddev:3.0 in
    acc := !acc +. v;
    acc2 := !acc2 +. (v *. v)
  done;
  let m = !acc /. float_of_int n in
  let var = (!acc2 /. float_of_int n) -. (m *. m) in
  Alcotest.(check bool) "mean" true (Float.abs (m -. 2.0) < 0.15);
  Alcotest.(check bool) "stddev" true (Float.abs (sqrt var -. 3.0) < 0.2)

let test_lognormal_median () =
  let r = Rng.create 23 in
  let n = 20_001 in
  let xs = Array.init n (fun _ -> Rng.lognormal r ~mu:(log 100.0) ~sigma:1.0) in
  let med = Repro_util.Stats.median xs in
  Alcotest.(check bool) "median near 100" true (med > 85.0 && med < 115.0)

let test_poisson_mean () =
  let r = Rng.create 29 in
  let n = 10_000 in
  let acc = ref 0 in
  for _ = 1 to n do
    acc := !acc + Rng.poisson r ~mean:4.0
  done;
  let m = float_of_int !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (Float.abs (m -. 4.0) < 0.15);
  (* large-mean path *)
  let acc = ref 0 in
  for _ = 1 to n do
    acc := !acc + Rng.poisson r ~mean:100.0
  done;
  let m = float_of_int !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 100" true (Float.abs (m -. 100.0) < 1.5)

let test_poisson_zero () =
  let r = Rng.create 31 in
  Alcotest.(check int) "zero mean" 0 (Rng.poisson r ~mean:0.0)

let test_shuffle_permutation () =
  let r = Rng.create 37 in
  let a = Array.init 50 (fun i -> i) in
  let b = Array.copy a in
  Rng.shuffle r b;
  let sb = Array.copy b in
  Array.sort compare sb;
  Alcotest.(check (array int)) "same multiset" a sb

let test_pick () =
  let r = Rng.create 41 in
  Alcotest.(check int) "singleton" 5 (Rng.pick r [| 5 |]);
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick r [||]))

let qcheck_int_bounds =
  QCheck.Test.make ~name:"Rng.int in [0,n)" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, n) ->
      let r = Rng.create seed in
      let v = Rng.int r n in
      v >= 0 && v < n)

let suite =
  [
    ( "rng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "different seeds" `Quick test_different_seeds;
        Alcotest.test_case "split independence" `Quick test_split_independent;
        Alcotest.test_case "copy same stream" `Quick test_copy_same_stream;
        Alcotest.test_case "int rejects non-positive" `Quick test_int_rejects_nonpositive;
        Alcotest.test_case "float bounds" `Quick test_float_bounds;
        Alcotest.test_case "bytes length" `Quick test_bytes_length;
        Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
        Alcotest.test_case "normal moments" `Quick test_normal_moments;
        Alcotest.test_case "lognormal median" `Quick test_lognormal_median;
        Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
        Alcotest.test_case "poisson zero mean" `Quick test_poisson_zero;
        Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
        Alcotest.test_case "pick" `Quick test_pick;
        QCheck_alcotest.to_alcotest qcheck_int_bounds;
      ] );
  ]
