module Rng = Repro_util.Rng
module Graph = Topology.Graph

let test_graph_basics () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1 1.0;
  Graph.add_edge g 1 2 2.0;
  Graph.add_edge g 0 0 5.0;
  (* self-loop ignored *)
  Alcotest.(check int) "edges" 2 (Graph.n_edges g);
  Alcotest.(check int) "n" 4 (Graph.n g);
  let d = Graph.dijkstra g 0 in
  Alcotest.(check (float 1e-9)) "d(0,0)" 0.0 d.(0);
  Alcotest.(check (float 1e-9)) "d(0,2)" 3.0 d.(2);
  Alcotest.(check bool) "unreachable" true (d.(3) = infinity);
  Alcotest.(check bool) "disconnected" false (Graph.connected g)

let test_graph_parallel_edges_keep_min () =
  let g = Graph.create 2 in
  Graph.add_edge g 0 1 5.0;
  Graph.add_edge g 0 1 2.0;
  Graph.add_edge g 0 1 9.0;
  let d = Graph.dijkstra g 0 in
  Alcotest.(check (float 1e-9)) "min kept" 2.0 d.(1)

let test_graph_validation () =
  let g = Graph.create 2 in
  Alcotest.check_raises "bad weight"
    (Invalid_argument "Graph.add_edge: weight must be positive") (fun () ->
      Graph.add_edge g 0 1 0.0);
  Alcotest.check_raises "bad vertex" (Invalid_argument "Graph.add_edge") (fun () ->
      Graph.add_edge g 0 7 1.0)

let test_ensure_connected () =
  let g = Graph.create 6 in
  Graph.add_edge g 0 1 1.0;
  Graph.add_edge g 2 3 1.0;
  Graph.add_edge g 4 5 1.0;
  Graph.ensure_connected g (Rng.create 3) ~weight:(fun () -> 1.0);
  Alcotest.(check bool) "connected" true (Graph.connected g)

let test_constant () =
  let t = Topology.constant ~n_endpoints:4 ~delay:0.05 in
  Alcotest.(check (float 1e-9)) "pair" 0.05 (Topology.delay t 0 3);
  Alcotest.(check (float 1e-9)) "self" 0.0 (Topology.delay t 2 2);
  Alcotest.(check (float 1e-9)) "rtt" 0.1 (Topology.rtt t 0 1);
  Alcotest.(check int) "endpoints" 4 (Topology.n_endpoints t)

let check_metric name t =
  let n = Topology.n_endpoints t in
  let rng = Rng.create 7 in
  for _ = 1 to 50 do
    let a = Rng.int rng n and b = Rng.int rng n in
    let dab = Topology.delay t a b and dba = Topology.delay t b a in
    Alcotest.(check (float 1e-9)) (name ^ " symmetric") dab dba;
    if a <> b then
      Alcotest.(check bool) (name ^ " positive") true (dab > 0.0 && Float.is_finite dab)
  done

let test_transit_stub () =
  let rng = Rng.create 11 in
  let t =
    Topology.transit_stub ~transit_domains:3 ~routers_per_transit:2
      ~stubs_per_transit_router:2 ~routers_per_stub:3 ~rng ~n_endpoints:40 ()
  in
  Alcotest.(check string) "name" "gatech" (Topology.name t);
  Alcotest.(check int) "routers" (6 + (12 * 3)) (Topology.n_routers t);
  check_metric "gatech" t;
  (* LAN access: endpoints attached to the same router still ~2 ms apart *)
  let rng2 = Rng.create 11 in
  let t2 =
    Topology.transit_stub ~transit_domains:3 ~routers_per_transit:2
      ~stubs_per_transit_router:2 ~routers_per_stub:3 ~rng:rng2 ~n_endpoints:40 ()
  in
  (* determinism: same seed, same delays *)
  Alcotest.(check (float 1e-12)) "deterministic" (Topology.delay t 0 1) (Topology.delay t2 0 1)

let test_as_graph_hop_metric () =
  let rng = Rng.create 13 in
  let t = Topology.as_graph ~n_as:10 ~routers_per_as:3 ~hop_delay:0.002 ~rng ~n_endpoints:30 () in
  Alcotest.(check string) "name" "mercator" (Topology.name t);
  check_metric "mercator" t;
  (* all delays are whole multiples of the hop delay *)
  let rng2 = Rng.create 5 in
  for _ = 1 to 30 do
    let a = Rng.int rng2 30 and b = Rng.int rng2 30 in
    if a <> b then begin
      let d = Topology.delay t a b in
      let hops = d /. 0.002 in
      Alcotest.(check bool) "integral hops" true (Float.abs (hops -. Float.round hops) < 1e-6)
    end
  done

let test_corpnet () =
  let rng = Rng.create 17 in
  let t = Topology.corpnet ~n_routers:50 ~n_hubs:5 ~rng ~n_endpoints:30 () in
  Alcotest.(check string) "name" "corpnet" (Topology.name t);
  Alcotest.(check int) "routers" 50 (Topology.n_routers t);
  check_metric "corpnet" t

let test_delay_bounds_validation () =
  let t = Topology.constant ~n_endpoints:4 ~delay:0.05 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Topology.delay: endpoint out of range") (fun () ->
      ignore (Topology.delay t 0 9))

let test_corpnet_smaller_than_gatech () =
  (* CorpNet is a small low-diameter network: its typical delays should be
     below GATech's — the property behind the paper's RDP ordering *)
  let rng = Rng.create 23 in
  let g =
    Topology.transit_stub ~transit_domains:6 ~routers_per_transit:3
      ~stubs_per_transit_router:4 ~routers_per_stub:5 ~rng ~n_endpoints:60 ()
  in
  let c = Topology.corpnet ~rng ~n_endpoints:60 () in
  let mean t =
    let acc = ref 0.0 and n = ref 0 in
    for a = 0 to 29 do
      for b = 30 to 59 do
        acc := !acc +. Topology.delay t a b;
        incr n
      done
    done;
    !acc /. float_of_int !n
  in
  Alcotest.(check bool) "corpnet tighter" true (mean c < mean g)

let suite =
  [
    ( "topology",
      [
        Alcotest.test_case "graph basics" `Quick test_graph_basics;
        Alcotest.test_case "parallel edges keep min" `Quick test_graph_parallel_edges_keep_min;
        Alcotest.test_case "graph validation" `Quick test_graph_validation;
        Alcotest.test_case "ensure connected" `Quick test_ensure_connected;
        Alcotest.test_case "constant topology" `Quick test_constant;
        Alcotest.test_case "transit-stub" `Quick test_transit_stub;
        Alcotest.test_case "AS graph hop metric" `Quick test_as_graph_hop_metric;
        Alcotest.test_case "corpnet" `Quick test_corpnet;
        Alcotest.test_case "delay bounds" `Quick test_delay_bounds_validation;
        Alcotest.test_case "corpnet tighter than gatech" `Quick
          test_corpnet_smaller_than_gatech;
      ] );
  ]
