module Sim = Harness.Sim
module Live = Sim.Live
module Node = Mspastry.Node
module Past = Past_store.Past
module Rng = Repro_util.Rng

let build_overlay ?(seed = 42) n =
  let config =
    {
      Sim.default_config with
      topology = Sim.Flat 0.02;
      seed;
      lookup_rate = 0.0;
      warmup = 0.0;
      window = 60.0;
    }
  in
  let live = Live.create config ~n_endpoints:(max 8 n) in
  for i = 0 to n - 1 do
    Live.spawn_at live ~time:(float_of_int i *. 5.0) ()
  done;
  Live.run_until live ((float_of_int n *. 5.0) +. 120.0);
  live

let advance live dt =
  Live.run_until live (Simkit.Engine.now (Live.engine live) +. dt)

let test_put_get () =
  let live = build_overlay 16 in
  let store = Past.create ~live () in
  let nodes = Array.of_list (Live.active_nodes live) in
  Past.put store ~client:nodes.(0) ~key:"alpha" ~value:"1";
  advance live 5.0;
  let s = Past.stats store in
  Alcotest.(check int) "put stored" 1 s.Past.put_acks;
  Past.get store ~client:nodes.(5) ~key:"alpha";
  advance live 5.0;
  let s = Past.stats store in
  Alcotest.(check int) "get hit" 1 s.Past.get_hits;
  Alcotest.(check int) "no miss" 0 s.Past.get_misses

let test_missing_key () =
  let live = build_overlay 10 in
  let store = Past.create ~live () in
  let nodes = Array.of_list (Live.active_nodes live) in
  Past.get store ~client:nodes.(0) ~key:"never-stored";
  advance live 5.0;
  let s = Past.stats store in
  Alcotest.(check int) "miss" 1 s.Past.get_misses;
  Alcotest.(check int) "no hit" 0 s.Past.get_hits

let test_replication_factor () =
  let live = build_overlay 16 in
  let store = Past.create ~replicas:3 ~live () in
  let nodes = Array.of_list (Live.active_nodes live) in
  Past.put store ~client:nodes.(0) ~key:"replicated" ~value:"x";
  advance live 5.0;
  Alcotest.(check int) "three copies" 3 (Past.object_replicas store ~key:"replicated")

let test_survives_root_crash () =
  let live = build_overlay 20 in
  let store = Past.create ~replicas:3 ~refresh_period:30.0 ~live () in
  let nodes = Array.of_list (Live.active_nodes live) in
  Past.put store ~client:nodes.(0) ~key:"durable" ~value:"v";
  advance live 5.0;
  (* find and kill the current root of the object *)
  let keyhash = Pastry.Nodeid.of_string (Digest.string "past:durable") in
  let root_addr =
    match Harness.Oracle.closest (Live.oracle live) keyhash with
    | Some (_, addr) -> addr
    | None -> Alcotest.fail "no root"
  in
  (match Live.find_node live ~addr:root_addr with
  | Some node -> Live.crash_node live node
  | None -> Alcotest.fail "root not found");
  (* wait for eviction; then a get must still succeed via lazy recovery *)
  advance live 60.0;
  let client = List.hd (Live.active_nodes live) in
  Past.get store ~client ~key:"durable";
  advance live 10.0;
  let s = Past.stats store in
  Alcotest.(check int) "hit after root crash" 1 s.Past.get_hits;
  Alcotest.(check int) "no timeout" 0 s.Past.get_timeouts

let test_rereplication_sweep () =
  let live = build_overlay 20 in
  let store = Past.create ~replicas:3 ~refresh_period:20.0 ~live () in
  let nodes = Array.of_list (Live.active_nodes live) in
  Past.put store ~client:nodes.(0) ~key:"swept" ~value:"v";
  advance live 5.0;
  (* kill one replica holder; the sweep should restore 3 copies *)
  let keyhash = Pastry.Nodeid.of_string (Digest.string "past:swept") in
  let root_addr =
    match Harness.Oracle.closest (Live.oracle live) keyhash with
    | Some (_, addr) -> addr
    | None -> Alcotest.fail "no root"
  in
  (match Live.find_node live ~addr:root_addr with
  | Some node -> Live.crash_node live node
  | None -> ());
  advance live 120.0;
  Alcotest.(check bool) "copies restored" true (Past.object_replicas store ~key:"swept" >= 3)

let test_many_objects_balanced () =
  let live = build_overlay 16 in
  let store = Past.create ~replicas:2 ~live () in
  let nodes = Array.of_list (Live.active_nodes live) in
  for i = 0 to 49 do
    Past.put store ~client:nodes.(i mod 16) ~key:(Printf.sprintf "obj%d" i) ~value:"v"
  done;
  advance live 10.0;
  let s = Past.stats store in
  Alcotest.(check int) "all stored" 50 s.Past.put_acks;
  Alcotest.(check int) "2 replicas each" 100 s.Past.stored_objects;
  (* gets from random clients all succeed *)
  let rng = Rng.create 3 in
  for i = 0 to 49 do
    Past.get store ~client:nodes.(Rng.int rng 16) ~key:(Printf.sprintf "obj%d" i)
  done;
  advance live 10.0;
  let s = Past.stats store in
  Alcotest.(check int) "all gets hit" 50 s.Past.get_hits

let test_create_validation () =
  let live = build_overlay 4 in
  Alcotest.check_raises "bad replicas" (Invalid_argument "Past.create: replicas must be >= 1")
    (fun () -> ignore (Past.create ~replicas:0 ~live ()))

let suite =
  [
    ( "past",
      [
        Alcotest.test_case "put then get" `Quick test_put_get;
        Alcotest.test_case "missing key" `Quick test_missing_key;
        Alcotest.test_case "replication factor" `Quick test_replication_factor;
        Alcotest.test_case "survives root crash" `Slow test_survives_root_crash;
        Alcotest.test_case "re-replication sweep" `Slow test_rereplication_sweep;
        Alcotest.test_case "many objects balanced" `Quick test_many_objects_balanced;
        Alcotest.test_case "create validation" `Quick test_create_validation;
      ] );
  ]
