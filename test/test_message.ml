module M = Mspastry.Message
module Peer = Pastry.Peer
module Nodeid = Pastry.Nodeid

let peer = Peer.make (Nodeid.of_int 1) 1

let lookup ?(retx = false) () =
  M.Lookup
    { key = Nodeid.of_int 2; seq = 0; origin = peer; hops = 0; retx; reliable = true }

let classify p = M.classify (M.make ~sender:peer p)

let test_lookup_classes () =
  Alcotest.(check string) "fresh lookup is traffic" "lookup"
    (M.class_name (classify (lookup ())));
  Alcotest.(check string) "retransmission is control" "acks+retransmits"
    (M.class_name (classify (lookup ~retx:true ())));
  Alcotest.(check bool) "lookup not control" false (M.is_control (classify (lookup ())))

let test_class_partition () =
  (* every payload falls in exactly one class, and every class is named *)
  let payloads =
    [
      lookup ();
      M.Join_request { joiner = peer; rows = [] };
      M.Join_reply { rows = []; leaf = [] };
      M.Ls_probe { leaf = []; failed = []; trt = 1.0 };
      M.Ls_probe_reply { leaf = []; failed = []; trt = 1.0 };
      M.Heartbeat;
      M.Hop_ack { hop_id = 1 };
      M.Rt_probe;
      M.Rt_probe_reply { trt = 1.0 };
      M.Distance_probe { probe_seq = 1 };
      M.Distance_probe_reply { probe_seq = 1 };
      M.Rtt_report { rtt = 0.1 };
      M.Row_announce { row = 0; entries = [] };
      M.Row_request { row = 0 };
      M.Row_reply { row = 0; entries = [] };
      M.Slot_request { row = 0; col = 0 };
      M.Slot_reply { row = 0; col = 0; entry = None };
      M.Repair_request { left_side = true };
      M.Repair_reply { candidates = [] };
      M.Nn_request;
      M.Nn_reply { leaf = [] };
    ]
  in
  List.iter
    (fun p ->
      let c = classify p in
      Alcotest.(check bool) "class is known" true (List.mem c M.all_classes);
      Alcotest.(check bool) "named" true (String.length (M.class_name c) > 0))
    payloads

let test_expected_classes () =
  let check p name = Alcotest.(check string) name name (M.class_name (classify p)) in
  check M.Heartbeat "leafset-hb/probes";
  check M.Rt_probe "rt-probes";
  check (M.Distance_probe { probe_seq = 0 }) "distance-probes";
  check (M.Rtt_report { rtt = 0.1 }) "distance-probes";
  check (M.Hop_ack { hop_id = 0 }) "acks+retransmits";
  check M.Nn_request "join";
  check (M.Row_request { row = 0 }) "rt-maintenance";
  check (M.Slot_reply { row = 0; col = 0; entry = None }) "rt-maintenance"

let test_make () =
  let m = M.make ~hop:5 ~sender:peer M.Heartbeat in
  Alcotest.(check (option int)) "hop tag" (Some 5) m.M.hop;
  let m2 = M.make ~sender:peer M.Heartbeat in
  Alcotest.(check (option int)) "no hop tag" None m2.M.hop

let suite =
  [
    ( "message",
      [
        Alcotest.test_case "lookup classes" `Quick test_lookup_classes;
        Alcotest.test_case "class partition" `Quick test_class_partition;
        Alcotest.test_case "expected classes" `Quick test_expected_classes;
        Alcotest.test_case "make" `Quick test_make;
      ] );
  ]
