module Nodeid = Pastry.Nodeid
module Rng = Repro_util.Rng

let id_of_hex = Nodeid.of_hex

let zeros = String.make 32 '0'

let hex_with prefix =
  prefix ^ String.sub zeros 0 (32 - String.length prefix)

let test_hex_roundtrip () =
  let h = "0123456789abcdef0123456789abcdef" in
  Alcotest.(check string) "roundtrip" h (Nodeid.to_hex (id_of_hex h))

let test_of_hex_validation () =
  Alcotest.check_raises "short" (Invalid_argument "Nodeid.of_hex: need 32 hex chars")
    (fun () -> ignore (id_of_hex "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Nodeid.of_hex: bad hex digit")
    (fun () -> ignore (id_of_hex (hex_with "zz")))

let test_compare_numeric () =
  let a = id_of_hex (hex_with "01") and b = id_of_hex (hex_with "02") in
  Alcotest.(check bool) "a < b" true (Nodeid.compare a b < 0);
  Alcotest.(check bool) "equal" true (Nodeid.equal a a);
  Alcotest.(check bool) "zero min" true (Nodeid.compare Nodeid.zero a < 0);
  Alcotest.(check bool) "max max" true (Nodeid.compare a Nodeid.max_value < 0)

let test_of_int () =
  let five = Nodeid.of_int 5 in
  Alcotest.(check string) "low bytes" "00000000000000000000000000000005"
    (Nodeid.to_hex five);
  Alcotest.(check bool) "zero" true (Nodeid.equal (Nodeid.of_int 0) Nodeid.zero)

let test_num_digits () =
  Alcotest.(check int) "b=4" 32 (Nodeid.num_digits ~b:4);
  Alcotest.(check int) "b=1" 128 (Nodeid.num_digits ~b:1);
  Alcotest.(check int) "b=3 ceil" 43 (Nodeid.num_digits ~b:3);
  Alcotest.(check int) "b=5 ceil" 26 (Nodeid.num_digits ~b:5)

let test_digit_b4_matches_hex () =
  let h = "0123456789abcdef0123456789abcdef" in
  let id = id_of_hex h in
  String.iteri
    (fun i c ->
      let expected = int_of_string (Printf.sprintf "0x%c" c) in
      Alcotest.(check int) (Printf.sprintf "digit %d" i) expected (Nodeid.digit ~b:4 id i))
    h

let test_digit_b1_is_bits () =
  let id = id_of_hex (hex_with "80") in
  Alcotest.(check int) "first bit" 1 (Nodeid.digit ~b:1 id 0);
  Alcotest.(check int) "second bit" 0 (Nodeid.digit ~b:1 id 1)

let test_shared_prefix () =
  let a = id_of_hex (hex_with "abcd") and b = id_of_hex (hex_with "abce") in
  Alcotest.(check int) "b=4: 3 digits" 3 (Nodeid.shared_prefix_length ~b:4 a b);
  Alcotest.(check int) "self" 32 (Nodeid.shared_prefix_length ~b:4 a a)

let test_add_sub () =
  let one = Nodeid.of_int 1 in
  Alcotest.(check bool) "max + 1 = 0" true
    (Nodeid.equal (Nodeid.add Nodeid.max_value one) Nodeid.zero);
  Alcotest.(check bool) "0 - 1 = max" true
    (Nodeid.equal (Nodeid.sub Nodeid.zero one) Nodeid.max_value)

let test_cw_dist () =
  let a = Nodeid.of_int 10 and b = Nodeid.of_int 13 in
  Alcotest.(check bool) "cw a b = 3" true
    (Nodeid.equal (Nodeid.cw_dist a b) (Nodeid.of_int 3));
  (* the other way wraps all the way round *)
  Alcotest.(check bool) "cw b a large" true
    (Nodeid.compare (Nodeid.cw_dist b a) (Nodeid.of_int 1000000) > 0)

let test_ring_dist_symmetric () =
  let a = Nodeid.of_int 10 and b = Nodeid.of_int 13 in
  Alcotest.(check bool) "symmetric" true
    (Nodeid.equal (Nodeid.ring_dist a b) (Nodeid.ring_dist b a));
  Alcotest.(check bool) "is 3" true
    (Nodeid.equal (Nodeid.ring_dist a b) (Nodeid.of_int 3))

let test_in_cw_arc () =
  let a = Nodeid.of_int 10 and b = Nodeid.of_int 20 in
  Alcotest.(check bool) "inside" true (Nodeid.in_cw_arc ~from:a ~til:b (Nodeid.of_int 15));
  Alcotest.(check bool) "endpoint til" true (Nodeid.in_cw_arc ~from:a ~til:b b);
  Alcotest.(check bool) "endpoint from" true (Nodeid.in_cw_arc ~from:a ~til:b a);
  Alcotest.(check bool) "outside" false (Nodeid.in_cw_arc ~from:a ~til:b (Nodeid.of_int 25));
  (* arc that wraps zero *)
  Alcotest.(check bool) "wrap inside" true
    (Nodeid.in_cw_arc ~from:(Nodeid.sub Nodeid.zero (Nodeid.of_int 5)) ~til:(Nodeid.of_int 5)
       (Nodeid.of_int 1))

let test_closer_tiebreak () =
  (* two nodes exactly equidistant: the numerically smaller id wins *)
  let key = Nodeid.of_int 10 in
  let a = Nodeid.of_int 8 and b = Nodeid.of_int 12 in
  Alcotest.(check bool) "a beats b" true (Nodeid.closer ~key a b);
  Alcotest.(check bool) "b loses to a" false (Nodeid.closer ~key b a);
  Alcotest.(check bool) "irreflexive" false (Nodeid.closer ~key a a)

let test_to_float () =
  Alcotest.(check (float 0.0)) "zero" 0.0 (Nodeid.to_float Nodeid.zero);
  Alcotest.(check (float 0.0)) "small" 255.0 (Nodeid.to_float (Nodeid.of_int 255));
  Alcotest.(check bool) "max near 2^128" true
    (Nodeid.to_float Nodeid.max_value > 3.4e38)

let random_id =
  QCheck.make
    ~print:(fun id -> Nodeid.to_hex id)
    (QCheck.Gen.map
       (fun seed -> Nodeid.random (Rng.create seed))
       QCheck.Gen.int)

let qcheck_add_sub_inverse =
  QCheck.Test.make ~name:"sub (add a b) b = a" ~count:300 (QCheck.pair random_id random_id)
    (fun (a, b) -> Nodeid.equal (Nodeid.sub (Nodeid.add a b) b) a)

let qcheck_cw_antisym =
  QCheck.Test.make ~name:"cw a b + cw b a = 0 (mod 2^128)" ~count:300
    (QCheck.pair random_id random_id) (fun (a, b) ->
      Nodeid.equal (Nodeid.add (Nodeid.cw_dist a b) (Nodeid.cw_dist b a)) Nodeid.zero)

let qcheck_prefix_symmetric =
  QCheck.Test.make ~name:"shared prefix symmetric" ~count:300
    (QCheck.pair random_id random_id) (fun (a, b) ->
      Nodeid.shared_prefix_length ~b:4 a b = Nodeid.shared_prefix_length ~b:4 b a)

let qcheck_digit_range =
  QCheck.Test.make ~name:"digits within base" ~count:200 random_id (fun id ->
      let ok = ref true in
      List.iter
        (fun b ->
          for i = 0 to Nodeid.num_digits ~b - 1 do
            let d = Nodeid.digit ~b id i in
            if d < 0 || d >= 1 lsl b then ok := false
          done)
        [ 1; 2; 3; 4; 5; 8 ];
      !ok)

let qcheck_closer_total =
  QCheck.Test.make ~name:"closer is a strict total order between distinct ids" ~count:300
    (QCheck.triple random_id random_id random_id) (fun (key, a, b) ->
      if Nodeid.equal a b then not (Nodeid.closer ~key a b)
      else Nodeid.closer ~key a b <> Nodeid.closer ~key b a)

let qcheck_to_float_monotone =
  QCheck.Test.make ~name:"to_float order-consistent" ~count:300
    (QCheck.pair random_id random_id) (fun (a, b) ->
      let c = Nodeid.compare a b in
      let fa = Nodeid.to_float a and fb = Nodeid.to_float b in
      if c < 0 then fa <= fb else if c > 0 then fa >= fb else fa = fb)

let suite =
  [
    ( "nodeid",
      [
        Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
        Alcotest.test_case "of_hex validation" `Quick test_of_hex_validation;
        Alcotest.test_case "compare is numeric" `Quick test_compare_numeric;
        Alcotest.test_case "of_int" `Quick test_of_int;
        Alcotest.test_case "num_digits" `Quick test_num_digits;
        Alcotest.test_case "digit (b=4) matches hex" `Quick test_digit_b4_matches_hex;
        Alcotest.test_case "digit (b=1) is bits" `Quick test_digit_b1_is_bits;
        Alcotest.test_case "shared prefix" `Quick test_shared_prefix;
        Alcotest.test_case "modular add/sub" `Quick test_add_sub;
        Alcotest.test_case "clockwise distance" `Quick test_cw_dist;
        Alcotest.test_case "ring distance symmetric" `Quick test_ring_dist_symmetric;
        Alcotest.test_case "clockwise arcs" `Quick test_in_cw_arc;
        Alcotest.test_case "closer tie-break" `Quick test_closer_tiebreak;
        Alcotest.test_case "to_float" `Quick test_to_float;
        QCheck_alcotest.to_alcotest qcheck_add_sub_inverse;
        QCheck_alcotest.to_alcotest qcheck_cw_antisym;
        QCheck_alcotest.to_alcotest qcheck_prefix_symmetric;
        QCheck_alcotest.to_alcotest qcheck_digit_range;
        QCheck_alcotest.to_alcotest qcheck_closer_total;
        QCheck_alcotest.to_alcotest qcheck_to_float_monotone;
      ] );
  ]
