(* End-to-end tests of whole overlays under the packet simulator:
   formation, routing correctness, consistency under churn, failure
   recovery, per-hop-ack reliability, self-tuning behaviour. *)

module Sim = Harness.Sim
module Live = Sim.Live
module Node = Mspastry.Node
module Nodeid = Pastry.Nodeid
module Peer = Pastry.Peer
module Collector = Overlay_metrics.Collector
module Rng = Repro_util.Rng

let flat_config ?(seed = 42) ?(lookup_rate = 0.0) ?(loss = 0.0) () =
  {
    Sim.default_config with
    topology = Sim.Flat 0.02;
    seed;
    lookup_rate;
    loss_rate = loss;
    warmup = 0.0;
    window = 60.0;
  }

(* spawn [n] nodes staggered [gap] seconds apart, run to quiescence *)
let build_overlay ?(seed = 42) ?(gap = 5.0) ?(settle = 120.0) n =
  let live = Live.create (flat_config ~seed ()) ~n_endpoints:(max 8 n) in
  for i = 0 to n - 1 do
    Live.spawn_at live ~time:(float_of_int i *. gap) ()
  done;
  Live.run_until live ((float_of_int n *. gap) +. settle);
  live

let test_two_nodes () =
  let live = build_overlay 2 in
  Alcotest.(check int) "both active" 2 (Live.node_count live);
  let nodes = Live.active_nodes live in
  List.iter
    (fun n ->
      Alcotest.(check bool) "leafset has the other node" true
        (Pastry.Leafset.size (Node.leafset n) = 1))
    nodes

let test_overlay_forms () =
  let live = build_overlay 30 in
  Alcotest.(check int) "all active" 30 (Live.node_count live);
  Alcotest.(check int) "no join failures" 0 (Live.join_failures live)

let test_ring_consistency () =
  (* every node's immediate ring neighbours match the ground truth *)
  let live = build_overlay 25 in
  let nodes = Live.active_nodes live in
  let ids =
    List.sort Nodeid.compare (List.map (fun n -> (Node.me n).Peer.id) nodes)
  in
  let arr = Array.of_list ids in
  let n = Array.length arr in
  let succ_of id =
    let rec find i = if i >= n then arr.(0) else if Nodeid.compare arr.(i) id > 0 then arr.(i) else find (i + 1) in
    find 0
  in
  List.iter
    (fun node ->
      match Pastry.Leafset.right_neighbor (Node.leafset node) with
      | Some rn ->
          let expected = succ_of (Node.me node).Peer.id in
          Alcotest.(check string) "right neighbor is ring successor"
            (Nodeid.to_hex expected) (Nodeid.to_hex rn.Peer.id)
      | None -> Alcotest.fail "missing right neighbor")
    nodes

let test_routing_correctness () =
  let live = build_overlay 30 in
  let nodes = Array.of_list (Live.active_nodes live) in
  let rng = Rng.create 7 in
  for _ = 1 to 200 do
    let src = nodes.(Rng.int rng (Array.length nodes)) in
    ignore (Live.lookup live src ~key:(Nodeid.random rng))
  done;
  let horizon = Simkit.Engine.now (Live.engine live) +. 30.0 in
  Live.run_until live horizon;
  let s = Collector.summary ~until:horizon ~drain:0.0 (Live.collector live) in
  Alcotest.(check int) "no losses" 0 s.Collector.lookups_lost;
  Alcotest.(check int) "no incorrect deliveries" 0 s.Collector.incorrect_deliveries;
  Alcotest.(check int) "all delivered" 200 s.Collector.lookups_delivered

let test_lookup_to_own_key () =
  let live = build_overlay 10 in
  let nodes = Live.active_nodes live in
  let node = List.hd nodes in
  ignore (Live.lookup live node ~key:(Node.me node).Peer.id);
  let horizon = Simkit.Engine.now (Live.engine live) +. 10.0 in
  Live.run_until live horizon;
  let s = Collector.summary ~until:horizon ~drain:0.0 (Live.collector live) in
  Alcotest.(check int) "self key delivered locally" 0 s.Collector.lookups_lost;
  Alcotest.(check int) "correct" 0 s.Collector.incorrect_deliveries

let test_crash_recovery () =
  let live = build_overlay 24 in
  let nodes = Array.of_list (Live.active_nodes live) in
  (* kill 5 nodes at once *)
  for i = 0 to 4 do
    Live.crash_node live nodes.(i)
  done;
  (* allow detection (Tls + To + probes) plus repair *)
  let horizon = Simkit.Engine.now (Live.engine live) +. 120.0 in
  Live.run_until live horizon;
  Alcotest.(check int) "survivors active" 19 (Live.node_count live);
  (* survivors' leaf sets must not contain dead nodes *)
  let dead = Array.sub nodes 0 5 in
  List.iter
    (fun node ->
      Array.iter
        (fun d ->
          Alcotest.(check bool) "dead node evicted" false
            (Pastry.Leafset.mem (Node.leafset node) (Node.me d).Peer.id))
        dead)
    (Live.active_nodes live);
  (* and routing still works *)
  let rng = Rng.create 9 in
  let survivors = Array.of_list (Live.active_nodes live) in
  for _ = 1 to 100 do
    let src = survivors.(Rng.int rng (Array.length survivors)) in
    ignore (Live.lookup live src ~key:(Nodeid.random rng))
  done;
  let horizon2 = Simkit.Engine.now (Live.engine live) +. 30.0 in
  Live.run_until live horizon2;
  let s = Collector.summary ~until:horizon2 ~drain:0.0 (Live.collector live) in
  Alcotest.(check int) "no incorrect deliveries" 0 s.Collector.incorrect_deliveries;
  Alcotest.(check int) "no losses" 0 s.Collector.lookups_lost

let test_mass_failure_recovery () =
  (* half the overlay dies at once: generalized leaf-set repair must
     rebuild the ring from routing-table state *)
  let live = build_overlay 32 in
  let nodes = Array.of_list (Live.active_nodes live) in
  Array.sort (fun a b -> Nodeid.compare (Node.me a).Peer.id (Node.me b).Peer.id) nodes;
  (* kill a contiguous arc: the harshest case for leaf sets *)
  for i = 0 to 15 do
    Live.crash_node live nodes.(i)
  done;
  let horizon = Simkit.Engine.now (Live.engine live) +. 300.0 in
  Live.run_until live horizon;
  let survivors = Live.active_nodes live in
  Alcotest.(check int) "16 survivors" 16 (List.length survivors);
  (* ring reconverged *)
  let ids = List.sort Nodeid.compare (List.map (fun n -> (Node.me n).Peer.id) survivors) in
  let arr = Array.of_list ids in
  let n = Array.length arr in
  let succ_of id =
    let rec find i = if i >= n then arr.(0) else if Nodeid.compare arr.(i) id > 0 then arr.(i) else find (i + 1) in
    find 0
  in
  List.iter
    (fun node ->
      match Pastry.Leafset.right_neighbor (Node.leafset node) with
      | Some rn ->
          Alcotest.(check string) "ring repaired"
            (Nodeid.to_hex (succ_of (Node.me node).Peer.id))
            (Nodeid.to_hex rn.Peer.id)
      | None -> Alcotest.fail "missing right neighbor after repair")
    survivors

let test_concurrent_joins () =
  let live = Live.create (flat_config ()) ~n_endpoints:40 in
  (* 5 staggered seed nodes, then 20 joining in the same second *)
  for i = 0 to 4 do
    Live.spawn_at live ~time:(float_of_int i *. 5.0) ()
  done;
  for _ = 0 to 19 do
    Live.spawn_at live ~time:30.0 ()
  done;
  Live.run_until live 240.0;
  Alcotest.(check int) "all 25 active" 25 (Live.node_count live);
  Alcotest.(check int) "no join failures" 0 (Live.join_failures live)

let test_churn_consistency () =
  (* sustained churn with no link loss: the paper's core claim is zero
     incorrect deliveries *)
  let trace =
    Churn.Trace.poisson (Rng.create 5) ~n_avg:60 ~session_mean:900.0 ~duration:3600.0
  in
  let config =
    { (flat_config ~lookup_rate:0.05 ()) with Sim.warmup = 600.0; drain = 60.0 }
  in
  let r = Sim.run config ~trace in
  Alcotest.(check int) "zero incorrect deliveries" 0
    r.Sim.summary.Collector.incorrect_deliveries;
  Alcotest.(check bool) "low loss" true (r.Sim.summary.Collector.loss_rate < 0.01);
  Alcotest.(check bool) "lookups actually ran" true
    (r.Sim.summary.Collector.lookups_sent > 500)

let test_link_loss_reliability () =
  (* 3% link loss: per-hop acks keep end-to-end loss tiny *)
  let trace =
    Churn.Trace.poisson (Rng.create 6) ~n_avg:40 ~session_mean:1800.0 ~duration:1800.0
  in
  let config =
    { (flat_config ~lookup_rate:0.05 ~loss:0.03 ()) with Sim.warmup = 300.0 }
  in
  let r = Sim.run config ~trace in
  Alcotest.(check bool) "loss under 1%" true (r.Sim.summary.Collector.loss_rate < 0.01)

let test_acks_matter_under_loss () =
  (* same run with per-hop acks disabled loses far more *)
  let trace =
    Churn.Trace.poisson (Rng.create 6) ~n_avg:40 ~session_mean:1800.0 ~duration:1800.0
  in
  let base = { (flat_config ~lookup_rate:0.05 ~loss:0.03 ()) with Sim.warmup = 300.0 } in
  let with_acks = Sim.run base ~trace in
  let without =
    Sim.run
      { base with Sim.pastry = { base.Sim.pastry with Mspastry.Config.per_hop_acks = false } }
      ~trace
  in
  Alcotest.(check bool) "acks reduce loss" true
    (with_acks.Sim.summary.Collector.loss_rate
    < without.Sim.summary.Collector.loss_rate /. 2.0)

let test_self_tuning_converges () =
  let trace =
    Churn.Trace.poisson (Rng.create 8) ~n_avg:60 ~session_mean:1200.0 ~duration:2700.0
  in
  let config = { (flat_config ~lookup_rate:0.01 ()) with Sim.warmup = 600.0 } in
  let live = Live.create config ~n_endpoints:128 in
  let by_node = Hashtbl.create 64 in
  Array.iter
    (fun ev ->
      let time = ev.Churn.Trace.time in
      match ev.Churn.Trace.kind with
      | Churn.Trace.Join ->
          ignore
            (Simkit.Engine.schedule_at (Live.engine live) ~time (fun () ->
                 Hashtbl.replace by_node ev.Churn.Trace.node (Live.spawn live ())))
      | Churn.Trace.Leave ->
          ignore
            (Simkit.Engine.schedule_at (Live.engine live) ~time (fun () ->
                 match Hashtbl.find_opt by_node ev.Churn.Trace.node with
                 | Some node -> Live.crash_node live node
                 | None -> ())))
    (Churn.Trace.events trace);
  Live.run_until live 2700.0;
  let nodes = Live.active_nodes live in
  Alcotest.(check bool) "population alive" true (List.length nodes > 20);
  (* most nodes should have tuned Trt below the cap: true mu ~ 8e-4 *)
  let tuned =
    List.filter (fun n -> Node.current_trt n < Mspastry.Config.default.t_rt_max) nodes
  in
  Alcotest.(check bool) "majority tuned below cap" true
    (List.length tuned * 2 > List.length nodes);
  (* and their mu estimates are within an order of magnitude of truth *)
  let mus = List.filter_map (fun n ->
      let m = Node.estimated_mu n in
      if m > 0.0 then Some m else None) nodes in
  let mean_mu = List.fold_left ( +. ) 0.0 mus /. float_of_int (max 1 (List.length mus)) in
  let true_mu = 1.0 /. 1200.0 in
  Alcotest.(check bool) "mu within 10x" true
    (mean_mu > true_mu /. 10.0 && mean_mu < true_mu *. 10.0)

let test_suppression_reduces_probes () =
  let run rate =
    let trace =
      Churn.Trace.poisson (Rng.create 10) ~n_avg:40 ~session_mean:1800.0 ~duration:1800.0
    in
    let config = { (flat_config ~lookup_rate:rate ()) with Sim.warmup = 600.0 } in
    let r = Sim.run config ~trace in
    List.fold_left
      (fun acc (c, v) ->
        match c with Mspastry.Message.C_rt_probe -> acc +. v | _ -> acc)
      0.0 r.Sim.summary.Collector.control_by_class
  in
  let quiet = run 0.0 in
  let busy = run 0.5 in
  Alcotest.(check bool) "busy overlay sends fewer RT probes" true (busy < quiet)

let test_graceful_leaves () =
  (* all departures graceful: consistency holds and leaf-set repair needs
     fewer probe timeouts than the crash-only run *)
  let trace =
    Churn.Trace.poisson (Rng.create 5) ~n_avg:60 ~session_mean:900.0 ~duration:3600.0
  in
  let base = { (flat_config ~lookup_rate:0.05 ()) with Sim.warmup = 600.0 } in
  let crashes = Sim.run base ~trace in
  let graceful =
    Sim.run { base with Sim.graceful_leave_fraction = 1.0 } ~trace
  in
  Alcotest.(check int) "graceful: zero incorrect" 0
    graceful.Sim.summary.Collector.incorrect_deliveries;
  Alcotest.(check bool) "graceful: low loss" true
    (graceful.Sim.summary.Collector.loss_rate < 0.01);
  Alcotest.(check bool) "announcements do not raise control traffic" true
    (graceful.Sim.summary.Collector.control_per_node_per_s
    < crashes.Sim.summary.Collector.control_per_node_per_s *. 1.25)

let test_simulation_determinism () =
  let run () =
    let trace =
      Churn.Trace.poisson (Rng.create 11) ~n_avg:40 ~session_mean:1200.0 ~duration:1800.0
    in
    let config = { (flat_config ~lookup_rate:0.05 ()) with Sim.warmup = 300.0 } in
    Sim.run config ~trace
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same lookups" a.Sim.summary.Collector.lookups_sent
    b.Sim.summary.Collector.lookups_sent;
  Alcotest.(check (float 1e-12)) "same rdp" a.Sim.summary.Collector.rdp_mean
    b.Sim.summary.Collector.rdp_mean;
  Alcotest.(check (float 1e-12)) "same control" a.Sim.summary.Collector.control_msgs
    b.Sim.summary.Collector.control_msgs;
  Alcotest.(check int) "same joins" a.Sim.summary.Collector.joins
    b.Sim.summary.Collector.joins

let test_node_env_misuse () =
  (* config validation surfaces through Node.create *)
  let bad = { Mspastry.Config.default with Mspastry.Config.b = 0 } in
  let env =
    {
      Node.now = (fun () -> 0.0);
      send = (fun ~dst:_ _ -> ());
      schedule = (fun ~delay:_ _ -> Simkit.Engine.schedule (Simkit.Engine.create ()) ~delay:0.0 (fun () -> ()));
      cancel = (fun _ -> ());
      rng = Rng.create 1;
      deliver = (fun _ -> ());
      forward = (fun ~prev:_ _ -> Node.Continue);
      on_active = (fun () -> ());
      on_join_failed = (fun () -> ());
      on_lookup_drop = (fun _ -> ());
    }
  in
  Alcotest.check_raises "invalid config"
    (Invalid_argument "Node.create: b must be in 1..8 (got 0)") (fun () ->
      ignore (Node.create ~cfg:bad ~env ~id:(Nodeid.of_int 1) ~addr:0))

let suite =
  [
    ( "integration",
      [
        Alcotest.test_case "two-node overlay" `Quick test_two_nodes;
        Alcotest.test_case "30-node overlay forms" `Quick test_overlay_forms;
        Alcotest.test_case "ring consistency" `Quick test_ring_consistency;
        Alcotest.test_case "routing correctness" `Quick test_routing_correctness;
        Alcotest.test_case "lookup to own key" `Quick test_lookup_to_own_key;
        Alcotest.test_case "crash recovery" `Quick test_crash_recovery;
        Alcotest.test_case "mass failure recovery" `Slow test_mass_failure_recovery;
        Alcotest.test_case "concurrent joins" `Quick test_concurrent_joins;
        Alcotest.test_case "consistency under churn" `Slow test_churn_consistency;
        Alcotest.test_case "reliability under link loss" `Slow test_link_loss_reliability;
        Alcotest.test_case "acks matter under loss" `Slow test_acks_matter_under_loss;
        Alcotest.test_case "self-tuning converges" `Slow test_self_tuning_converges;
        Alcotest.test_case "suppression reduces probes" `Slow test_suppression_reduces_probes;
        Alcotest.test_case "graceful leaves" `Slow test_graceful_leaves;
        Alcotest.test_case "simulation determinism" `Slow test_simulation_determinism;
        Alcotest.test_case "config validation via node" `Quick test_node_env_misuse;
      ] );
  ]
