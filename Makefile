# Convenience wrappers around dune. `make help` lists targets.

.PHONY: all build test bench bench-json tracedump fmt clean help

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe -- micro

bench-json:
	dune exec bench/main.exe -- micro --json

tracedump:
	dune exec bin/tracedump.exe -- --nodes 100 --out trace.jsonl

fmt:
	@if [ -f .ocamlformat ]; then dune build @fmt --auto-promote; \
	else echo "no .ocamlformat in this repo; skipping"; fi

clean:
	dune clean

help:
	@echo "make build       build everything (dune build @all)"
	@echo "make test        run the full test suite"
	@echo "make bench       run the Bechamel micro-benchmarks"
	@echo "make bench-json  micro-benchmarks + BENCH_pr1.json baseline"
	@echo "make tracedump   100-node traced churn run + trace summary"
	@echo "make fmt         dune build @fmt (when .ocamlformat exists)"
	@echo "make clean       dune clean"
