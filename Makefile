# Convenience wrappers around dune. `make help` lists targets.

.PHONY: all build test bench bench-json bench-baseline bench-check profile \
	tracedump fmt clean help

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe -- micro

bench-json:
	dune exec bench/main.exe -- micro --json

bench-baseline:
	dune exec bench/main.exe -- micro --json -o BENCH_baseline.json

# The CI perf gate, runnable locally: fresh micro run vs the committed
# baseline, failing on any kernel >25% slower.
bench-check:
	dune exec bench/main.exe -- micro --json -o BENCH_new.json
	dune exec bin/statsdump.exe -- --bench BENCH_baseline.json BENCH_new.json

# Profiled end-to-end run: prints the phase breakdown and writes a run
# manifest (inspect with `dune exec bin/statsdump.exe -- run.json`).
profile:
	dune exec bin/experiments.exe -- fig6 --size quick --profile --manifest run.json

tracedump:
	dune exec bin/tracedump.exe -- --nodes 100 --out trace.jsonl

fmt:
	@if [ -f .ocamlformat ]; then dune build @fmt --auto-promote; \
	else echo "no .ocamlformat in this repo; skipping"; fi

clean:
	dune clean

help:
	@echo "make build          build everything (dune build @all)"
	@echo "make test           run the full test suite"
	@echo "make bench          run the Bechamel micro-benchmarks"
	@echo "make bench-json     micro-benchmarks + BENCH.json report"
	@echo "make bench-baseline regenerate the committed perf baseline"
	@echo "make bench-check    micro-benchmarks gated against the baseline"
	@echo "make profile        profiled fig6 quick run + run.json manifest"
	@echo "make tracedump      100-node traced churn run + trace summary"
	@echo "make fmt            dune build @fmt (when .ocamlformat exists)"
	@echo "make clean          dune clean"
