(** Scribe-style application-level multicast on MSPastry.

    One of the applications the paper names as a consumer of consistent
    routing (§3.1): each group is identified by a key; the key's root is
    the rendezvous node. A member subscribes by routing a SUBSCRIBE
    message towards the group key — every node the message passes through
    records the previous hop as a child, so the union of subscribe paths
    forms the multicast tree. Multicasts travel to the root through the
    overlay and then down the tree over direct links.

    Subscriptions are soft state: members re-subscribe every
    [refresh_period] and each refresh re-traverses the whole route
    (re-stamping child links), so trees heal around crashed forwarders
    and follow root changes under churn; child links that miss three
    refreshes are not used for dissemination.

    The implementation drives the overlay through {!Harness.Sim.Live}'s
    common-API hooks ({!Harness.Sim.Live.on_forward} / [on_deliver]). *)

type t

val create : ?refresh_period:float -> live:Harness.Sim.Live.t -> unit -> t
(** [refresh_period] — soft-state resubscription interval (default
    60 s; trees survive forwarder crashes within roughly this window). *)

type group = Pastry.Nodeid.t

val group_of_name : string -> group
(** Hash a human-readable group name into the key space. *)

val subscribe : t -> member:Mspastry.Node.t -> group -> unit
(** Join the group and keep membership refreshed until [member] dies. *)

val multicast : t -> from:Mspastry.Node.t -> group -> int
(** Publish one message; returns its id for {!delivered}. *)

val members : t -> group -> int
(** Live subscribed members. *)

val delivered : t -> group -> int -> int
(** Number of distinct members that received the given multicast. *)

type stats = {
  subscribes_sent : int;
  multicasts_sent : int;
  deliveries : int;  (** member deliveries over all multicasts *)
  tree_messages : int;  (** direct (non-overlay) dissemination messages *)
}

val stats : t -> stats
