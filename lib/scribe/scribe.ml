module Live = Harness.Sim.Live
module Node = Mspastry.Node
module M = Mspastry.Message
module Nodeid = Pastry.Nodeid

type group = Nodeid.t

(* per-node, per-group tree state: children carry the time they last
   refreshed, so stale branches age out after missed refreshes *)
type tree_state = { children : (int, float) Hashtbl.t }

type kind = Subscribe of group | Publish of group * int

type t = {
  live : Live.t;
  refresh_period : float;
  (* (node addr, group) -> tree state *)
  trees : (int * group, tree_state) Hashtbl.t;
  (* members per group: addr -> node (for liveness + delivery) *)
  memberships : (group, (int, Node.t) Hashtbl.t) Hashtbl.t;
  pending : (int, kind) Hashtbl.t; (* app-level lookup seq -> purpose *)
  mutable next_seq : int; (* private range: never collides with Live's *)
  mutable next_msg : int;
  deliveries : (group * int, (int, unit) Hashtbl.t) Hashtbl.t;
  mutable subscribes_sent : int;
  mutable multicasts_sent : int;
  mutable tree_messages : int;
}

let group_of_name name = Nodeid.of_string (Digest.string ("scribe:" ^ name))

let tree_state t addr group =
  match Hashtbl.find_opt t.trees (addr, group) with
  | Some st -> st
  | None ->
      let st = { children = Hashtbl.create 4 } in
      Hashtbl.add t.trees (addr, group) st;
      st

let member_table t group =
  match Hashtbl.find_opt t.memberships group with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 16 in
      Hashtbl.add t.memberships group tbl;
      tbl

(* Subscribes travel the whole route to the rendezvous on every (soft
   state) refresh, re-recording the previous hop as a child at each node.
   Unlike classic Scribe we never absorb them early: re-traversal is what
   heals branches whose upstream forwarders died. *)
let on_forward t node ~prev (l : M.lookup) =
  (match Hashtbl.find_opt t.pending l.M.seq with
  | None | Some (Publish _) -> ()
  | Some (Subscribe group) -> (
      match prev with
      | Some p ->
          let addr = (Node.me node).Pastry.Peer.addr in
          let st = tree_state t addr group in
          Hashtbl.replace st.children p.Pastry.Peer.addr
            (Simkit.Engine.now (Live.engine t.live))
      | None -> ()));
  Node.Continue

(* deliver a multicast to a member and push it down the tree *)
let rec disseminate t ~group ~msg_id ~at_addr =
  let visited =
    match Hashtbl.find_opt t.deliveries (group, msg_id) with
    | Some v -> v
    | None ->
        let v = Hashtbl.create 16 in
        Hashtbl.add t.deliveries (group, msg_id) v;
        v
  in
  if not (Hashtbl.mem visited at_addr) then begin
    Hashtbl.replace visited at_addr ();
    (* no-op for pure forwarders: only members count as deliveries, but
       the visited set also breaks cycles for them *)
    (match Hashtbl.find_opt t.trees (at_addr, group) with
    | None -> ()
    | Some st ->
        let now = Simkit.Engine.now (Live.engine t.live) in
        Hashtbl.iter
          (fun child ts ->
            (* skip branches that stopped refreshing (dead subtrees) *)
            if now -. ts <= 3.0 *. t.refresh_period then begin
              t.tree_messages <- t.tree_messages + 1;
              let d = Netsim.Net.delay (Live.net t.live) at_addr child in
              ignore
                (Simkit.Engine.schedule (Live.engine t.live) ~delay:d (fun () ->
                     match Live.find_node t.live ~addr:child with
                     | Some n when Node.is_alive n ->
                         disseminate t ~group ~msg_id ~at_addr:child
                     | Some _ | None -> ()))
            end)
          st.children)
  end

let on_deliver t node (l : M.lookup) =
  match Hashtbl.find_opt t.pending l.M.seq with
  | None -> ()
  | Some (Subscribe _) -> () (* the rendezvous node needs no extra state *)
  | Some (Publish (group, msg_id)) ->
      Hashtbl.remove t.pending l.M.seq;
      disseminate t ~group ~msg_id ~at_addr:(Node.me node).Pastry.Peer.addr

let create ?(refresh_period = 60.0) ~live () =
  let t =
    {
      live;
      refresh_period;
      trees = Hashtbl.create 64;
      memberships = Hashtbl.create 8;
      pending = Hashtbl.create 64;
      next_seq = 1_000_000_000;
      next_msg = 0;
      deliveries = Hashtbl.create 64;
      subscribes_sent = 0;
      multicasts_sent = 0;
      tree_messages = 0;
    }
  in
  Live.on_forward live (fun node ~prev l -> on_forward t node ~prev l);
  Live.on_deliver live (fun node l -> on_deliver t node l);
  t

let send_subscribe t member group =
  if Node.is_alive member && Node.is_active member then begin
    t.subscribes_sent <- t.subscribes_sent + 1;
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Hashtbl.replace t.pending seq (Subscribe group);
    Live.send_lookup t.live member ~key:group ~seq
  end

let subscribe t ~member group =
  let addr = (Node.me member).Pastry.Peer.addr in
  let tbl = member_table t group in
  let already = Hashtbl.mem tbl addr in
  Hashtbl.replace tbl addr member;
  if already then () (* refresh chain already running *)
  else begin
  send_subscribe t member group;
  (* soft state: refresh while the member lives *)
  let rec refresh () =
    if Node.is_alive member then begin
      send_subscribe t member group;
      ignore
        (Simkit.Engine.schedule (Live.engine t.live)
           ~delay:t.refresh_period (fun () -> refresh ()))
    end
  in
  ignore
    (Simkit.Engine.schedule (Live.engine t.live) ~delay:t.refresh_period (fun () ->
         refresh ()))
  end

let multicast t ~from group =
  t.multicasts_sent <- t.multicasts_sent + 1;
  let msg_id = t.next_msg in
  t.next_msg <- msg_id + 1;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Hashtbl.replace t.pending seq (Publish (group, msg_id));
  Live.send_lookup t.live from ~key:group ~seq;
  msg_id

let members t group =
  match Hashtbl.find_opt t.memberships group with
  | None -> 0
  | Some tbl -> Hashtbl.fold (fun _ n acc -> if Node.is_alive n then acc + 1 else acc) tbl 0

let delivered t group msg_id =
  match Hashtbl.find_opt t.deliveries (group, msg_id) with
  | None -> 0
  | Some visited -> (
      match Hashtbl.find_opt t.memberships group with
      | None -> 0
      | Some tbl ->
          Hashtbl.fold
            (fun addr _ acc -> if Hashtbl.mem visited addr then acc + 1 else acc)
            tbl 0)

type stats = {
  subscribes_sent : int;
  multicasts_sent : int;
  deliveries : int;
  tree_messages : int;
}

let stats t =
  let deliveries =
    Hashtbl.fold
      (fun (group, _) visited acc ->
        match Hashtbl.find_opt t.memberships group with
        | None -> acc
        | Some tbl ->
            acc
            + Hashtbl.fold
                (fun addr _ a -> if Hashtbl.mem visited addr then a + 1 else a)
                tbl 0)
      t.deliveries 0
  in
  {
    subscribes_sent = t.subscribes_sent;
    multicasts_sent = t.multicasts_sent;
    deliveries;
    tree_messages = t.tree_messages;
  }
