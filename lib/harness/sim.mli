(** Whole-system simulation runner.

    Replays a churn trace against a network topology: every trace arrival
    creates an MSPastry node with a fresh random identifier that joins via
    a random live node; departures are crashes (as in the paper's fault
    injection). Active nodes issue lookups to uniformly random keys as a
    Poisson process. All metrics flow into a {!Overlay_metrics.Collector}.*)

type topology_kind =
  | Gatech  (** scaled transit-stub (~380 routers) *)
  | Gatech_full  (** the paper's 5050-router dimensions *)
  | Mercator
  | Corpnet
  | Flat of float  (** constant one-way delay — fast, for tests *)

val topology_name : topology_kind -> string

val make_topology :
  topology_kind -> rng:Repro_util.Rng.t -> n_endpoints:int -> Topology.t

(** Where structured trace events go (see {!Repro_obs}): nowhere, a
    bounded in-memory ring, or a JSONL file. *)
type tracing =
  | Trace_off
  | Trace_memory of int  (** ring-buffer capacity (events) *)
  | Trace_jsonl of string  (** output path, truncated on open *)

type config = {
  pastry : Mspastry.Config.t;
  topology : topology_kind;
  loss_rate : float;  (** uniform network message loss *)
  lookup_rate : float;  (** lookups per second per active node *)
  graceful_leave_fraction : float;
      (** fraction of trace departures executed as graceful GOODBYEs
          rather than crashes (the paper's fault injection uses 0) *)
  seed : int;
  warmup : float;  (** measurement window starts here *)
  window : float;  (** metrics averaging window *)
  max_endpoints : int;  (** cap on distinct network attachment points *)
  drain : float;  (** extra simulated time after the trace ends *)
  tracing : tracing;  (** structured event tracing (default off) *)
  trace_timers : bool;
      (** also trace engine timer fire/cancel events — very high volume,
          off by default even when [tracing] is on *)
  fault_schedule : Repro_faults.Schedule.t;
      (** timed fault injections (mass crashes, partitions, loss-model
          swaps) applied on top of the churn trace; default empty. Each
          event is executed at its timestamp via {!Live.inject}. *)
  capacity : Netsim.Net.capacity option;
      (** per-node service capacity (bounded inbound queue); default
          [None] — infinite capacity, bit-identical to the pre-capacity
          simulator. See {!Netsim.Net.set_capacity}. *)
  prioritize_control : bool;
      (** serve control traffic ahead of lookup forwarding in the
          capacity model's queues (default [true]; irrelevant while
          [capacity] is [None]) *)
  exact_percentiles : bool;
      (** retain every queueing-delay sample in the collector for exact
          windowed percentiles (O(samples) memory; see
          {!Overlay_metrics.Collector.create}). Default [false]:
          percentiles come from the bounded histograms only. *)
  manifest_out : string option;
      (** write a run manifest (see {!Manifest}, DESIGN.md §9) to this
          path when the run is {!Live.close}d; default [None] *)
}

val default_config : config

type result = {
  collector : Overlay_metrics.Collector.t;
  summary : Overlay_metrics.Collector.summary;  (** warmup → trace end *)
  duration : float;
  join_failures : int;  (** nodes whose join never completed *)
  nodes_created : int;
  net_stats : Netsim.Net.stats;  (** whole-run network counters *)
}

val run : config -> trace:Churn.Trace.t -> result
(** Replay the trace to its end plus [config.drain], then close the
    trace sink (flushing a JSONL file if one was configured). *)

(** Access to live simulation internals, for integration tests and
    applications (e.g. Squirrel) that need to drive the overlay directly. *)
module Live : sig
  type t

  val create : config -> n_endpoints:int -> t
  val engine : t -> Simkit.Engine.t
  val net : t -> Mspastry.Message.t Netsim.Net.t
  val collector : t -> Overlay_metrics.Collector.t
  val oracle : t -> Oracle.t
  val topology : t -> Topology.t

  val spawn : t -> unit -> Mspastry.Node.t
  (** Create a node (first call bootstraps the overlay; later calls join
      via a random active node) and register it with the network. Nodes
      attach to topology endpoints round-robin (address mod endpoints);
      control placement by choosing spawn order. *)

  val spawn_at : t -> time:float -> unit -> unit
  (** Schedule a {!spawn} at an absolute simulation time. *)

  (** [crash_node ?graceful t node] — [graceful:true] sends GOODBYE to
      the leaf set before halting. *)
  val crash_node : ?graceful:bool -> t -> Mspastry.Node.t -> unit

  val crash_fraction : ?graceful:bool -> t -> float -> int
  (** [crash_fraction t f] crashes fraction [f] (in [\[0, 1\]]) of the
      currently-active nodes at the same instant — the paper's "massive
      failure" scenario — picking victims uniformly at random from a
      dedicated RNG stream. Returns the number crashed (at least one when
      [f > 0] and anyone is active). *)

  val inject : t -> Repro_faults.Schedule.event -> unit
  (** Execute one fault-schedule event {e now}: crash a fraction of
      nodes, swap the base network loss model, overlay a transient fault
      (partitions heal themselves after their duration), start an
      overload episode (a [Lookup_storm] adds an extra Poisson lookup
      process per active node for its duration; a [Flash_crowd] spawns
      its joiners spread over its interval), or heal everything. Records
      the episode with the collector (except [Heal]) and emits a [Fault]
      trace event. [config.fault_schedule] events are applied through
      this at their timestamps. *)

  val ring_audit : t -> Oracle.ring_audit
  (** Audit routing consistency now: compare every active node's leaf-set
      ring neighbours against the oracle's ground-truth ring
      ({!Oracle.ring_audit}). [agreement = 1.0] means every key has
      exactly one root — call it at the end of (or during) an experiment
      to check the overlay's consistency invariant. *)

  val active_nodes : t -> Mspastry.Node.t list
  val node_count : t -> int
  val lookup : t -> Mspastry.Node.t -> key:Pastry.Nodeid.t -> int
  (** Issue a lookup, returning its sequence number. Delivery can happen
      synchronously (when the issuing node is the key's root) — callers
      that must install per-sequence state before delivery should use
      {!alloc_lookup} + {!send_lookup} instead. *)

  val alloc_lookup : t -> int
  (** Reserve a sequence number and record the lookup as sent. *)

  val send_lookup : t -> Mspastry.Node.t -> key:Pastry.Nodeid.t -> seq:int -> unit

  val on_deliver : t -> (Mspastry.Node.t -> Mspastry.Message.lookup -> unit) -> unit
  (** Extra application-level delivery hook (Squirrel uses this). *)

  val on_forward :
    t ->
    (Mspastry.Node.t ->
    prev:Pastry.Peer.t option ->
    Mspastry.Message.lookup ->
    Mspastry.Node.forward_decision) ->
    unit
  (** Common-API forward upcall: called at every node a lookup passes
      through, with the previous hop. Returning [Absorb] from any hook
      consumes the message at that node (Scribe builds its multicast
      trees this way). *)

  val find_node : t -> addr:int -> Mspastry.Node.t option
  (** The live node registered at an address, if any. *)

  val run_until : t -> float -> unit
  val join_failures : t -> int
  val nodes_created : t -> int

  val close : t -> unit
  (** Flush and close the trace sink (a JSONL file would otherwise lose
      buffered events), writing the run manifest first if
      [config.manifest_out] is set. {!run} calls this; drivers using
      [run_until] directly should call it once they are done with the
      session. *)

  val manifest : ?label:string -> t -> Repro_obs.Json.t
  (** Assemble the run manifest now (schema in DESIGN.md §9): config +
      seed + git describe, registry counters, histogram summaries, the
      global profile breakdown and engine statistics. [label] (default
      ["run"]) names the run for {!Manifest.build}. *)

  val write_manifest : ?label:string -> t -> path:string -> unit

  val trace : t -> Repro_obs.Trace.t
  (** The structured event trace built from [config.tracing] (the
      disabled trace when [Trace_off]). With [Trace_memory] the events
      are available via {!Repro_obs.Trace.events}; with [Trace_jsonl]
      call {!close} when done — {!run} does this automatically,
      [run_until] does not. *)

  val registry : t -> Repro_obs.Registry.t
  (** A gauge registry over the live engine, network and overlay:
      [engine.*] (events scheduled / fired / cancelled / pending, heap
      high-water mark, events per simulated second), [net.*] (sent,
      delivered, drops by cause, per-class [net.sent.<class>]), and
      [overlay.*] (active nodes, join failures). Values are read live at
      {!Repro_obs.Registry.dump} time. *)
end

(** Fault models and schedules (re-exported from {!Repro_faults} for
    convenience when building a [config]). *)
module Netfault = Repro_faults.Netfault

module Schedule = Repro_faults.Schedule

val live_of_trace : config -> trace:Churn.Trace.t -> Live.t
(** A {!Live} session with the trace's joins and crashes pre-scheduled
    (lookups stop at the trace's end); the caller drives the clock. *)
