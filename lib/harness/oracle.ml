module Id_map = Map.Make (Pastry.Nodeid)

type t = { mutable members : int Id_map.t }

let create () = { members = Id_map.empty }
let add t id addr = t.members <- Id_map.add id addr t.members
let remove t id = t.members <- Id_map.remove id t.members
let size t = Id_map.cardinal t.members
let mem t id = Id_map.mem id t.members

type ring_audit = {
  audited : int;
  left_ok : int;
  right_ok : int;
  agreement : float;
}

let ring_audit t ~neighbors =
  let n = Id_map.cardinal t.members in
  (* ground-truth ring neighbours with wrap; a singleton ring has none *)
  let pred id =
    if n <= 1 then None
    else
      match
        Id_map.find_last_opt (fun i -> Pastry.Nodeid.compare i id < 0) t.members
      with
      | Some (i, _) -> Some i
      | None -> Some (fst (Id_map.max_binding t.members))
  in
  let succ id =
    if n <= 1 then None
    else
      match
        Id_map.find_first_opt (fun i -> Pastry.Nodeid.compare i id > 0) t.members
      with
      | Some (i, _) -> Some i
      | None -> Some (fst (Id_map.min_binding t.members))
  in
  let eq a b =
    match (a, b) with
    | None, None -> true
    | Some x, Some y -> Pastry.Nodeid.equal x y
    | Some _, None | None, Some _ -> false
  in
  let audited = ref 0 and left_ok = ref 0 and right_ok = ref 0 in
  Id_map.iter
    (fun id addr ->
      match neighbors addr with
      | None -> ()
      | Some (l, r) ->
          incr audited;
          if eq l (pred id) then incr left_ok;
          if eq r (succ id) then incr right_ok)
    t.members;
  {
    audited = !audited;
    left_ok = !left_ok;
    right_ok = !right_ok;
    agreement =
      (if !audited = 0 then 1.0
       else float_of_int (!left_ok + !right_ok) /. float_of_int (2 * !audited));
  }

let closest t key =
  if Id_map.is_empty t.members then None
  else begin
    (* candidates: ring successor and predecessor of the key (with wrap) *)
    let succ =
      match Id_map.find_first_opt (fun id -> Pastry.Nodeid.compare id key >= 0) t.members with
      | Some b -> Some b
      | None -> Some (Id_map.min_binding t.members)
    in
    let pred =
      match Id_map.find_last_opt (fun id -> Pastry.Nodeid.compare id key < 0) t.members with
      | Some b -> Some b
      | None -> Some (Id_map.max_binding t.members)
    in
    match (succ, pred) with
    | Some (si, sa), Some (pi, _) when Pastry.Nodeid.equal si pi -> Some (si, sa)
    | Some (si, sa), Some (pi, pa) ->
        if Pastry.Nodeid.closer ~key si pi then Some (si, sa) else Some (pi, pa)
    | Some b, None | None, Some b -> Some b
    | None, None -> None
  end
