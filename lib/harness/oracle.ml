module Id_map = Map.Make (Pastry.Nodeid)

type t = { mutable members : int Id_map.t }

let create () = { members = Id_map.empty }
let add t id addr = t.members <- Id_map.add id addr t.members
let remove t id = t.members <- Id_map.remove id t.members
let size t = Id_map.cardinal t.members
let mem t id = Id_map.mem id t.members

let closest t key =
  if Id_map.is_empty t.members then None
  else begin
    (* candidates: ring successor and predecessor of the key (with wrap) *)
    let succ =
      match Id_map.find_first_opt (fun id -> Pastry.Nodeid.compare id key >= 0) t.members with
      | Some b -> Some b
      | None -> Some (Id_map.min_binding t.members)
    in
    let pred =
      match Id_map.find_last_opt (fun id -> Pastry.Nodeid.compare id key < 0) t.members with
      | Some b -> Some b
      | None -> Some (Id_map.max_binding t.members)
    in
    match (succ, pred) with
    | Some (si, sa), Some (pi, _) when Pastry.Nodeid.equal si pi -> Some (si, sa)
    | Some (si, sa), Some (pi, pa) ->
        if Pastry.Nodeid.closer ~key si pi then Some (si, sa) else Some (pi, pa)
    | Some b, None | None, Some b -> Some b
    | None, None -> None
  end
