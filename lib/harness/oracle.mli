(** Ground-truth key-ownership oracle.

    The harness keeps the set of currently-active node identifiers here;
    a delivery is {e correct} iff the delivering node is the active node
    ring-closest to the key at delivery time (§5.2), under the same
    tie-break as the protocol ({!Pastry.Nodeid.closer}). *)

type t

val create : unit -> t
val add : t -> Pastry.Nodeid.t -> int -> unit
val remove : t -> Pastry.Nodeid.t -> unit
val size : t -> int
val mem : t -> Pastry.Nodeid.t -> bool

val closest : t -> Pastry.Nodeid.t -> (Pastry.Nodeid.t * int) option
(** The active (id, addr) owning the key; [None] when the set is empty. *)

(** Result of a {!ring_audit}: how many active nodes were audited and how
    many of their claimed ring neighbours match the oracle's ground
    truth. [agreement] is [(left_ok + right_ok) / (2 · audited)] ([1.0]
    when nothing was auditable). *)
type ring_audit = {
  audited : int;
  left_ok : int;
  right_ok : int;
  agreement : float;
}

val ring_audit :
  t ->
  neighbors:(int -> (Pastry.Nodeid.t option * Pastry.Nodeid.t option) option) ->
  ring_audit
(** [ring_audit t ~neighbors] compares every member's claimed (left,
    right) ring neighbours — as reported by [neighbors addr], typically a
    node's leaf set; return [None] to skip a node — against the oracle's
    sorted ring (with wrap-around; a singleton ring expects [None] on
    both sides). The paper's routing-consistency property holds when
    [agreement = 1.0]: each active node agrees with ground truth about
    its immediate ring neighbours, so every key has exactly one root. *)
