(** Ground-truth key-ownership oracle.

    The harness keeps the set of currently-active node identifiers here;
    a delivery is {e correct} iff the delivering node is the active node
    ring-closest to the key at delivery time (§5.2), under the same
    tie-break as the protocol ({!Pastry.Nodeid.closer}). *)

type t

val create : unit -> t
val add : t -> Pastry.Nodeid.t -> int -> unit
val remove : t -> Pastry.Nodeid.t -> unit
val size : t -> int
val mem : t -> Pastry.Nodeid.t -> bool

val closest : t -> Pastry.Nodeid.t -> (Pastry.Nodeid.t * int) option
(** The active (id, addr) owning the key; [None] when the set is empty. *)
