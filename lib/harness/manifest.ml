module Json = Repro_obs.Json

let schema = "mspastry-run-manifest/1"

let git_describe () =
  try
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then "unknown" else line
  with _ -> "unknown"

let build ~label ~seed ~config ~counters ~histograms ~profile ~engine =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("label", Json.String label);
      ("git", Json.String (git_describe ()));
      ("seed", Json.Int seed);
      ("config", config);
      ("counters", counters);
      ("histograms", Json.Obj histograms);
      ("profile", profile);
      ("engine", engine);
    ]

let write ~path j =
  let oc = open_out path in
  output_string oc (Json.to_string j);
  output_char oc '\n';
  close_out oc
