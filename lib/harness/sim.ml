module Rng = Repro_util.Rng
module Node = Mspastry.Node
module M = Mspastry.Message
module Collector = Overlay_metrics.Collector
module Obs = Repro_obs
module Netfault = Repro_faults.Netfault
module Nodefault = Repro_faults.Nodefault
module Schedule = Repro_faults.Schedule

type topology_kind = Gatech | Gatech_full | Mercator | Corpnet | Flat of float

let topology_name = function
  | Gatech -> "gatech"
  | Gatech_full -> "gatech-full"
  | Mercator -> "mercator"
  | Corpnet -> "corpnet"
  | Flat _ -> "flat"

let make_topology kind ~rng ~n_endpoints =
  match kind with
  | Gatech ->
      Topology.transit_stub ~transit_domains:6 ~routers_per_transit:3
        ~stubs_per_transit_router:4 ~routers_per_stub:5 ~rng ~n_endpoints ()
  | Gatech_full -> Topology.transit_stub ~rng ~n_endpoints ()
  | Mercator -> Topology.as_graph ~rng ~n_endpoints ()
  | Corpnet -> Topology.corpnet ~rng ~n_endpoints ()
  | Flat d -> Topology.constant ~n_endpoints ~delay:d

type tracing = Trace_off | Trace_memory of int | Trace_jsonl of string

type config = {
  pastry : Mspastry.Config.t;
  topology : topology_kind;
  loss_rate : float;
  lookup_rate : float;
  graceful_leave_fraction : float;
  seed : int;
  warmup : float;
  window : float;
  max_endpoints : int;
  drain : float;
  tracing : tracing;
  trace_timers : bool;
  fault_schedule : Schedule.t;
  capacity : Netsim.Net.capacity option;
  prioritize_control : bool;
  exact_percentiles : bool;
  manifest_out : string option;
}

let default_config =
  {
    pastry = Mspastry.Config.default;
    topology = Gatech;
    loss_rate = 0.0;
    lookup_rate = 0.01;
    graceful_leave_fraction = 0.0;
    seed = 42;
    warmup = 1800.0;
    window = 600.0;
    max_endpoints = 4096;
    drain = 60.0;
    tracing = Trace_off;
    trace_timers = false;
    fault_schedule = Schedule.empty;
    capacity = None;
    prioritize_control = true;
    exact_percentiles = false;
    manifest_out = None;
  }

type result = {
  collector : Collector.t;
  summary : Collector.summary;
  duration : float;
  join_failures : int;
  nodes_created : int;
  net_stats : Netsim.Net.stats;
}

(* set of active node addresses with O(1) random pick *)
module Active_set = struct
  type t = { mutable addrs : int array; mutable n : int; index : (int, int) Hashtbl.t }

  let create () = { addrs = Array.make 64 0; n = 0; index = Hashtbl.create 64 }

  let add t addr =
    if not (Hashtbl.mem t.index addr) then begin
      if t.n = Array.length t.addrs then begin
        let bigger = Array.make (2 * t.n) 0 in
        Array.blit t.addrs 0 bigger 0 t.n;
        t.addrs <- bigger
      end;
      t.addrs.(t.n) <- addr;
      Hashtbl.replace t.index addr t.n;
      t.n <- t.n + 1
    end

  let remove t addr =
    match Hashtbl.find_opt t.index addr with
    | None -> ()
    | Some i ->
        let last = t.addrs.(t.n - 1) in
        t.addrs.(i) <- last;
        Hashtbl.replace t.index last i;
        Hashtbl.remove t.index addr;
        t.n <- t.n - 1

    let size t = t.n

    let pick t rng = if t.n = 0 then None else Some t.addrs.(Rng.int rng t.n)
end

module Live = struct
  type t = {
    config : config;
    engine : Simkit.Engine.t;
    topology : Topology.t;
    net : M.t Netsim.Net.t;
    collector : Collector.t;
    oracle : Oracle.t;
    rng_ids : Rng.t;
    rng_workload : Rng.t;
    rng_net : Rng.t;
    rng_faults : Rng.t;
    nodes : (int, Node.t) Hashtbl.t; (* addr -> node *)
    active : Active_set.t;
    trace : Obs.Trace.t;
    n_endpoints : int;
    mutable next_addr : int;
    mutable next_seq : int;
    mutable join_failures : int;
    mutable lookup_end : float;
    mutable base_fault : Netfault.t option;
    mutable overlays : (int * Netfault.t) list; (* overlay id -> fault *)
    mutable node_overlays : (int * Nodefault.t) list;
    mutable next_overlay : int;
    crash_times : (int, float) Hashtbl.t; (* addr -> non-graceful crash time *)
    detected : (int, unit) Hashtbl.t; (* crashed addrs already suspected once *)
    mutable deliver_hooks : (Node.t -> M.lookup -> unit) list;
    mutable forward_hooks :
      (Node.t -> prev:Pastry.Peer.t option -> M.lookup -> Node.forward_decision) list;
  }

  let engine t = t.engine
  let net t = t.net
  let collector t = t.collector
  let oracle t = t.oracle
  let topology t = t.topology
  let join_failures t = t.join_failures
  let nodes_created t = t.next_addr
  let node_count t = Active_set.size t.active
  let trace t = t.trace

  let registry t =
    let r = Obs.Registry.create () in
    let e () = Simkit.Engine.stats t.engine in
    Obs.Registry.gauge_i r "engine.events_scheduled" (fun () -> (e ()).Simkit.Engine.scheduled);
    Obs.Registry.gauge_i r "engine.events_fired" (fun () -> (e ()).Simkit.Engine.fired);
    Obs.Registry.gauge_i r "engine.events_cancelled" (fun () -> (e ()).Simkit.Engine.cancelled);
    Obs.Registry.gauge_i r "engine.events_pending" (fun () -> (e ()).Simkit.Engine.pending);
    Obs.Registry.gauge_i r "engine.heap_hwm" (fun () -> (e ()).Simkit.Engine.heap_hwm);
    Obs.Registry.gauge_f r "engine.events_per_sim_s" (fun () ->
        (e ()).Simkit.Engine.events_per_sim_s);
    Obs.Registry.gauge_i r "net.sent" (fun () -> Netsim.Net.n_sent t.net);
    Obs.Registry.gauge_i r "net.delivered" (fun () -> Netsim.Net.n_delivered t.net);
    Obs.Registry.gauge_i r "net.dropped_loss" (fun () ->
        (Netsim.Net.stats t.net).Netsim.Net.dropped_loss);
    Obs.Registry.gauge_i r "net.dropped_dead" (fun () ->
        (Netsim.Net.stats t.net).Netsim.Net.dropped_dead);
    Obs.Registry.gauge_i r "net.dropped_fault" (fun () ->
        (Netsim.Net.stats t.net).Netsim.Net.dropped_fault);
    Obs.Registry.gauge_i r "net.dropped_node" (fun () ->
        (Netsim.Net.stats t.net).Netsim.Net.dropped_node);
    Obs.Registry.gauge_i r "net.dropped_congestion" (fun () ->
        (Netsim.Net.stats t.net).Netsim.Net.dropped_congestion);
    List.iter
      (fun cls ->
        let name = M.class_name cls in
        Obs.Registry.gauge_i r ("net.sent." ^ name) (fun () ->
            Netsim.Net.sent_in_class t.net name))
      M.all_classes;
    Obs.Registry.gauge_i r "overlay.active_nodes" (fun () -> node_count t);
    Obs.Registry.gauge_i r "overlay.join_failures" (fun () -> t.join_failures);
    r

  (* record construction only; the public [create] below also arms the
     fault schedule (it needs [inject], defined after the crash path) *)
  let create_raw config ~n_endpoints =
    let master = Rng.create config.seed in
    let rng_topo = Rng.split master in
    let rng_net = Rng.split master in
    let rng_ids = Rng.split master in
    let rng_workload = Rng.split master in
    let rng_faults = Rng.split master in
    let topology = make_topology config.topology ~rng:rng_topo ~n_endpoints in
    let trace =
      match config.tracing with
      | Trace_off -> Obs.Trace.disabled
      | Trace_memory capacity -> Obs.Trace.create (Obs.Sink.memory ~capacity)
      | Trace_jsonl path -> Obs.Trace.create (Obs.Sink.jsonl_file path)
    in
    let engine =
      Simkit.Engine.create
        ~trace:(if config.trace_timers then trace else Obs.Trace.disabled)
        ()
    in
    let collector =
      Collector.create ~window:config.window ~exact:config.exact_percentiles ()
    in
    let endpoint_of addr = addr mod n_endpoints in
    let net =
      Netsim.Net.create ~loss_rate:config.loss_rate ~endpoint_of
        ~classify:(fun m -> M.class_name (M.classify m))
        ~seq_of:(fun m ->
          match m.M.payload with M.Lookup l -> Some l.M.seq | _ -> None)
        ?priority_of:
          (if config.prioritize_control then
             Some (fun m -> M.priority (M.classify m))
           else None)
        ?capacity:config.capacity ~trace ~engine ~topology ~rng:rng_net ()
    in
    Netsim.Net.on_send net (fun ~time ~src:_ ~dst:_ msg ->
        Collector.record_send collector ~time (M.classify msg));
    Netsim.Net.on_queue net (fun ~addr:_ ~cls:_ ~delay ->
        Collector.queue_delay collector ~time:(Simkit.Engine.now engine) delay);
    {
      config;
      engine;
      topology;
      net;
      collector;
      oracle = Oracle.create ();
      rng_ids;
      rng_workload;
      rng_net;
      rng_faults;
      nodes = Hashtbl.create 1024;
      active = Active_set.create ();
      trace;
      n_endpoints;
      next_addr = 0;
      next_seq = 0;
      join_failures = 0;
      lookup_end = infinity;
      base_fault = None;
      overlays = [];
      node_overlays = [];
      next_overlay = 0;
      crash_times = Hashtbl.create 64;
      detected = Hashtbl.create 64;
      deliver_hooks = [];
      forward_hooks = [];
    }

  let on_deliver t hook = t.deliver_hooks <- hook :: t.deliver_hooks
  let on_forward t hook = t.forward_hooks <- hook :: t.forward_hooks
  let find_node t ~addr = Hashtbl.find_opt t.nodes addr

  let endpoint_of t addr = addr mod t.n_endpoints

  let alloc_lookup t =
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    Collector.lookup_sent t.collector ~seq ~time:(Simkit.Engine.now t.engine);
    seq

  let send_lookup _t node ~key ~seq = Node.lookup node ~key ~seq

  let lookup t node ~key =
    let seq = alloc_lookup t in
    send_lookup t node ~key ~seq;
    seq

  let rec lookup_loop t node =
    if t.config.lookup_rate > 0.0 then begin
      let delay = Rng.exponential t.rng_workload ~mean:(1.0 /. t.config.lookup_rate) in
      ignore
        (Simkit.Engine.schedule t.engine ~delay (fun () ->
             if Node.is_alive node && Node.is_active node then begin
               if Simkit.Engine.now t.engine <= t.lookup_end then begin
                 let key = Pastry.Nodeid.random t.rng_workload in
                 ignore (lookup t node ~key)
               end;
               lookup_loop t node
             end))
    end

  let spawn t () =
    let addr = t.next_addr in
    t.next_addr <- addr + 1;
    let id = Pastry.Nodeid.random t.rng_ids in
    let spawn_time = Simkit.Engine.now t.engine in
    let node_ref = ref None in
    let env =
      {
        Node.now = (fun () -> Simkit.Engine.now t.engine);
        send = (fun ~dst msg -> Netsim.Net.send t.net ~src:addr ~dst msg);
        schedule = (fun ~delay fn -> Simkit.Engine.schedule t.engine ~delay fn);
        cancel = (fun ev -> Simkit.Engine.cancel t.engine ev);
        rng = Rng.split t.rng_ids;
        deliver =
          (fun l ->
            match !node_ref with
            | None -> ()
            | Some node ->
                let correct =
                  match Oracle.closest t.oracle l.M.key with
                  | Some (root_id, _) -> Pastry.Nodeid.equal root_id id
                  | None -> false
                in
                let direct =
                  Topology.delay t.topology
                    (endpoint_of t l.M.origin.Pastry.Peer.addr)
                    (endpoint_of t addr)
                in
                Collector.lookup_delivered t.collector ~seq:l.M.seq
                  ~time:(Simkit.Engine.now t.engine) ~correct ~direct_delay:direct
                  ~hops:l.M.hops;
                List.iter (fun hook -> hook node l) t.deliver_hooks);
        forward =
          (fun ~prev l ->
            match !node_ref with
            | None -> Node.Continue
            | Some node ->
                if
                  List.exists
                    (fun hook -> hook node ~prev l = Node.Absorb)
                    t.forward_hooks
                then Node.Absorb
                else Node.Continue);
        on_active =
          (fun () ->
            (match !node_ref with
            | Some node ->
                Oracle.add t.oracle id addr;
                Active_set.add t.active addr;
                Collector.set_population t.collector
                  ~time:(Simkit.Engine.now t.engine)
                  (Active_set.size t.active);
                Collector.join_recorded t.collector
                  ~latency:(Simkit.Engine.now t.engine -. spawn_time);
                lookup_loop t node
            | None -> ()));
        on_join_failed =
          (fun () ->
            t.join_failures <- t.join_failures + 1;
            Netsim.Net.unregister t.net ~addr);
        on_lookup_drop = (fun _ -> ());
      }
    in
    let node = Node.create ~cfg:t.config.pastry ~env ~id ~addr in
    Node.set_trace node t.trace;
    (* failure-detector accuracy against harness ground truth: a
       suspicion of a node still in [t.nodes] is false (slow, not dead);
       the first suspicion of a crashed node times the detector *)
    Node.set_on_suspicion node (fun ~target ->
        let time = Simkit.Engine.now t.engine in
        let target_alive = Hashtbl.mem t.nodes target in
        Collector.suspicion_recorded t.collector ~time ~target_alive;
        if not target_alive then
          match Hashtbl.find_opt t.crash_times target with
          | Some crashed_at when not (Hashtbl.mem t.detected target) ->
              Hashtbl.replace t.detected target ();
              Collector.crash_detected t.collector ~time
                ~latency:(time -. crashed_at)
          | Some _ | None -> ());
    (* local load signal for backpressure: the node's own inbound queue
       occupancy under the capacity model (always 0 when it is off) *)
    Node.set_load_signal node (fun () -> Netsim.Net.queue_occupancy t.net ~addr);
    node_ref := Some node;
    Hashtbl.replace t.nodes addr node;
    Netsim.Net.register t.net ~addr (fun ~src msg -> Node.handle node ~src msg);
    (match Active_set.pick t.active t.rng_ids with
    | Some seed_addr -> Node.join node ~bootstrap_addr:seed_addr
    | None ->
        if t.next_addr = 1 then begin
          Node.bootstrap node;
          (* bootstrap's on_active fired synchronously inside create?  No:
             bootstrap is called after node_ref is set, on_active fires
             through env above. *)
          ()
        end
        else begin
          (* no live node to join through yet: retry shortly *)
          let rec retry () =
            if Node.is_alive node && not (Node.is_active node) then begin
              match Active_set.pick t.active t.rng_ids with
              | Some seed_addr -> Node.join node ~bootstrap_addr:seed_addr
              | None -> ignore (Simkit.Engine.schedule t.engine ~delay:5.0 retry)
            end
          in
          ignore (Simkit.Engine.schedule t.engine ~delay:5.0 retry)
        end);
    node

  let spawn_at t ~time () =
    ignore (Simkit.Engine.schedule_at t.engine ~time (fun () -> ignore (spawn t ())))

  let crash_node ?(graceful = false) t node =
    let addr = (Node.me node).Pastry.Peer.addr in
    let id = (Node.me node).Pastry.Peer.id in
    let was_active = Node.is_active node in
    if graceful then Node.leave node
    else Hashtbl.replace t.crash_times addr (Simkit.Engine.now t.engine);
    Node.crash node;
    Netsim.Net.unregister t.net ~addr;
    Hashtbl.remove t.nodes addr;
    if was_active then begin
      Oracle.remove t.oracle id;
      Active_set.remove t.active addr;
      Collector.set_population t.collector
        ~time:(Simkit.Engine.now t.engine)
        (Active_set.size t.active)
    end

  let active_nodes t =
    Hashtbl.fold (fun _ n acc -> if Node.is_active n then n :: acc else acc) t.nodes []

  (* ---- fault injection ---- *)

  let emit_fault t ~label ~action =
    if Obs.Trace.enabled t.trace then
      Obs.Trace.emit t.trace
        {
          Obs.Event.time = Simkit.Engine.now t.engine;
          body = Obs.Event.Fault { label; action };
        }

  (* recompose the net's drop/delay decision from the base loss model and
     the transient overlays; no model at all restores the plain uniform
     loss_rate path *)
  let refresh_faults t =
    match (t.base_fault, t.overlays) with
    | None, [] -> Netsim.Net.set_fault_model t.net None
    | base, overlays ->
        let base =
          match base with
          | Some f -> f
          | None -> Netfault.uniform ~rate:(Netsim.Net.loss_rate t.net)
        in
        Netsim.Net.set_fault_model t.net
          (Some (Netfault.compose (base :: List.rev_map snd overlays)))

  let add_overlay t ~label ~duration fault =
    let id = t.next_overlay in
    t.next_overlay <- id + 1;
    t.overlays <- (id, fault) :: t.overlays;
    refresh_faults t;
    if Float.is_finite duration then
      ignore
        (Simkit.Engine.schedule t.engine ~delay:duration (fun () ->
             if List.mem_assoc id t.overlays then begin
               t.overlays <- List.remove_assoc id t.overlays;
               refresh_faults t;
               emit_fault t ~label ~action:"heal"
             end))

  (* a random [fraction] of the active nodes, from the dedicated fault
     RNG stream (at least one when the fraction is positive) *)
  let pick_victims t fraction =
    if fraction < 0.0 || fraction > 1.0 then invalid_arg "Live.pick_victims";
    let n = Active_set.size t.active in
    let k =
      if fraction = 0.0 || n = 0 then 0
      else max 1 (int_of_float (Float.round (fraction *. float_of_int n)))
    in
    if k = 0 then [||]
    else begin
      let addrs = Array.sub t.active.Active_set.addrs 0 n in
      Rng.shuffle t.rng_faults addrs;
      Array.sub addrs 0 k
    end

  let crash_fraction ?(graceful = false) t fraction =
    let victims = pick_victims t fraction in
    Array.iter
      (fun addr ->
        match Hashtbl.find_opt t.nodes addr with
        | Some node -> crash_node ~graceful t node
        | None -> ())
      victims;
    Array.length victims

  (* like the link-fault overlays: compose the active per-node models and
     install (or clear) the composite on the net *)
  let refresh_node_faults t =
    match t.node_overlays with
    | [] -> Netsim.Net.set_node_fault_model t.net None
    | overlays ->
        Netsim.Net.set_node_fault_model t.net
          (Some (Nodefault.compose (List.rev_map snd overlays)))

  let add_node_overlay t ~label ~duration fault =
    let id = t.next_overlay in
    t.next_overlay <- id + 1;
    t.node_overlays <- (id, fault) :: t.node_overlays;
    refresh_node_faults t;
    if Float.is_finite duration then
      ignore
        (Simkit.Engine.schedule t.engine ~delay:duration (fun () ->
             if List.mem_assoc id t.node_overlays then begin
               t.node_overlays <- List.remove_assoc id t.node_overlays;
               refresh_node_faults t;
               emit_fault t ~label ~action:"heal"
             end))

  let inject t (ev : Schedule.event) =
    let label = ev.Schedule.label in
    (match ev.Schedule.action with
    | Schedule.Heal -> ()
    | _ ->
        Collector.fault_injected t.collector ~time:(Simkit.Engine.now t.engine)
          ~label);
    (match ev.Schedule.action with
    | Schedule.Crash_fraction { fraction; graceful } ->
        ignore (crash_fraction ~graceful t fraction)
    | Schedule.Set_base f ->
        t.base_fault <- Some f;
        refresh_faults t
    | Schedule.Overlay { fault; duration } -> add_overlay t ~label ~duration fault
    | Schedule.Partition { groups; duration } ->
        let assignment =
          Array.init t.n_endpoints (fun _ -> Rng.int t.rng_faults groups)
        in
        add_overlay t ~label ~duration
          (Netfault.partition ~group_of:(fun e -> assignment.(e)))
    | Schedule.Node_fault { fraction; kind; duration } ->
        let addrs = Array.to_list (pick_victims t fraction) in
        let fault =
          match kind with
          | Schedule.Fail_slow { factor; extra } ->
              Nodefault.fail_slow ~factor ~extra ~addrs ()
          | Schedule.Fail_silent -> Nodefault.fail_silent ~addrs ()
          | Schedule.Flapping { period; duty } ->
              (* phase-lock to the injection instant: victims go down now *)
              Nodefault.flapping
                ~phase:(Simkit.Engine.now t.engine)
                ~period ~duty ~addrs ()
        in
        add_node_overlay t ~label ~duration fault
    | Schedule.Lookup_storm { rate; duration } ->
        (* additive overload: every currently-active node runs an extra
           Poisson lookup process at [rate] until the storm's end, on top
           of (and from the same RNG stream as) the configured workload *)
        let storm_end = Simkit.Engine.now t.engine +. duration in
        let storm node =
          let rec loop () =
            let delay = Rng.exponential t.rng_workload ~mean:(1.0 /. rate) in
            ignore
              (Simkit.Engine.schedule t.engine ~delay (fun () ->
                   if
                     Node.is_alive node && Node.is_active node
                     && Simkit.Engine.now t.engine <= storm_end
                   then begin
                     let key = Pastry.Nodeid.random t.rng_workload in
                     ignore (lookup t node ~key);
                     loop ()
                   end))
          in
          loop ()
        in
        List.iter storm (active_nodes t)
    | Schedule.Flash_crowd { joiners; over } ->
        let now = Simkit.Engine.now t.engine in
        let step =
          if joiners > 1 then over /. float_of_int (joiners - 1) else 0.0
        in
        for i = 0 to joiners - 1 do
          spawn_at t ~time:(now +. (float_of_int i *. step)) ()
        done
    | Schedule.Heal ->
        t.base_fault <- None;
        t.overlays <- [];
        t.node_overlays <- [];
        refresh_faults t;
        refresh_node_faults t);
    emit_fault t ~label ~action:(Schedule.describe ev.Schedule.action)

  let create config ~n_endpoints =
    let t = create_raw config ~n_endpoints in
    List.iter
      (fun (ev : Schedule.event) ->
        ignore
          (Simkit.Engine.schedule_at t.engine ~time:ev.Schedule.time (fun () ->
               inject t ev)))
      (Schedule.sorted config.fault_schedule);
    t

  let ring_audit t =
    Oracle.ring_audit t.oracle ~neighbors:(fun addr ->
        match Hashtbl.find_opt t.nodes addr with
        | None -> None
        | Some node ->
            if not (Node.is_active node) then None
            else
              let ls = Node.leafset node in
              let id_of p = p.Pastry.Peer.id in
              Some
                ( Option.map id_of (Pastry.Leafset.left_neighbor ls),
                  Option.map id_of (Pastry.Leafset.right_neighbor ls) ))

  let run_until t time = Simkit.Engine.run t.engine ~until:time

  (* ---- run manifest ---- *)

  let config_json (c : config) =
    let p = c.pastry in
    Obs.Json.Obj
      [
        ("topology", Obs.Json.String (topology_name c.topology));
        ("loss_rate", Obs.Json.Float c.loss_rate);
        ("lookup_rate", Obs.Json.Float c.lookup_rate);
        ("graceful_leave_fraction", Obs.Json.Float c.graceful_leave_fraction);
        ("warmup", Obs.Json.Float c.warmup);
        ("window", Obs.Json.Float c.window);
        ("max_endpoints", Obs.Json.Int c.max_endpoints);
        ("drain", Obs.Json.Float c.drain);
        ( "capacity",
          match c.capacity with
          | None -> Obs.Json.Null
          | Some cap ->
              Obs.Json.Obj
                [
                  ("service_rate", Obs.Json.Float cap.Netsim.Net.service_rate);
                  ("queue_limit", Obs.Json.Int cap.Netsim.Net.queue_limit);
                ] );
        ("prioritize_control", Obs.Json.Bool c.prioritize_control);
        ("exact_percentiles", Obs.Json.Bool c.exact_percentiles);
        ( "pastry",
          Obs.Json.Obj
            [
              ("b", Obs.Json.Int p.Mspastry.Config.b);
              ("l", Obs.Json.Int p.Mspastry.Config.l);
              ("t_ls", Obs.Json.Float p.Mspastry.Config.t_ls);
              ("t_out", Obs.Json.Float p.Mspastry.Config.t_out);
              ("probe_volley", Obs.Json.Int p.Mspastry.Config.probe_volley);
              ("per_hop_acks", Obs.Json.Bool p.Mspastry.Config.per_hop_acks);
              ("active_probing", Obs.Json.Bool p.Mspastry.Config.active_probing);
              ("self_tuning", Obs.Json.Bool p.Mspastry.Config.self_tuning);
              ("lr_target", Obs.Json.Float p.Mspastry.Config.lr_target);
              ("root_retries", Obs.Json.Int p.Mspastry.Config.root_retries);
              ( "e2e_lookup_retries",
                Obs.Json.Int p.Mspastry.Config.e2e_lookup_retries );
              ("backpressure", Obs.Json.Bool p.Mspastry.Config.backpressure);
              ( "overload_threshold",
                Obs.Json.Int p.Mspastry.Config.overload_threshold );
            ] );
      ]

  let manifest ?(label = "run") t =
    let es = Simkit.Engine.stats t.engine in
    let engine =
      Obs.Json.Obj
        [
          ("scheduled", Obs.Json.Int es.Simkit.Engine.scheduled);
          ("fired", Obs.Json.Int es.Simkit.Engine.fired);
          ("cancelled", Obs.Json.Int es.Simkit.Engine.cancelled);
          ("pending", Obs.Json.Int es.Simkit.Engine.pending);
          ("heap_hwm", Obs.Json.Int es.Simkit.Engine.heap_hwm);
          ("live_hwm", Obs.Json.Int es.Simkit.Engine.live_hwm);
          ("events_per_sim_s", Obs.Json.Float es.Simkit.Engine.events_per_sim_s);
        ]
    in
    Manifest.build ~label ~seed:t.config.seed ~config:(config_json t.config)
      ~counters:(Obs.Registry.to_json (registry t))
      ~histograms:
        [
          ( "lookup_delay_s",
            Obs.Hist.summary_json (Collector.lookup_delay_hist t.collector) );
          ("lookup_hops", Obs.Hist.summary_json (Collector.hop_hist t.collector));
          ( "queue_delay_s",
            Obs.Hist.summary_json (Collector.queue_delay_hist t.collector) );
        ]
      ~profile:(Obs.Profile.report_to_json (Obs.Profile.report ()))
      ~engine

  let write_manifest ?label t ~path = Manifest.write ~path (manifest ?label t)

  let close t =
    (match t.config.manifest_out with
    | Some path -> write_manifest t ~path
    | None -> ());
    Obs.Trace.close t.trace
end

let schedule_trace live trace =
  (* trace node index -> live node *)
  let by_trace_node = Hashtbl.create 1024 in
  Array.iter
    (fun ev ->
      let time = ev.Churn.Trace.time in
      match ev.Churn.Trace.kind with
      | Churn.Trace.Join ->
          ignore
            (Simkit.Engine.schedule_at live.Live.engine ~time (fun () ->
                 let node = Live.spawn live () in
                 Hashtbl.replace by_trace_node ev.Churn.Trace.node node))
      | Churn.Trace.Leave ->
          ignore
            (Simkit.Engine.schedule_at live.Live.engine ~time (fun () ->
                 match Hashtbl.find_opt by_trace_node ev.Churn.Trace.node with
                 | Some node ->
                     Hashtbl.remove by_trace_node ev.Churn.Trace.node;
                     let graceful =
                       live.Live.config.graceful_leave_fraction > 0.0
                       && Rng.float live.Live.rng_workload 1.0
                          < live.Live.config.graceful_leave_fraction
                     in
                     Live.crash_node ~graceful live node
                 | None -> ())))
    (Churn.Trace.events trace)

let ph_setup = Obs.Profile.phase "harness.setup"
let ph_summary = Obs.Profile.phase "metrics.summary"

let live_of_trace config ~trace =
  if !Obs.Profile.on then Obs.Profile.enter ph_setup;
  let n_endpoints =
    min config.max_endpoints (max 16 (Churn.Trace.max_concurrent trace * 2))
  in
  let live = Live.create config ~n_endpoints in
  live.Live.lookup_end <- Churn.Trace.duration trace;
  schedule_trace live trace;
  if !Obs.Profile.on then Obs.Profile.leave ph_setup;
  live

let run config ~trace =
  let live = live_of_trace config ~trace in
  let duration = Churn.Trace.duration trace in
  Live.run_until live (duration +. config.drain);
  Live.close live;
  if !Obs.Profile.on then Obs.Profile.enter ph_summary;
  let summary =
    Collector.summary ~since:config.warmup ~until:duration live.Live.collector
  in
  if !Obs.Profile.on then Obs.Profile.leave ph_summary;
  {
    collector = live.Live.collector;
    summary;
    duration;
    join_failures = live.Live.join_failures;
    nodes_created = live.Live.next_addr;
    net_stats = Netsim.Net.stats live.Live.net;
  }
