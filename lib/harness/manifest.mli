(** Run manifests: one self-describing JSON document per simulation run.

    A manifest ties a run's protocol results to the exact code and
    configuration that produced them — config + seed + [git describe],
    every registry counter, bounded-histogram summaries, the profiler's
    wall-clock breakdown, and engine peak statistics — so a results
    table can cite a [run.json] instead of an unreproducible console
    scrape. The schema is documented in DESIGN.md §9; [bin/statsdump]
    pretty-prints and diffs manifests.

    {!Sim.Live.manifest} assembles the document for a live run; this
    module holds the assembly glue and file I/O. *)

val schema : string
(** The manifest schema identifier written to every document
    (["mspastry-run-manifest/1"]); bump on incompatible layout change. *)

val git_describe : unit -> string
(** [git describe --always --dirty] of the working tree, or ["unknown"]
    when git (or the repo) is unavailable. *)

val build :
  label:string ->
  seed:int ->
  config:Repro_obs.Json.t ->
  counters:Repro_obs.Json.t ->
  histograms:(string * Repro_obs.Json.t) list ->
  profile:Repro_obs.Json.t ->
  engine:Repro_obs.Json.t ->
  Repro_obs.Json.t
(** Assemble a schema-versioned manifest object from its sections. *)

val write : path:string -> Repro_obs.Json.t -> unit
(** Serialise to [path] (single line + newline), overwriting. *)
