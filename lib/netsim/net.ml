module Rng = Repro_util.Rng

type 'm t = {
  engine : Simkit.Engine.t;
  topology : Topology.t;
  rng : Rng.t;
  endpoint_of : int -> int;
  handlers : (int, src:int -> 'm -> unit) Hashtbl.t;
  mutable loss_rate : float;
  mutable taps : (time:float -> src:int -> dst:int -> 'm -> unit) list;
  mutable n_sent : int;
  mutable n_delivered : int;
  mutable n_dropped : int;
}

let create ?(loss_rate = 0.0) ?(endpoint_of = fun a -> a) ~engine ~topology ~rng () =
  if loss_rate < 0.0 || loss_rate >= 1.0 then invalid_arg "Net.create: loss_rate";
  {
    engine;
    topology;
    rng;
    endpoint_of;
    handlers = Hashtbl.create 256;
    loss_rate;
    taps = [];
    n_sent = 0;
    n_delivered = 0;
    n_dropped = 0;
  }

let engine t = t.engine
let topology t = t.topology
let set_loss_rate t r = t.loss_rate <- r
let loss_rate t = t.loss_rate

let register t ~addr handler = Hashtbl.replace t.handlers addr handler
let unregister t ~addr = Hashtbl.remove t.handlers addr
let is_registered t ~addr = Hashtbl.mem t.handlers addr

(* distinct addresses on the same endpoint are LAN neighbours, not the
   same machine *)
let same_endpoint_delay = 0.0005

let delay t a b =
  if a = b then 0.0
  else begin
    let d = Topology.delay t.topology (t.endpoint_of a) (t.endpoint_of b) in
    if d <= 0.0 then same_endpoint_delay else d
  end

let rtt t a b = 2.0 *. delay t a b

let on_send t tap = t.taps <- tap :: t.taps

let send t ~src ~dst msg =
  t.n_sent <- t.n_sent + 1;
  let now = Simkit.Engine.now t.engine in
  List.iter (fun tap -> tap ~time:now ~src ~dst msg) t.taps;
  let lost = t.loss_rate > 0.0 && Rng.float t.rng 1.0 < t.loss_rate in
  if lost then t.n_dropped <- t.n_dropped + 1
  else begin
    let d = delay t src dst in
    ignore
      (Simkit.Engine.schedule t.engine ~delay:d (fun () ->
           match Hashtbl.find_opt t.handlers dst with
           | Some handler ->
               t.n_delivered <- t.n_delivered + 1;
               handler ~src msg
           | None -> t.n_dropped <- t.n_dropped + 1))
  end

let n_sent t = t.n_sent
let n_delivered t = t.n_delivered
let n_dropped t = t.n_dropped
