module Rng = Repro_util.Rng
module Obs = Repro_obs
module Profile = Repro_obs.Profile
module Netfault = Repro_faults.Netfault
module Nodefault = Repro_faults.Nodefault

let ph_send = Profile.phase "netsim.send"
let ph_deliver = Profile.phase "netsim.deliver"
let ph_verdict = Profile.phase "netsim.fault_verdict"
let ph_queue = Profile.phase "netsim.queue"

type stats = {
  sent : int;
  delivered : int;
  dropped_loss : int;
  dropped_dead : int;
  dropped_fault : int;
  dropped_node : int;
  dropped_congestion : int;
  sent_by_class : (string * int) list;
}

type capacity = { service_rate : float; queue_limit : int }

(* deterministic per-address server state: [hi_until] is the virtual
   time at which all queued high-priority work completes, [all_until]
   the time at which everything queued completes ([hi_until <=
   all_until] always) *)
type cap_state = { mutable hi_until : float; mutable all_until : float }

type 'm t = {
  engine : Simkit.Engine.t;
  topology : Topology.t;
  rng : Rng.t;
  endpoint_of : int -> int;
  classify : 'm -> string;
  seq_of : 'm -> int option;
  priority_of : ('m -> int) option;
  handlers : (int, src:int -> 'm -> unit) Hashtbl.t;
  mutable loss_rate : float;
  mutable fault : Netfault.t option;
  mutable node_fault : Nodefault.t option;
  mutable capacity : capacity option;
  cap_states : (int, cap_state) Hashtbl.t;
  mutable taps : (time:float -> src:int -> dst:int -> 'm -> unit) list;
  mutable queue_taps : (addr:int -> cls:string -> delay:float -> unit) list;
  mutable n_sent : int;
  mutable n_delivered : int;
  mutable n_dropped_loss : int;
  mutable n_dropped_dead : int;
  mutable n_dropped_fault : int;
  mutable n_dropped_node : int;
  mutable n_dropped_congestion : int;
  by_class : (string, int ref) Hashtbl.t;
  mutable trace : Obs.Trace.t;
}

let validate_capacity c =
  if c.service_rate <= 0.0 || Float.is_nan c.service_rate then
    invalid_arg "Net.capacity: service_rate must be > 0";
  if c.queue_limit < 1 then invalid_arg "Net.capacity: queue_limit must be >= 1"

let create ?(loss_rate = 0.0) ?(endpoint_of = fun a -> a)
    ?(classify = fun _ -> "msg") ?(seq_of = fun _ -> None) ?priority_of ?capacity
    ?(trace = Obs.Trace.disabled) ~engine ~topology ~rng () =
  if loss_rate < 0.0 || loss_rate >= 1.0 then invalid_arg "Net.create: loss_rate";
  Option.iter validate_capacity capacity;
  {
    engine;
    topology;
    rng;
    endpoint_of;
    classify;
    seq_of;
    priority_of;
    handlers = Hashtbl.create 256;
    loss_rate;
    fault = None;
    node_fault = None;
    capacity;
    cap_states = Hashtbl.create 256;
    taps = [];
    queue_taps = [];
    n_sent = 0;
    n_delivered = 0;
    n_dropped_loss = 0;
    n_dropped_dead = 0;
    n_dropped_fault = 0;
    n_dropped_node = 0;
    n_dropped_congestion = 0;
    by_class = Hashtbl.create 16;
    trace;
  }

let engine t = t.engine
let topology t = t.topology

let set_loss_rate t r =
  if r < 0.0 || r >= 1.0 then invalid_arg "Net.set_loss_rate: loss_rate";
  if t.fault <> None then
    invalid_arg
      "Net.set_loss_rate: a fault model is installed and overrides the uniform \
       process; clear it first (set_fault_model t None)";
  t.loss_rate <- r

let loss_rate t = t.loss_rate
let set_fault_model t fault = t.fault <- fault
let fault_model t = t.fault
let set_node_fault_model t fault = t.node_fault <- fault
let node_fault_model t = t.node_fault
let set_trace t trace = t.trace <- trace

let set_capacity t cap =
  Option.iter validate_capacity cap;
  if cap = None then Hashtbl.reset t.cap_states;
  t.capacity <- cap

let capacity t = t.capacity

let cap_state t addr =
  match Hashtbl.find_opt t.cap_states addr with
  | Some st -> st
  | None ->
      let st = { hi_until = 0.0; all_until = 0.0 } in
      Hashtbl.add t.cap_states addr st;
      st

let queue_occupancy t ~addr =
  match t.capacity with
  | None -> 0
  | Some cap -> (
      match Hashtbl.find_opt t.cap_states addr with
      | None -> 0
      | Some st ->
          let backlog = st.all_until -. Simkit.Engine.now t.engine in
          if backlog <= 0.0 then 0
          else int_of_float ((backlog *. cap.service_rate) +. 0.5))

let on_queue t tap = t.queue_taps <- tap :: t.queue_taps

let register t ~addr handler = Hashtbl.replace t.handlers addr handler

let unregister t ~addr =
  Hashtbl.remove t.handlers addr;
  Hashtbl.remove t.cap_states addr
let is_registered t ~addr = Hashtbl.mem t.handlers addr

(* distinct addresses on the same endpoint are LAN neighbours, not the
   same machine *)
let same_endpoint_delay = 0.0005

let delay t a b =
  if a = b then 0.0
  else begin
    let d = Topology.delay t.topology (t.endpoint_of a) (t.endpoint_of b) in
    if d <= 0.0 then same_endpoint_delay else d
  end

let rtt t a b = 2.0 *. delay t a b

let on_send t tap = t.taps <- tap :: t.taps

let count_class t cls =
  match Hashtbl.find_opt t.by_class cls with
  | Some r -> incr r
  | None -> Hashtbl.add t.by_class cls (ref 1)

let send_inner t ~src ~dst msg =
  let prof = !Profile.on in
  t.n_sent <- t.n_sent + 1;
  let cls = t.classify msg in
  count_class t cls;
  let now = Simkit.Engine.now t.engine in
  let traced = Obs.Trace.enabled t.trace in
  if traced then
    Obs.Trace.emit t.trace
      {
        Obs.Event.time = now;
        body = Obs.Event.Send { src; dst; cls; seq = t.seq_of msg };
      };
  List.iter (fun tap -> tap ~time:now ~src ~dst msg) t.taps;
  (* the installed fault model replaces the built-in uniform process;
     the model sees topology endpoints, not overlay addresses *)
  if prof then Profile.enter ph_verdict;
  let verdict =
    match t.fault with
    | Some f ->
        Netfault.decide f ~rng:t.rng ~time:now ~src:(t.endpoint_of src)
          ~dst:(t.endpoint_of dst)
    | None ->
        if t.loss_rate > 0.0 && Rng.float t.rng 1.0 < t.loss_rate then
          Netfault.Lose
        else Netfault.Pass
  in
  if prof then Profile.leave ph_verdict;
  let emit_drop ~time reason =
    if Obs.Trace.enabled t.trace then
      Obs.Trace.emit t.trace
        {
          Obs.Event.time;
          body = Obs.Event.Drop { src; dst; cls; seq = t.seq_of msg; reason };
        }
  in
  match verdict with
  | Netfault.Lose ->
      (match t.fault with
      | Some _ -> t.n_dropped_fault <- t.n_dropped_fault + 1
      | None -> t.n_dropped_loss <- t.n_dropped_loss + 1);
      emit_drop ~time:now
        (match t.fault with
        | Some _ -> Obs.Event.Faulted
        | None -> Obs.Event.Loss)
  | Netfault.Pass | Netfault.Delay _ -> (
      let link_extra = match verdict with Netfault.Delay d -> d | _ -> 0.0 in
      (* node faults see overlay addresses: the sender's verdict rules
         now; the receiver's slowdown is priced in now but its mute is
         re-judged at delivery time (a flapping node that recovers
         mid-flight still gets the message, like a rebooting host) *)
      let sender_verdict, recv_slow =
        match t.node_fault with
        | None -> (Nodefault.Pass, Nodefault.Pass)
        | Some nf ->
            if prof then Profile.enter ph_verdict;
            let v =
              ( Nodefault.decide nf ~time:now ~dir:Nodefault.Send ~addr:src,
                match Nodefault.decide nf ~time:now ~dir:Nodefault.Recv ~addr:dst with
                | Nodefault.Slow _ as s -> s
                | _ -> Nodefault.Pass )
            in
            if prof then Profile.leave ph_verdict;
            v
      in
      match sender_verdict with
      | Nodefault.Mute ->
          t.n_dropped_node <- t.n_dropped_node + 1;
          emit_drop ~time:now Obs.Event.Node_fault
      | Nodefault.Pass | Nodefault.Slow _ -> (
          let factor, node_extra =
            let of_verdict = function
              | Nodefault.Slow { factor; extra } -> (factor, extra)
              | Nodefault.Pass | Nodefault.Mute -> (1.0, 0.0)
            in
            let fs, es = of_verdict sender_verdict in
            let fr, er = of_verdict recv_slow in
            (fs *. fr, es +. er)
          in
          let d = (delay t src dst *. factor) +. node_extra +. link_extra in
          (* optional capacity model: the message joins the destination's
             bounded queue when it arrives; queueing is deterministic (no
             RNG), so the default-off path stays bit-identical *)
          let d =
            match t.capacity with
            | None -> Some d
            | Some cap ->
                if prof then Profile.enter ph_queue;
                let st = cap_state t dst in
                let service = 1.0 /. cap.service_rate in
                let a = now +. d in
                let hi = if st.hi_until > a then st.hi_until else a in
                let all = if st.all_until > a then st.all_until else a in
                let high =
                  match t.priority_of with Some p -> p msg > 0 | None -> false
                in
                let band_until = if high then hi else all in
                let occ =
                  int_of_float (((band_until -. a) *. cap.service_rate) +. 0.5)
                in
                let r =
                  if occ >= cap.queue_limit then None
                  else begin
                    let completion = band_until +. service in
                    if high then begin
                      st.hi_until <- completion;
                      st.all_until <- all +. service
                    end
                    else st.all_until <- completion;
                    let qdelay = completion -. a in
                    if traced then
                      Obs.Trace.emit t.trace
                        {
                          Obs.Event.time = now;
                          body =
                            Obs.Event.Queue
                              { addr = dst; cls; delay = qdelay; occ = occ + 1 };
                        };
                    List.iter
                      (fun tap -> tap ~addr:dst ~cls ~delay:qdelay)
                      t.queue_taps;
                    Some (completion -. now)
                  end
                in
                if prof then Profile.leave ph_queue;
                r
          in
          match d with
          | None ->
              t.n_dropped_congestion <- t.n_dropped_congestion + 1;
              emit_drop ~time:now Obs.Event.Congested
          | Some d ->
          ignore
            (Simkit.Engine.schedule t.engine ~delay:d (fun () ->
                 let prof = !Profile.on in
                 if prof then Profile.enter ph_deliver;
                 let recv_mute =
                   match t.node_fault with
                   | None -> false
                   | Some nf -> (
                       match
                         Nodefault.decide nf
                           ~time:(Simkit.Engine.now t.engine)
                           ~dir:Nodefault.Recv ~addr:dst
                       with
                       | Nodefault.Mute -> true
                       | Nodefault.Pass | Nodefault.Slow _ -> false)
                 in
                 (if recv_mute then begin
                    t.n_dropped_node <- t.n_dropped_node + 1;
                    emit_drop ~time:(Simkit.Engine.now t.engine)
                      Obs.Event.Node_fault
                  end
                  else
                    match Hashtbl.find_opt t.handlers dst with
                    | Some handler ->
                        t.n_delivered <- t.n_delivered + 1;
                        if Obs.Trace.enabled t.trace then
                          Obs.Trace.emit t.trace
                            {
                              Obs.Event.time = Simkit.Engine.now t.engine;
                              body = Obs.Event.Recv { src; dst; cls };
                            };
                        handler ~src msg
                    | None ->
                        t.n_dropped_dead <- t.n_dropped_dead + 1;
                        emit_drop ~time:(Simkit.Engine.now t.engine)
                          Obs.Event.Dead_destination);
                 if prof then Profile.leave ph_deliver))))

let send t ~src ~dst msg =
  if !Profile.on then begin
    Profile.enter ph_send;
    send_inner t ~src ~dst msg;
    Profile.leave ph_send
  end
  else send_inner t ~src ~dst msg

let n_sent t = t.n_sent
let n_delivered t = t.n_delivered
let n_dropped t =
  t.n_dropped_loss + t.n_dropped_dead + t.n_dropped_fault + t.n_dropped_node
  + t.n_dropped_congestion

let sent_in_class t cls =
  match Hashtbl.find_opt t.by_class cls with Some r -> !r | None -> 0

let stats t =
  {
    sent = t.n_sent;
    delivered = t.n_delivered;
    dropped_loss = t.n_dropped_loss;
    dropped_dead = t.n_dropped_dead;
    dropped_fault = t.n_dropped_fault;
    dropped_node = t.n_dropped_node;
    dropped_congestion = t.n_dropped_congestion;
    sent_by_class =
      Hashtbl.fold (fun cls r acc -> (cls, !r) :: acc) t.by_class []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
  }
