(** Packet-level network simulation on top of a topology.

    Endpoints register message handlers under small-integer addresses
    (the topology's endpoint indices). A sent message is delivered after
    the topology's one-way propagation delay, unless it is dropped by the
    loss process or the destination has crashed (unregistered) by
    delivery time.

    Congestion is modelled by an {e optional} per-node capacity model
    ({!set_capacity}): each address owns a deterministic single server
    with a fixed service rate and a bounded queue, so messages accrue
    queueing delay at their destination and overflow is dropped with
    reason [Congested]. The model is off by default — matching the
    paper's simulator, which models neither congestion delays nor
    congestion losses — and the default-off send path is bit-identical
    to a build without the model (no extra RNG draws, same event
    schedule).

    The drop/delay decision is pluggable: by default the paper's
    i.i.d. uniform process ([loss_rate]) applies; {!set_fault_model}
    installs a {!Repro_faults.Netfault} model (bursty loss, blackholes,
    partitions, extra delay, or compositions) that {e replaces} the
    uniform process until cleared.

    Runtime counters (total sends/deliveries, drops split by cause,
    per-class send counts) are maintained unconditionally; structured
    [Send]/[Recv]/[Drop] events flow to an optional
    {!Repro_obs.Trace}. *)

type 'm t

(** Counter snapshot; [sent_by_class] is sorted by class name. *)
type stats = {
  sent : int;
  delivered : int;
  dropped_loss : int;  (** dropped by the uniform loss injection at send time *)
  dropped_dead : int;  (** destination unregistered at delivery time *)
  dropped_fault : int;  (** dropped by an installed fault model at send time *)
  dropped_node : int;
      (** swallowed by a per-node fault: a fail-silent/flapping sender at
          send time, or a flapping receiver down at delivery time *)
  dropped_congestion : int;
      (** rejected by the destination's full bounded queue (capacity
          model installed and overloaded) *)
  sent_by_class : (string * int) list;
}

(** Per-node capacity: the node services [service_rate] messages per
    second, one at a time, from a queue holding at most [queue_limit]
    unserviced messages. *)
type capacity = { service_rate : float; queue_limit : int }

val create :
  ?loss_rate:float ->
  ?endpoint_of:(int -> int) ->
  ?classify:('m -> string) ->
  ?seq_of:('m -> int option) ->
  ?priority_of:('m -> int) ->
  ?capacity:capacity ->
  ?trace:Repro_obs.Trace.t ->
  engine:Simkit.Engine.t ->
  topology:Topology.t ->
  rng:Repro_util.Rng.t ->
  unit ->
  'm t
(** [loss_rate] is the uniform per-message drop probability (default 0).
    [endpoint_of] maps addresses to topology endpoints (default identity)
    — distinct addresses may share an endpoint; they then see a fixed
    small LAN delay instead of zero. [classify] names a message's traffic
    class for the per-class counters and trace events (default ["msg"]);
    [seq_of] extracts a lookup sequence number so trace [Send]/[Drop]
    events can be attributed to a lookup (default [None]). [priority_of]
    assigns a queueing priority (only consulted while a capacity model is
    installed): messages with priority > 0 jump ahead of priority-0
    traffic in the destination's queue and are only dropped when the
    queue is full of equally-urgent messages; without it the queue is
    plain FIFO. [capacity] installs the capacity model from the start
    (default off; see {!set_capacity}). *)

val engine : 'm t -> Simkit.Engine.t
val topology : 'm t -> Topology.t

val set_loss_rate : 'm t -> float -> unit
(** Change the uniform drop probability. Raises [Invalid_argument] unless
    [0.0 <= r < 1.0] (same contract as {!create}).

    Precedence: an installed fault model ({!set_fault_model}) {e
    replaces} the uniform process entirely, so changing the uniform rate
    underneath it could never take effect until the model is cleared.
    Rather than silently accepting a rate that does nothing, this raises
    [Invalid_argument] while a fault model is installed — clear it first
    with [set_fault_model t None], then set the rate. *)

val loss_rate : 'm t -> float

val set_fault_model : 'm t -> Repro_faults.Netfault.t option -> unit
(** [set_fault_model t (Some f)] replaces the uniform loss process with
    [f]: every send consults [f] (with the sender/receiver {e topology
    endpoints}) and is delivered, dropped (counted as [dropped_fault],
    traced with reason [Faulted]), or delayed on top of the propagation
    delay. [None] restores the uniform [loss_rate] process. *)

val fault_model : 'm t -> Repro_faults.Netfault.t option

val set_node_fault_model : 'm t -> Repro_faults.Nodefault.t option -> unit
(** [set_node_fault_model t (Some f)] installs a per-node fault model
    next to (not instead of) the link-level one. Every send that survives
    the link verdict consults [f] twice, with {e overlay addresses}: the
    sender's verdict applies at send time (a mute sender's message is
    counted [dropped_node] and traced with reason [Node_fault]; a slow
    sender's factor/extra stretch the delivery delay), the receiver's
    slowdown is priced in at send time, and the receiver's mute is
    re-judged at {e delivery} time so a flapping node that recovers while
    the message is in flight still gets it. [None] removes the model. *)

val node_fault_model : 'm t -> Repro_faults.Nodefault.t option

val set_capacity : 'm t -> capacity option -> unit
(** [set_capacity t (Some c)] turns the per-node capacity model on:
    every message that survives the loss/fault verdicts joins its
    destination's bounded queue at its (uncongested) arrival time, waits
    behind the backlog, and is delivered one service interval
    ([1 / c.service_rate]) after reaching the head; a message arriving
    at a queue already holding [c.queue_limit] unserviced messages is
    dropped, counted in [dropped_congestion] and traced with reason
    [Congested]. With a [priority_of] hook (see {!create}), priority-> 0
    messages wait only behind the high-priority backlog (later-arriving
    low-priority traffic is pushed back) and overflow is charged to the
    low band first. The model is deterministic — installing it never
    draws from the RNG. [None] turns it off and clears all queue state.
    Each accepted-and-queued message is traced as a [Queue] event
    carrying its queueing delay and the post-enqueue occupancy.

    Raises [Invalid_argument] unless [service_rate > 0] and
    [queue_limit >= 1]. *)

val capacity : 'm t -> capacity option

val queue_occupancy : 'm t -> addr:int -> int
(** Number of unserviced messages in [addr]'s queue at the current
    virtual time (0 when no capacity model is installed) — the local
    load signal a node can consult for backpressure. *)

val on_queue : 'm t -> (addr:int -> cls:string -> delay:float -> unit) -> unit
(** Metrics tap invoked for every message accepted into a bounded queue;
    [delay] is its queueing delay (wait + service beyond the propagation
    delay) at destination [addr]. Never invoked while the capacity model
    is off. *)

val set_trace : 'm t -> Repro_obs.Trace.t -> unit

val register : 'm t -> addr:int -> (src:int -> 'm -> unit) -> unit
(** Attach (or replace) the message handler for an endpoint. *)

val unregister : 'm t -> addr:int -> unit
(** Crash the endpoint: undelivered and future messages to it vanish. *)

val is_registered : 'm t -> addr:int -> bool

val send : 'm t -> src:int -> dst:int -> 'm -> unit
(** Fire-and-forget unicast. [src] must equal the sender's own address —
    it is what the receiver's handler sees. Sending to self delivers on
    the next event-loop step with zero delay. *)

val delay : 'm t -> int -> int -> float
val rtt : 'm t -> int -> int -> float

val on_send : 'm t -> (time:float -> src:int -> dst:int -> 'm -> unit) -> unit
(** Metrics tap invoked for every {!send}, including messages later lost. *)

val n_sent : 'm t -> int
val n_delivered : 'm t -> int

val n_dropped : 'm t -> int
(** All drops: losses, fault/node-fault drops, congestion overflow, and
    messages addressed to crashed endpoints. *)

val sent_in_class : 'm t -> string -> int
(** Sends whose [classify] returned the given class name so far. *)

val stats : 'm t -> stats
