(** Packet-level network simulation on top of a topology.

    Endpoints register message handlers under small-integer addresses
    (the topology's endpoint indices). A sent message is delivered after
    the topology's one-way propagation delay, unless it is dropped by the
    loss process or the destination has crashed (unregistered) by
    delivery time. Matching the paper's simulator, congestion delays and
    losses are not modelled.

    The drop/delay decision is pluggable: by default the paper's
    i.i.d. uniform process ([loss_rate]) applies; {!set_fault_model}
    installs a {!Repro_faults.Netfault} model (bursty loss, blackholes,
    partitions, extra delay, or compositions) that {e replaces} the
    uniform process until cleared.

    Runtime counters (total sends/deliveries, drops split by cause,
    per-class send counts) are maintained unconditionally; structured
    [Send]/[Recv]/[Drop] events flow to an optional
    {!Repro_obs.Trace}. *)

type 'm t

(** Counter snapshot; [sent_by_class] is sorted by class name. *)
type stats = {
  sent : int;
  delivered : int;
  dropped_loss : int;  (** dropped by the uniform loss injection at send time *)
  dropped_dead : int;  (** destination unregistered at delivery time *)
  dropped_fault : int;  (** dropped by an installed fault model at send time *)
  dropped_node : int;
      (** swallowed by a per-node fault: a fail-silent/flapping sender at
          send time, or a flapping receiver down at delivery time *)
  sent_by_class : (string * int) list;
}

val create :
  ?loss_rate:float ->
  ?endpoint_of:(int -> int) ->
  ?classify:('m -> string) ->
  ?seq_of:('m -> int option) ->
  ?trace:Repro_obs.Trace.t ->
  engine:Simkit.Engine.t ->
  topology:Topology.t ->
  rng:Repro_util.Rng.t ->
  unit ->
  'm t
(** [loss_rate] is the uniform per-message drop probability (default 0).
    [endpoint_of] maps addresses to topology endpoints (default identity)
    — distinct addresses may share an endpoint; they then see a fixed
    small LAN delay instead of zero. [classify] names a message's traffic
    class for the per-class counters and trace events (default ["msg"]);
    [seq_of] extracts a lookup sequence number so trace [Send]/[Drop]
    events can be attributed to a lookup (default [None]). *)

val engine : 'm t -> Simkit.Engine.t
val topology : 'm t -> Topology.t

val set_loss_rate : 'm t -> float -> unit
(** Change the uniform drop probability. Raises [Invalid_argument] unless
    [0.0 <= r < 1.0] (same contract as {!create}). Only effective while
    no fault model is installed. *)

val loss_rate : 'm t -> float

val set_fault_model : 'm t -> Repro_faults.Netfault.t option -> unit
(** [set_fault_model t (Some f)] replaces the uniform loss process with
    [f]: every send consults [f] (with the sender/receiver {e topology
    endpoints}) and is delivered, dropped (counted as [dropped_fault],
    traced with reason [Faulted]), or delayed on top of the propagation
    delay. [None] restores the uniform [loss_rate] process. *)

val fault_model : 'm t -> Repro_faults.Netfault.t option

val set_node_fault_model : 'm t -> Repro_faults.Nodefault.t option -> unit
(** [set_node_fault_model t (Some f)] installs a per-node fault model
    next to (not instead of) the link-level one. Every send that survives
    the link verdict consults [f] twice, with {e overlay addresses}: the
    sender's verdict applies at send time (a mute sender's message is
    counted [dropped_node] and traced with reason [Node_fault]; a slow
    sender's factor/extra stretch the delivery delay), the receiver's
    slowdown is priced in at send time, and the receiver's mute is
    re-judged at {e delivery} time so a flapping node that recovers while
    the message is in flight still gets it. [None] removes the model. *)

val node_fault_model : 'm t -> Repro_faults.Nodefault.t option

val set_trace : 'm t -> Repro_obs.Trace.t -> unit

val register : 'm t -> addr:int -> (src:int -> 'm -> unit) -> unit
(** Attach (or replace) the message handler for an endpoint. *)

val unregister : 'm t -> addr:int -> unit
(** Crash the endpoint: undelivered and future messages to it vanish. *)

val is_registered : 'm t -> addr:int -> bool

val send : 'm t -> src:int -> dst:int -> 'm -> unit
(** Fire-and-forget unicast. [src] must equal the sender's own address —
    it is what the receiver's handler sees. Sending to self delivers on
    the next event-loop step with zero delay. *)

val delay : 'm t -> int -> int -> float
val rtt : 'm t -> int -> int -> float

val on_send : 'm t -> (time:float -> src:int -> dst:int -> 'm -> unit) -> unit
(** Metrics tap invoked for every {!send}, including messages later lost. *)

val n_sent : 'm t -> int
val n_delivered : 'm t -> int

val n_dropped : 'm t -> int
(** Losses plus messages addressed to crashed endpoints. *)

val sent_in_class : 'm t -> string -> int
(** Sends whose [classify] returned the given class name so far. *)

val stats : 'm t -> stats
