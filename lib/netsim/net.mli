(** Packet-level network simulation on top of a topology.

    Endpoints register message handlers under small-integer addresses
    (the topology's endpoint indices). A sent message is delivered after
    the topology's one-way propagation delay, unless it is dropped by the
    uniform loss process or the destination has crashed (unregistered) by
    delivery time. Matching the paper's simulator, congestion delays and
    losses are not modelled. *)

type 'm t

val create :
  ?loss_rate:float ->
  ?endpoint_of:(int -> int) ->
  engine:Simkit.Engine.t ->
  topology:Topology.t ->
  rng:Repro_util.Rng.t ->
  unit ->
  'm t
(** [loss_rate] is the uniform per-message drop probability (default 0).
    [endpoint_of] maps addresses to topology endpoints (default identity)
    — distinct addresses may share an endpoint; they then see a fixed
    small LAN delay instead of zero. *)

val engine : 'm t -> Simkit.Engine.t
val topology : 'm t -> Topology.t

val set_loss_rate : 'm t -> float -> unit
val loss_rate : 'm t -> float

val register : 'm t -> addr:int -> (src:int -> 'm -> unit) -> unit
(** Attach (or replace) the message handler for an endpoint. *)

val unregister : 'm t -> addr:int -> unit
(** Crash the endpoint: undelivered and future messages to it vanish. *)

val is_registered : 'm t -> addr:int -> bool

val send : 'm t -> src:int -> dst:int -> 'm -> unit
(** Fire-and-forget unicast. [src] must equal the sender's own address —
    it is what the receiver's handler sees. Sending to self delivers on
    the next event-loop step with zero delay. *)

val delay : 'm t -> int -> int -> float
val rtt : 'm t -> int -> int -> float

val on_send : 'm t -> (time:float -> src:int -> dst:int -> 'm -> unit) -> unit
(** Metrics tap invoked for every {!send}, including messages later lost. *)

val n_sent : 'm t -> int
val n_delivered : 'm t -> int
val n_dropped : 'm t -> int
(** Losses plus messages addressed to crashed endpoints. *)
