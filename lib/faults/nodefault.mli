(** Per-node fault models: nodes that are slow or mute rather than dead.

    Where {!Netfault} rules on {e links} (given topology endpoints), a
    node fault rules on the {e node} at one end of a message — the
    network layer consults the installed model twice per message, once
    for the sender and once for the receiver:

    - {!fail_slow} — a slowdown factor on the propagation delay and/or a
      constant extra processing delay, applied to every message the node
      handles (in both directions: a slow node is slow to emit and slow
      to process);
    - {!fail_silent} — the node {e receives but never sends}. Distinct
      from a crash: the network still delivers to it, so it keeps
      absorbing probes and lookups while its replies vanish;
    - {!flapping} — timed crash/recover cycles: while down the node
      neither sends nor receives, but (unlike a real crash) it keeps its
      routing state and resumes with it when the cycle turns.

    Models are pure functions of virtual time, so no RNG is consumed on
    the message path — victim selection happens once, in the harness,
    from the dedicated fault RNG stream. Addresses are {e overlay
    addresses} (netsim registration addresses), not topology endpoints:
    faults attach to nodes, not to the network under them. *)

type verdict =
  | Pass
  | Mute  (** drop: the node is silent (or off) for this message *)
  | Slow of { factor : float; extra : float }
      (** deliver after [propagation * factor + extra] *)

(** The role of the consulted node in the message under decision. *)
type dir = Send | Recv

type t

val none : t
(** Always {!Pass}. *)

val fail_slow : ?factor:float -> ?extra:float -> addrs:int list -> unit -> t
(** Every message one of [addrs] sends or receives is delayed: the
    propagation delay is multiplied by [factor] (≥ 1, default 1) and
    [extra] seconds (≥ 0, default 0) of processing delay are added. At
    least one of the two must be non-trivial. A round trip through a
    slow node pays the penalty on both legs. *)

val fail_silent : addrs:int list -> unit -> t
(** Messages {e sent} by one of [addrs] are dropped ({!Mute} on
    {!Send}); deliveries to it pass untouched. *)

val flapping : ?phase:float -> period:float -> duty:float -> addrs:int list -> unit -> t
(** Each of [addrs] cycles down/up forever: down for [duty * period]
    seconds (both directions {!Mute}), then up for the rest of the
    period. [duty] must be in (0, 1). The cycle starts {e down} at time
    [phase] (default 0; the harness passes the injection time, so
    victims crash the moment the fault lands). Whether a message gets
    through is judged at send time for the sender and at {e delivery}
    time for the receiver — a message sent while the receiver is down
    but delivered after it recovers goes through, like a real reboot. *)

val compose : t list -> t
(** Consult left to right: any {!Mute} drops the message; slowdown
    factors multiply and extras add. *)

val describe : t -> string

val decide : t -> time:float -> dir:dir -> addr:int -> verdict
