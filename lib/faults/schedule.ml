type action =
  | Crash_fraction of { fraction : float; graceful : bool }
  | Set_base of Netfault.t
  | Overlay of { fault : Netfault.t; duration : float }
  | Partition of { groups : int; duration : float }
  | Heal

type event = { time : float; label : string; action : action }
type t = event list

let empty = []

let describe = function
  | Crash_fraction { fraction; graceful } ->
      Printf.sprintf "%s %g%%" (if graceful then "leave" else "crash") (100.0 *. fraction)
  | Set_base f -> Printf.sprintf "set-base %s" (Netfault.describe f)
  | Overlay { fault; duration } ->
      Printf.sprintf "overlay %s for %gs" (Netfault.describe fault) duration
  | Partition { groups; duration } ->
      Printf.sprintf "partition %d ways for %gs" groups duration
  | Heal -> "heal"

let mk ?label ~time action =
  let label = match label with Some l -> l | None -> describe action in
  { time; label; action }

let crash_fraction ?(graceful = false) ?label ~time fraction =
  if fraction < 0.0 || fraction > 1.0 then invalid_arg "Schedule.crash_fraction";
  mk ?label ~time (Crash_fraction { fraction; graceful })

let partition ?label ~time ~duration groups =
  if groups < 2 then invalid_arg "Schedule.partition: groups < 2";
  if duration <= 0.0 then invalid_arg "Schedule.partition: duration";
  mk ?label ~time (Partition { groups; duration })

let set_base ?label ~time fault = mk ?label ~time (Set_base fault)

let overlay ?label ~time ~duration fault =
  if duration <= 0.0 then invalid_arg "Schedule.overlay: duration";
  mk ?label ~time (Overlay { fault; duration })

let heal ?label time = mk ?label ~time Heal

let sorted t = List.stable_sort (fun a b -> Float.compare a.time b.time) t
