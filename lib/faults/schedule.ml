type node_fault_kind =
  | Fail_slow of { factor : float; extra : float }
  | Fail_silent
  | Flapping of { period : float; duty : float }

type action =
  | Crash_fraction of { fraction : float; graceful : bool }
  | Set_base of Netfault.t
  | Overlay of { fault : Netfault.t; duration : float }
  | Partition of { groups : int; duration : float }
  | Node_fault of { fraction : float; kind : node_fault_kind; duration : float }
  | Lookup_storm of { rate : float; duration : float }
  | Flash_crowd of { joiners : int; over : float }
  | Heal

type event = { time : float; label : string; action : action }
type t = event list

let empty = []

let describe = function
  | Crash_fraction { fraction; graceful } ->
      Printf.sprintf "%s %g%%" (if graceful then "leave" else "crash") (100.0 *. fraction)
  | Set_base f -> Printf.sprintf "set-base %s" (Netfault.describe f)
  | Overlay { fault; duration } ->
      Printf.sprintf "overlay %s for %gs" (Netfault.describe fault) duration
  | Partition { groups; duration } ->
      Printf.sprintf "partition %d ways for %gs" groups duration
  | Node_fault { fraction; kind; duration } ->
      let kind_s =
        match kind with
        | Fail_slow { factor; extra } ->
            Printf.sprintf "fail-slow x%.3g +%.3gs" factor extra
        | Fail_silent -> "fail-silent"
        | Flapping { period; duty } ->
            Printf.sprintf "flapping %gs/%g%%" period (100.0 *. duty)
      in
      Printf.sprintf "%s %g%% for %gs" kind_s (100.0 *. fraction) duration
  | Lookup_storm { rate; duration } ->
      Printf.sprintf "lookup-storm %g/s/node for %gs" rate duration
  | Flash_crowd { joiners; over } ->
      Printf.sprintf "flash-crowd %d joiners over %gs" joiners over
  | Heal -> "heal"

let mk ?label ~time action =
  let label = match label with Some l -> l | None -> describe action in
  { time; label; action }

let crash_fraction ?(graceful = false) ?label ~time fraction =
  if fraction < 0.0 || fraction > 1.0 then invalid_arg "Schedule.crash_fraction";
  mk ?label ~time (Crash_fraction { fraction; graceful })

let partition ?label ~time ~duration groups =
  if groups < 2 then invalid_arg "Schedule.partition: groups < 2";
  if duration <= 0.0 then invalid_arg "Schedule.partition: duration";
  mk ?label ~time (Partition { groups; duration })

let set_base ?label ~time fault = mk ?label ~time (Set_base fault)

let overlay ?label ~time ~duration fault =
  if duration <= 0.0 then invalid_arg "Schedule.overlay: duration";
  mk ?label ~time (Overlay { fault; duration })

let node_fault ?label ~time ~duration ~fraction kind =
  if fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Schedule.node_fault: fraction";
  if duration <= 0.0 then invalid_arg "Schedule.node_fault: duration";
  (match kind with
  | Fail_slow { factor; extra } ->
      if factor < 1.0 || extra < 0.0 || (factor = 1.0 && extra = 0.0) then
        invalid_arg "Schedule.node_fault: fail-slow parameters"
  | Fail_silent -> ()
  | Flapping { period; duty } ->
      if period <= 0.0 || duty <= 0.0 || duty >= 1.0 then
        invalid_arg "Schedule.node_fault: flapping parameters");
  mk ?label ~time (Node_fault { fraction; kind; duration })

let fail_slow ?label ?(factor = 1.0) ?(extra = 0.0) ~time ~duration fraction =
  node_fault ?label ~time ~duration ~fraction (Fail_slow { factor; extra })

let fail_silent ?label ~time ~duration fraction =
  node_fault ?label ~time ~duration ~fraction Fail_silent

let flapping ?label ~time ~duration ~period ~duty fraction =
  node_fault ?label ~time ~duration ~fraction (Flapping { period; duty })

let lookup_storm ?label ~time ~duration rate =
  if rate <= 0.0 then invalid_arg "Schedule.lookup_storm: rate";
  if duration <= 0.0 then invalid_arg "Schedule.lookup_storm: duration";
  mk ?label ~time (Lookup_storm { rate; duration })

let flash_crowd ?label ~time ~over joiners =
  if joiners < 1 then invalid_arg "Schedule.flash_crowd: joiners";
  if over < 0.0 then invalid_arg "Schedule.flash_crowd: over";
  mk ?label ~time (Flash_crowd { joiners; over })

let heal ?label time = mk ?label ~time Heal

let sorted t = List.stable_sort (fun a b -> Float.compare a.time b.time) t
