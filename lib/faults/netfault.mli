(** Composable network fault models.

    A fault model is a (possibly stateful) per-message decision process:
    given the sender and receiver {e endpoints} of a message about to be
    transmitted, it rules the message through, lost, or delayed by some
    extra latency. The network layer consults the installed model once
    per send, so models can express everything from i.i.d. uniform loss
    to correlated processes with per-link memory:

    - {!uniform} — the paper's fault model (Bernoulli drops);
    - {!gilbert_elliott} / {!bursty} — two-state Markov bursty loss with
      per-directional-link channel state;
    - {!blackhole} — silently failed (possibly asymmetric) links;
    - {!partition} — topology split into groups with all cross-group
      traffic dropped;
    - {!extra_delay} — degraded links adding constant latency;
    - {!compose} — stack any of the above.

    All randomness flows through the [rng] handed to {!decide} (the
    network's own stream), so runs stay reproducible from one seed. *)

type verdict =
  | Pass
  | Lose
  | Delay of float  (** deliver, but add this many seconds of latency *)

type t

val none : t
(** Always {!Pass}. *)

val uniform : rate:float -> t
(** I.i.d. Bernoulli loss. [rate] must be in [\[0, 1)]. *)

val gilbert_elliott :
  ?loss_good:float ->
  ?loss_bad:float ->
  p_good_to_bad:float ->
  p_bad_to_good:float ->
  unit ->
  t
(** Classic two-state Gilbert–Elliott channel, one chain per directional
    (src endpoint, dst endpoint) link, stepped once per message: sample a
    drop with the current state's loss probability ([loss_good] default 0,
    [loss_bad] default 1), then transition. Each link's chain starts from
    the stationary distribution, so the long-run average loss holds even
    on lightly-used links. *)

val bursty : avg_loss:float -> burst:float -> t
(** A {!gilbert_elliott} channel parameterised by observables: long-run
    average loss rate [avg_loss] (in [\[0, 1)]) and mean loss-burst
    length [burst] (messages, ≥ 1). Uses [loss_good = 0], [loss_bad = 1],
    [p_bad_to_good = 1/burst] and the stationary-balance value of
    [p_good_to_bad], so the chain loses [avg_loss] of traffic in bursts
    of mean length [burst]. *)

val blackhole : ?symmetric:bool -> links:(int * int) list -> unit -> t
(** Fail the given [(src, dst)] endpoint links completely. Directional by
    default — an asymmetric failure drops A→B while B→A still delivers;
    [symmetric:true] also fails every reverse direction. *)

val partition : group_of:(int -> int) -> t
(** Split the network: a message is lost iff [group_of src <> group_of
    dst]. [group_of] maps topology endpoints to partition-group ids. *)

val extra_delay : float -> t
(** Add a constant extra latency to every message (degraded paths). *)

val compose : t list -> t
(** Consult models left to right: any {!Lose} loses the message, extra
    delays accumulate. *)

val describe : t -> string
(** Human-readable summary (used in trace [Fault] events and logs). *)

val decide : t -> rng:Repro_util.Rng.t -> time:float -> src:int -> dst:int -> verdict
(** Rule on one message from endpoint [src] to endpoint [dst] at
    simulation time [time]. Stateful models advance their state. *)
