module Rng = Repro_util.Rng

type verdict = Pass | Lose | Delay of float

type t = {
  desc : string;
  decide : rng:Rng.t -> time:float -> src:int -> dst:int -> verdict;
}

let none = { desc = "none"; decide = (fun ~rng:_ ~time:_ ~src:_ ~dst:_ -> Pass) }

let check_prob name p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "Netfault.%s: probability out of range" name)

let uniform ~rate =
  if rate < 0.0 || rate >= 1.0 then invalid_arg "Netfault.uniform: rate";
  if rate = 0.0 then none
  else
    {
      desc = Printf.sprintf "uniform(%.4g)" rate;
      decide =
        (fun ~rng ~time:_ ~src:_ ~dst:_ ->
          if Rng.float rng 1.0 < rate then Lose else Pass);
    }

let gilbert_elliott ?(loss_good = 0.0) ?(loss_bad = 1.0) ~p_good_to_bad
    ~p_bad_to_good () =
  check_prob "gilbert_elliott" loss_good;
  check_prob "gilbert_elliott" loss_bad;
  check_prob "gilbert_elliott" p_good_to_bad;
  check_prob "gilbert_elliott" p_bad_to_good;
  if p_bad_to_good = 0.0 && p_good_to_bad > 0.0 then
    invalid_arg "Netfault.gilbert_elliott: bad state is absorbing";
  (* one channel per directional link, created lazily with its state
     drawn from the stationary distribution — a chain started in the good
     state would under-sample the bad state on lightly-used links *)
  let pi_bad =
    if p_good_to_bad = 0.0 then 0.0
    else p_good_to_bad /. (p_good_to_bad +. p_bad_to_good)
  in
  let in_bad : (int * int, bool ref) Hashtbl.t = Hashtbl.create 256 in
  let state rng src dst =
    let key = (src, dst) in
    match Hashtbl.find_opt in_bad key with
    | Some r -> r
    | None ->
        let r = ref (pi_bad > 0.0 && Rng.float rng 1.0 < pi_bad) in
        Hashtbl.add in_bad key r;
        r
  in
  {
    desc =
      Printf.sprintf "gilbert-elliott(gb=%.4g bg=%.4g lg=%.4g lb=%.4g)"
        p_good_to_bad p_bad_to_good loss_good loss_bad;
    decide =
      (fun ~rng ~time:_ ~src ~dst ->
        let bad = state rng src dst in
        let p_loss = if !bad then loss_bad else loss_good in
        let lost = p_loss > 0.0 && Rng.float rng 1.0 < p_loss in
        (bad :=
           if !bad then not (Rng.float rng 1.0 < p_bad_to_good)
           else Rng.float rng 1.0 < p_good_to_bad);
        if lost then Lose else Pass);
  }

let bursty ~avg_loss ~burst =
  if avg_loss < 0.0 || avg_loss >= 1.0 then invalid_arg "Netfault.bursty: avg_loss";
  if burst < 1.0 then invalid_arg "Netfault.bursty: burst < 1";
  if avg_loss = 0.0 then none
  else begin
    let p_bad_to_good = 1.0 /. burst in
    (* stationary fraction of time in the bad (lossy) state must equal
       avg_loss: pi_bad = p_gb / (p_gb + p_bg) *)
    let p_good_to_bad = p_bad_to_good *. avg_loss /. (1.0 -. avg_loss) in
    if p_good_to_bad > 1.0 then invalid_arg "Netfault.bursty: avg_loss * burst too large";
    let t = gilbert_elliott ~p_good_to_bad ~p_bad_to_good () in
    { t with desc = Printf.sprintf "bursty(avg=%.4g burst=%.3g)" avg_loss burst }
  end

let blackhole ?(symmetric = false) ~links () =
  let dead = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace dead (a, b) ();
      if symmetric then Hashtbl.replace dead (b, a) ())
    links;
  {
    desc =
      Printf.sprintf "blackhole(%d %s links)" (Hashtbl.length dead)
        (if symmetric then "symmetric" else "directional");
    decide =
      (fun ~rng:_ ~time:_ ~src ~dst ->
        if Hashtbl.mem dead (src, dst) then Lose else Pass);
  }

let partition ~group_of =
  {
    desc = "partition";
    decide =
      (fun ~rng:_ ~time:_ ~src ~dst ->
        if group_of src <> group_of dst then Lose else Pass);
  }

let extra_delay d =
  if d < 0.0 then invalid_arg "Netfault.extra_delay";
  if d = 0.0 then none
  else
    {
      desc = Printf.sprintf "extra-delay(%.4gs)" d;
      decide = (fun ~rng:_ ~time:_ ~src:_ ~dst:_ -> Delay d);
    }

let compose = function
  | [] -> none
  | [ t ] -> t
  | ts ->
      {
        desc = String.concat " + " (List.map (fun t -> t.desc) ts);
        decide =
          (fun ~rng ~time ~src ~dst ->
            let rec go extra = function
              | [] -> if extra > 0.0 then Delay extra else Pass
              | t :: rest -> (
                  match t.decide ~rng ~time ~src ~dst with
                  | Lose -> Lose
                  | Pass -> go extra rest
                  | Delay d -> go (extra +. d) rest)
            in
            go 0.0 ts);
      }

let describe t = t.desc
let decide t ~rng ~time ~src ~dst = t.decide ~rng ~time ~src ~dst
