(** Declarative, time-stamped fault schedules.

    A schedule is a list of [(time, action)] events the harness injects
    into a running simulation: simultaneous mass crashes, network
    partitions that heal after an interval, swaps of the base loss model
    (e.g. uniform → bursty), and transient link-level overlays. The
    harness interprets the actions ({!Harness.Sim.Live.inject}); this
    module only defines the vocabulary and smart constructors. *)

type node_fault_kind =
  | Fail_slow of { factor : float; extra : float }
      (** every message the victims handle is delayed: propagation
          × [factor] + [extra] seconds of processing *)
  | Fail_silent
      (** victims receive but never send — probes and lookups keep being
          delivered to them while all their replies vanish *)
  | Flapping of { period : float; duty : float }
      (** victims cycle down ([duty · period] seconds, silent in both
          directions) and up, phase-locked to the injection time *)

type action =
  | Crash_fraction of { fraction : float; graceful : bool }
      (** crash this fraction of the currently-active nodes at the same
          instant (rounded to nearest, at least one node when the
          fraction is positive and anyone is alive) *)
  | Set_base of Netfault.t
      (** replace the base loss model (the uniform [loss_rate] process by
          default) from this time on *)
  | Overlay of { fault : Netfault.t; duration : float }
      (** additionally apply [fault] for [duration] seconds, then remove
          it ([infinity] = never heals) *)
  | Partition of { groups : int; duration : float }
      (** split the topology's endpoints uniformly at random into
          [groups] groups, drop all cross-group traffic for [duration]
          seconds, then heal *)
  | Node_fault of { fraction : float; kind : node_fault_kind; duration : float }
      (** afflict this fraction of the currently-active nodes (victims
          drawn from the dedicated fault RNG stream) with a per-node
          fault for [duration] seconds, then lift it ([infinity] = never
          heals) *)
  | Lookup_storm of { rate : float; duration : float }
      (** overload injection: every node active at injection time issues
          an {e additional} [rate] lookups per second (Poisson, on top of
          the configured workload) for [duration] seconds *)
  | Flash_crowd of { joiners : int; over : float }
      (** overload injection: [joiners] fresh nodes start joining the
          overlay, spread evenly over [over] seconds ([0] = all at the
          same instant) *)
  | Heal
      (** remove every overlay — link and node — and restore the default
          base model *)

type event = { time : float; label : string; action : action }
(** [label] names the fault episode in trace events and recovery
    metrics. *)

type t = event list

val empty : t

val crash_fraction : ?graceful:bool -> ?label:string -> time:float -> float -> event
(** [crash_fraction ~time f] — at [time], crash fraction [f] (in
    [\[0, 1\]]) of the active nodes simultaneously. [graceful] departs
    with GOODBYEs instead (default [false] — crashes, as in the paper's
    fault injection). *)

val partition : ?label:string -> time:float -> duration:float -> int -> event
(** [partition ~time ~duration n] — at [time], split endpoints into [n]
    (≥ 2) groups for [duration] (> 0) seconds. *)

val set_base : ?label:string -> time:float -> Netfault.t -> event

val overlay : ?label:string -> time:float -> duration:float -> Netfault.t -> event

val fail_slow :
  ?label:string ->
  ?factor:float ->
  ?extra:float ->
  time:float ->
  duration:float ->
  float ->
  event
(** [fail_slow ~time ~duration f] — at [time], make fraction [f] of the
    active nodes fail-slow (propagation × [factor], default 1, plus
    [extra] seconds, default 0; at least one must be non-trivial) for
    [duration] seconds. *)

val fail_silent : ?label:string -> time:float -> duration:float -> float -> event
(** [fail_silent ~time ~duration f] — fraction [f] of the active nodes
    go mute (receive but never send) for [duration] seconds. *)

val flapping :
  ?label:string ->
  time:float ->
  duration:float ->
  period:float ->
  duty:float ->
  float ->
  event
(** [flapping ~time ~duration ~period ~duty f] — fraction [f] of the
    active nodes cycle down/up ([duty] ∈ (0, 1) of each [period] spent
    down, starting down at injection) for [duration] seconds. *)

val lookup_storm : ?label:string -> time:float -> duration:float -> float -> event
(** [lookup_storm ~time ~duration r] — at [time], every active node adds
    [r] (> 0) lookups/s on top of its configured workload for [duration]
    (> 0) seconds. *)

val flash_crowd : ?label:string -> time:float -> over:float -> int -> event
(** [flash_crowd ~time ~over n] — starting at [time], [n] (≥ 1) fresh
    nodes attempt to join, spread evenly over [over] (≥ 0) seconds. *)

val heal : ?label:string -> float -> event
(** [heal time] — clear all injected network and node faults at
    [time]. *)

val sorted : t -> t
(** Stable-sorted by time (the order {!Harness.Sim.Live} applies it). *)

val describe : action -> string
(** Short human-readable form, e.g. ["crash 25%"], ["partition 2 ways
    for 300s"]. *)
