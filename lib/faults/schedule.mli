(** Declarative, time-stamped fault schedules.

    A schedule is a list of [(time, action)] events the harness injects
    into a running simulation: simultaneous mass crashes, network
    partitions that heal after an interval, swaps of the base loss model
    (e.g. uniform → bursty), and transient link-level overlays. The
    harness interprets the actions ({!Harness.Sim.Live.inject}); this
    module only defines the vocabulary and smart constructors. *)

type action =
  | Crash_fraction of { fraction : float; graceful : bool }
      (** crash this fraction of the currently-active nodes at the same
          instant (rounded to nearest, at least one node when the
          fraction is positive and anyone is alive) *)
  | Set_base of Netfault.t
      (** replace the base loss model (the uniform [loss_rate] process by
          default) from this time on *)
  | Overlay of { fault : Netfault.t; duration : float }
      (** additionally apply [fault] for [duration] seconds, then remove
          it ([infinity] = never heals) *)
  | Partition of { groups : int; duration : float }
      (** split the topology's endpoints uniformly at random into
          [groups] groups, drop all cross-group traffic for [duration]
          seconds, then heal *)
  | Heal  (** remove every overlay and restore the default base model *)

type event = { time : float; label : string; action : action }
(** [label] names the fault episode in trace events and recovery
    metrics. *)

type t = event list

val empty : t

val crash_fraction : ?graceful:bool -> ?label:string -> time:float -> float -> event
(** [crash_fraction ~time f] — at [time], crash fraction [f] (in
    [\[0, 1\]]) of the active nodes simultaneously. [graceful] departs
    with GOODBYEs instead (default [false] — crashes, as in the paper's
    fault injection). *)

val partition : ?label:string -> time:float -> duration:float -> int -> event
(** [partition ~time ~duration n] — at [time], split endpoints into [n]
    (≥ 2) groups for [duration] (> 0) seconds. *)

val set_base : ?label:string -> time:float -> Netfault.t -> event

val overlay : ?label:string -> time:float -> duration:float -> Netfault.t -> event

val heal : ?label:string -> float -> event
(** [heal time] — clear all injected network faults at [time]. *)

val sorted : t -> t
(** Stable-sorted by time (the order {!Harness.Sim.Live} applies it). *)

val describe : action -> string
(** Short human-readable form, e.g. ["crash 25%"], ["partition 2 ways
    for 300s"]. *)
