type verdict = Pass | Mute | Slow of { factor : float; extra : float }
type dir = Send | Recv

type t = {
  desc : string;
  decide : time:float -> dir:dir -> addr:int -> verdict;
}

let none = { desc = "none"; decide = (fun ~time:_ ~dir:_ ~addr:_ -> Pass) }

let member_table addrs =
  let tbl = Hashtbl.create (max 16 (List.length addrs)) in
  List.iter (fun a -> Hashtbl.replace tbl a ()) addrs;
  tbl

let fail_slow ?(factor = 1.0) ?(extra = 0.0) ~addrs () =
  if factor < 1.0 then invalid_arg "Nodefault.fail_slow: factor < 1";
  if extra < 0.0 then invalid_arg "Nodefault.fail_slow: extra < 0";
  if factor = 1.0 && extra = 0.0 then
    invalid_arg "Nodefault.fail_slow: no slowdown (factor 1, extra 0)";
  let victims = member_table addrs in
  {
    desc =
      Printf.sprintf "fail-slow(%d nodes x%.3g +%.3gs)" (Hashtbl.length victims)
        factor extra;
    decide =
      (fun ~time:_ ~dir:_ ~addr ->
        if Hashtbl.mem victims addr then Slow { factor; extra } else Pass);
  }

let fail_silent ~addrs () =
  let victims = member_table addrs in
  {
    desc = Printf.sprintf "fail-silent(%d nodes)" (Hashtbl.length victims);
    decide =
      (fun ~time:_ ~dir ~addr ->
        if dir = Send && Hashtbl.mem victims addr then Mute else Pass);
  }

let flapping ?(phase = 0.0) ~period ~duty ~addrs () =
  if period <= 0.0 then invalid_arg "Nodefault.flapping: period";
  if duty <= 0.0 || duty >= 1.0 then invalid_arg "Nodefault.flapping: duty";
  let victims = member_table addrs in
  let down_for = duty *. period in
  {
    desc =
      Printf.sprintf "flapping(%d nodes, %gs period, %g%% down)"
        (Hashtbl.length victims) period (100.0 *. duty);
    decide =
      (fun ~time ~dir:_ ~addr ->
        if not (Hashtbl.mem victims addr) then Pass
        else begin
          let tau =
            let r = Float.rem (time -. phase) period in
            if r < 0.0 then r +. period else r
          in
          if tau < down_for then Mute else Pass
        end);
  }

let compose = function
  | [] -> none
  | [ t ] -> t
  | ts ->
      {
        desc = String.concat " + " (List.map (fun t -> t.desc) ts);
        decide =
          (fun ~time ~dir ~addr ->
            let rec go factor extra = function
              | [] ->
                  if factor > 1.0 || extra > 0.0 then Slow { factor; extra }
                  else Pass
              | t :: rest -> (
                  match t.decide ~time ~dir ~addr with
                  | Mute -> Mute
                  | Pass -> go factor extra rest
                  | Slow s -> go (factor *. s.factor) (extra +. s.extra) rest)
            in
            go 1.0 0.0 ts);
      }

let describe t = t.desc
let decide t ~time ~dir ~addr = t.decide ~time ~dir ~addr
