(** Typed simulator events.

    One constructor per observable occurrence in the stack: network sends
    / deliveries / drops (with their traffic class), engine timer
    activity, node lifecycle, per-lookup routing hops with the stage of
    the routing rule that chose the hop, per-hop ack timing, and
    failure-detection probes. Every event carries its virtual timestamp;
    node-level events carry the overlay address of the node that emitted
    them. Events serialise to single-line JSON (one per line in a JSONL
    trace) and parse back losslessly. *)

(** Which routing rule chose a lookup's next hop (or delivery). *)
type stage =
  | Leafset  (** key covered by the leaf set *)
  | Table  (** routing-table entry matching one more digit *)
  | Closest  (** fallback: any strictly-closer known peer *)

type drop_reason =
  | Loss  (** dropped by the uniform loss injection *)
  | Dead_destination  (** destination unregistered (crashed) by delivery time *)
  | Faulted  (** dropped by an installed fault model (burst, blackhole, partition) *)
  | Node_fault  (** swallowed by a per-node fault (fail-silent or flapping) *)
  | Congested
      (** rejected by a full bounded queue under the per-node capacity
          model (overload; see {!Netsim.Net.set_capacity}) *)

type body =
  | Send of { src : int; dst : int; cls : string; seq : int option }
      (** a message left [src]; [seq] set when it carries a lookup *)
  | Recv of { src : int; dst : int; cls : string }
  | Drop of {
      src : int;
      dst : int;
      cls : string;
      seq : int option;
      reason : drop_reason;
    }
  | Timer_fired
  | Timer_cancelled
  | Node_join of { addr : int }  (** the node's join completed (active) *)
  | Node_crash of { addr : int }
  | Lookup_hop of { seq : int; addr : int; stage : stage; hops : int; retx : bool }
      (** lookup [seq] was routed (or delivered) at [addr]; [hops] is the
          overlay hop count so far, [retx] marks a per-hop reroute *)
  | Hop_ack of { addr : int; dst : int; rtt : float }
      (** [addr]'s per-hop ack from [dst] arrived after [rtt] seconds *)
  | Ack_timeout of { addr : int; dst : int; waited : float; reroutes : int }
      (** [addr] gave up waiting for [dst]'s per-hop ack *)
  | Probe of { addr : int; target : int; kind : string }
      (** a liveness / distance probe launched ([kind]: "leafset", "rt",
          "distance") *)
  | Fault of { label : string; action : string }
      (** a scheduled fault was injected (or healed): [label] names the
          episode, [action] describes what happened (e.g.
          "crash 25% (30 nodes)", "partition 2 ways", "heal") *)
  | Suspected of { addr : int; target : int; backoff : float }
      (** [addr]'s failure detector quarantined [target] for [backoff]
          seconds after it exhausted probe retries *)
  | Unsuspected of { addr : int; target : int }
      (** [addr] heard directly from suspected [target] and cleared it *)
  | Lookup_retry of { seq : int; addr : int; attempt : int }
      (** origin [addr] re-issued lookup [seq] end-to-end ([attempt] ≥ 1
          counts re-issues) after its e2e timeout expired undelivered *)
  | Queue of { addr : int; cls : string; delay : float; occ : int }
      (** a message to [addr] was queued for [delay] seconds behind the
          per-node capacity model; [occ] is the queue occupancy after
          enqueue (see {!Netsim.Net.set_capacity}) *)

type t = { time : float; body : body }

val stage_name : stage -> string
val drop_reason_name : drop_reason -> string
val kind_name : t -> string
(** The event's JSON tag ("send", "lookup-hop", ...). *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
val pp : Format.formatter -> t -> unit
