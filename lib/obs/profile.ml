let now () = Monotonic_clock.now ()

let on = ref false

(* Phase registry: small and append-only, grown by doubling. *)
let cap = ref 16
let names = ref (Array.make !cap "")
let n_phases = ref 0

(* Per-phase accumulators, indexed by phase id. *)
let calls = ref (Array.make !cap 0)
let self_ns = ref (Array.make !cap 0L)
let total_ns = ref (Array.make !cap 0L)
let depth = ref (Array.make !cap 0)
let incl_start = ref (Array.make !cap 0L)

(* Active-phase stack and the timestamp of the last enter/leave boundary. *)
let stack = ref (Array.make 64 0)
let sp = ref 0
let mark = ref 0L

(* Wall time while enabled: closed intervals folded into [wall_acc],
   the open one starting at [wall_start]. *)
let wall_acc = ref 0L
let wall_start = ref 0L

let grow () =
  let old = !cap in
  cap := old * 2;
  let extend a zero =
    let b = Array.make !cap zero in
    Array.blit !a 0 b 0 old;
    a := b
  in
  extend names "";
  extend calls 0;
  extend self_ns 0L;
  extend total_ns 0L;
  extend depth 0;
  extend incl_start 0L

let phase name =
  let rec find i = if i >= !n_phases then -1 else if !names.(i) = name then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then i
  else begin
    if !n_phases = !cap then grow ();
    let id = !n_phases in
    !names.(id) <- name;
    n_phases := id + 1;
    id
  end

let phase_name id = !names.(id)

let set_enabled v =
  if v && not !on then begin
    let t = now () in
    wall_start := t;
    mark := t;
    on := true
  end
  else if (not v) && !on then begin
    let t = now () in
    (* close any phases left open so self-time stays a partition *)
    while !sp > 0 do
      let id = !stack.(!sp - 1) in
      !self_ns.(id) <- Int64.add !self_ns.(id) (Int64.sub t !mark);
      mark := t;
      !depth.(id) <- !depth.(id) - 1;
      if !depth.(id) = 0 then
        !total_ns.(id) <- Int64.add !total_ns.(id) (Int64.sub t !incl_start.(id));
      decr sp
    done;
    wall_acc := Int64.add !wall_acc (Int64.sub t !wall_start);
    on := false
  end

let enabled () = !on

let enter id =
  if !on then begin
    let t = now () in
    if !sp > 0 then begin
      let parent = !stack.(!sp - 1) in
      !self_ns.(parent) <- Int64.add !self_ns.(parent) (Int64.sub t !mark)
    end;
    if !sp = Array.length !stack then begin
      let b = Array.make (2 * !sp) 0 in
      Array.blit !stack 0 b 0 !sp;
      stack := b
    end;
    !stack.(!sp) <- id;
    incr sp;
    !calls.(id) <- !calls.(id) + 1;
    if !depth.(id) = 0 then !incl_start.(id) <- t;
    !depth.(id) <- !depth.(id) + 1;
    mark := t
  end

let leave id =
  if !on && !sp > 0 then begin
    let t = now () in
    !self_ns.(id) <- Int64.add !self_ns.(id) (Int64.sub t !mark);
    !depth.(id) <- !depth.(id) - 1;
    if !depth.(id) = 0 then
      !total_ns.(id) <- Int64.add !total_ns.(id) (Int64.sub t !incl_start.(id));
    decr sp;
    mark := t
  end

let reset () =
  for i = 0 to !n_phases - 1 do
    !calls.(i) <- 0;
    !self_ns.(i) <- 0L;
    !total_ns.(i) <- 0L;
    !depth.(i) <- 0
  done;
  sp := 0;
  wall_acc := 0L;
  let t = now () in
  wall_start := t;
  mark := t

type entry = { name : string; calls : int; self_ns : int64; total_ns : int64 }
type report = { wall_ns : int64; entries : entry list; unattributed_ns : int64 }

let report () =
  let wall =
    if !on then Int64.add !wall_acc (Int64.sub (now ()) !wall_start) else !wall_acc
  in
  let entries = ref [] in
  let self_sum = ref 0L in
  for i = !n_phases - 1 downto 0 do
    if !calls.(i) > 0 then begin
      self_sum := Int64.add !self_sum !self_ns.(i);
      entries :=
        { name = !names.(i); calls = !calls.(i); self_ns = !self_ns.(i); total_ns = !total_ns.(i) }
        :: !entries
    end
  done;
  let entries =
    List.sort (fun a b -> Int64.compare b.self_ns a.self_ns) !entries
  in
  let unattributed = Int64.sub wall !self_sum in
  let unattributed = if Int64.compare unattributed 0L < 0 then 0L else unattributed in
  { wall_ns = wall; entries; unattributed_ns = unattributed }

let s_of_ns ns = Int64.to_float ns /. 1e9

let pp_report fmt r =
  let wall_s = s_of_ns r.wall_ns in
  let pct ns = if wall_s > 0.0 then 100.0 *. s_of_ns ns /. wall_s else 0.0 in
  Format.fprintf fmt "@[<v>profile: wall %.3fs@," wall_s;
  Format.fprintf fmt "  %-24s %10s %10s %10s %6s@," "phase" "calls" "self(s)" "total(s)" "self%";
  List.iter
    (fun e ->
      Format.fprintf fmt "  %-24s %10d %10.3f %10.3f %5.1f%%@," e.name e.calls
        (s_of_ns e.self_ns) (s_of_ns e.total_ns) (pct e.self_ns))
    r.entries;
  Format.fprintf fmt "  %-24s %10s %10.3f %10s %5.1f%%@]" "(unattributed)" ""
    (s_of_ns r.unattributed_ns) "" (pct r.unattributed_ns)

let report_to_json r =
  Json.Obj
    [
      ("total_wall_s", Json.Float (s_of_ns r.wall_ns));
      ( "phases",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("name", Json.String e.name);
                   ("calls", Json.Int e.calls);
                   ("self_s", Json.Float (s_of_ns e.self_ns));
                   ("total_s", Json.Float (s_of_ns e.total_ns));
                 ])
             r.entries) );
      ("unattributed_s", Json.Float (s_of_ns r.unattributed_ns));
    ]
