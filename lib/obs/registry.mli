(** A pull-based registry of named runtime counters and gauges.

    Components expose cheap accessor closures (reading the plain mutable
    counters they maintain anyway); the registry samples them on demand
    for a [pp] dump or a JSON snapshot. Registration order is preserved
    in dumps so related metrics stay adjacent. *)

type value = Int of int | Float of float

type t

val create : unit -> t

val gauge_i : t -> string -> (unit -> int) -> unit
val gauge_f : t -> string -> (unit -> float) -> unit
(** Re-registering a name raises [Invalid_argument]: silent shadowing
    hid wiring bugs where two components fought over one metric. *)

val dump : t -> (string * value) list
(** Sample every metric, in registration order. *)

val find : t -> string -> value option

val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
(** An object mapping metric names to their sampled values. *)
