type t = {
  alpha : float;
  lo : float;
  hi : float;
  gamma : float;
  inv_lg : float;  (* 1 / ln gamma, hoisted out of [add] *)
  counts : int array;  (* counts.(0) = underflow; counts.(1..nb) = log buckets *)
  mutable n : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
}

let create ?(alpha = 0.01) ?(lo = 1e-6) ?(hi = 1e4) () =
  if not (alpha > 0.0 && alpha < 1.0) then invalid_arg "Hist.create: alpha";
  if not (lo > 0.0 && hi > lo) then invalid_arg "Hist.create: range";
  let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
  let lg = log gamma in
  let nb = int_of_float (ceil (log (hi /. lo) /. lg)) in
  {
    alpha;
    lo;
    hi;
    gamma;
    inv_lg = 1.0 /. lg;
    counts = Array.make (nb + 1) 0;
    n = 0;
    sum = 0.0;
    minv = infinity;
    maxv = neg_infinity;
  }

let index t v =
  if v <= t.lo then 0
  else begin
    let nb = Array.length t.counts - 1 in
    let i = int_of_float (ceil (log (v /. t.lo) *. t.inv_lg)) in
    if i < 1 then 1 else if i > nb then nb else i
  end

let add t v =
  if not (v >= 0.0) (* catches nan too *) then invalid_arg "Hist.add";
  t.counts.(index t v) <- t.counts.(index t v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v < t.minv then t.minv <- v;
  if v > t.maxv then t.maxv <- v

let count t = t.n
let sum t = t.sum
let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n
let min_value t = if t.n = 0 then nan else t.minv
let max_value t = if t.n = 0 then nan else t.maxv
let alpha t = t.alpha
let num_buckets t = Array.length t.counts

(* Midpoint (in log space) of bucket i's range (lo*gamma^(i-1), lo*gamma^i]:
   the estimate 2*lo*gamma^i / (1+gamma) is within alpha of any value in
   the bucket. *)
let bucket_estimate t i =
  if i = 0 then t.minv
  else 2.0 *. t.lo *. (t.gamma ** float_of_int i) /. (1.0 +. t.gamma)

let quantile t q =
  if t.n = 0 then nan
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    let target = q *. float_of_int (t.n - 1) in
    let i = ref 0 and cum = ref t.counts.(0) in
    while float_of_int !cum <= target do
      incr i;
      cum := !cum + t.counts.(!i)
    done;
    let v = bucket_estimate t !i in
    (* tracked extremes are exact; clamping also bounds overflow clamps *)
    if v < t.minv then t.minv else if v > t.maxv then t.maxv else v
  end

let percentile t p = quantile t (p /. 100.0)

let merge a b =
  if a.alpha <> b.alpha || a.lo <> b.lo || a.hi <> b.hi then
    invalid_arg "Hist.merge: parameter mismatch";
  let m = create ~alpha:a.alpha ~lo:a.lo ~hi:a.hi () in
  Array.iteri (fun i c -> m.counts.(i) <- c + b.counts.(i)) a.counts;
  m.n <- a.n + b.n;
  m.sum <- a.sum +. b.sum;
  m.minv <- Float.min a.minv b.minv;
  m.maxv <- Float.max a.maxv b.maxv;
  m

let summary_json t =
  let f v = Json.Float (if Float.is_nan v then 0.0 else v) in
  Json.Obj
    [
      ("count", Json.Int t.n);
      ("min", f (min_value t));
      ("max", f (max_value t));
      ("mean", f (mean t));
      ("p50", f (percentile t 50.0));
      ("p90", f (percentile t 90.0));
      ("p99", f (percentile t 99.0));
      ("p999", f (percentile t 99.9));
      ("alpha", Json.Float t.alpha);
    ]
