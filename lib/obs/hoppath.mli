(** Per-lookup hop-path reconstruction.

    A node emits one {!Event.Lookup_hop} each time it routes (or
    delivers) a lookup, so grouping those events by sequence number and
    ordering by time reproduces the exact path the lookup took — which
    node handled it at each step, under which routing rule, and whether
    the transmission was a per-hop reroute. Ack/retransmit timing for the
    same lookup comes from the [Hop_ack] / [Ack_timeout] events emitted
    by the node waiting on each hop. *)

type hop = {
  time : float;
  addr : int;
  stage : Event.stage;
  hops : int;  (** the lookup's overlay hop counter when handled here *)
  retx : bool;
}

type t = {
  seq : int;
  path : hop list;  (** time-ordered; the last entry delivered (or lost) *)
}

val of_events : Event.t list -> t list
(** Group every [Lookup_hop] in the (arbitrary-order) event list by
    sequence number. Paths come back sorted by [seq], each path sorted by
    time (ties keep emission order). *)

val find : Event.t list -> seq:int -> hop list
(** The time-ordered path of one lookup; [[]] if never seen. *)

val length : t -> int
(** Number of nodes the lookup visited (path entries). *)
