module Ring = struct
  type 'a t = {
    buf : 'a option array;
    mutable start : int; (* index of oldest element *)
    mutable len : int;
    mutable evicted : int;
  }

  let create ~capacity =
    if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
    { buf = Array.make capacity None; start = 0; len = 0; evicted = 0 }

  let capacity t = Array.length t.buf
  let length t = t.len
  let evicted t = t.evicted

  let push t x =
    let cap = capacity t in
    if t.len = cap then begin
      (* overwrite the oldest slot *)
      t.buf.(t.start) <- Some x;
      t.start <- (t.start + 1) mod cap;
      t.evicted <- t.evicted + 1
    end
    else begin
      t.buf.((t.start + t.len) mod cap) <- Some x;
      t.len <- t.len + 1
    end

  let to_list t =
    List.init t.len (fun i ->
        match t.buf.((t.start + i) mod capacity t) with
        | Some x -> x
        | None -> assert false)

  let clear t =
    Array.fill t.buf 0 (Array.length t.buf) None;
    t.start <- 0;
    t.len <- 0
end

type t = Memory of Event.t Ring.t | Jsonl of jsonl
       | Fn of (Event.t -> unit)

and jsonl = { oc : out_channel; owned : bool; mutable n_written : int }

let memory ~capacity = Memory (Ring.create ~capacity)
let jsonl_channel oc = Jsonl { oc; owned = false; n_written = 0 }
let jsonl_file path = Jsonl { oc = open_out path; owned = true; n_written = 0 }

let emit t ev =
  match t with
  | Memory r -> Ring.push r ev
  | Jsonl j ->
      output_string j.oc (Json.to_string (Event.to_json ev));
      output_char j.oc '\n';
      j.n_written <- j.n_written + 1
  | Fn f -> f ev

let written j = j.n_written
let flush = function Jsonl j -> flush j.oc | Memory _ | Fn _ -> ()

let close = function
  | Jsonl j -> if j.owned then close_out j.oc else Stdlib.flush j.oc
  | Memory _ | Fn _ -> ()
