(** Fixed-memory log-bucketed histograms with bounded relative error.

    DDSketch-style: for accuracy parameter [alpha], bucket boundaries
    grow geometrically by [gamma = (1 + alpha) / (1 - alpha)], so any
    quantile estimate [v'] of a true value [v] inside the tracked range
    satisfies [|v' - v| <= alpha * v]. Memory is O(log(hi/lo) / alpha)
    and independent of how many samples are recorded — the point of
    using this in {!Overlay_metrics} instead of unbounded sample lists.

    Values at or below [lo] land in a dedicated underflow bucket whose
    quantiles report the tracked minimum; values above [hi] clamp into
    the top bucket (quantiles there report the tracked maximum), so the
    relative-error bound holds for values in ([lo], [hi]] and the
    extremes stay exact. Defaults (alpha = 0.01, lo = 1e-6, hi = 1e4)
    suit latencies in seconds: ~1150 buckets, 1% error, from 1µs to
    ~2.8 hours. *)

type t

val create : ?alpha:float -> ?lo:float -> ?hi:float -> unit -> t
(** Raises [Invalid_argument] unless [0 < alpha < 1] and [0 < lo < hi]. *)

val add : t -> float -> unit
(** Record one sample. Non-finite and negative values raise
    [Invalid_argument] (all our metrics are non-negative). *)

val count : t -> int
val sum : t -> float
val mean : t -> float
val min_value : t -> float
(** Exact tracked minimum; [nan] when empty. *)

val max_value : t -> float
(** Exact tracked maximum; [nan] when empty. *)

val alpha : t -> float
val num_buckets : t -> int

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0, 1]; [nan] when empty. The estimate
    targets the order statistic of rank [round (q * (n - 1))] and is
    within relative error [alpha] of it for in-range values. *)

val percentile : t -> float -> float
(** [percentile t p = quantile t (p /. 100.)]. *)

val merge : t -> t -> t
(** Combine two histograms into a fresh one. Raises [Invalid_argument]
    if they were created with different [alpha]/[lo]/[hi]. Associative
    and commutative. *)

val summary_json : t -> Json.t
(** [{count; min; max; mean; p50; p90; p99; p999; alpha}] — the form
    embedded in run manifests. *)
