type hop = { time : float; addr : int; stage : Event.stage; hops : int; retx : bool }
type t = { seq : int; path : hop list }

let hops_by_seq events =
  let tbl : (int, hop list ref) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (ev : Event.t) ->
      match ev.Event.body with
      | Event.Lookup_hop { seq; addr; stage; hops; retx } ->
          let h = { time = ev.Event.time; addr; stage; hops; retx } in
          let cell =
            match Hashtbl.find_opt tbl seq with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.add tbl seq c;
                c
          in
          cell := h :: !cell
      | _ -> ())
    events;
  tbl

(* newest-first accumulation + List.rev gives a stable time sort for the
   common case of already-ordered input; List.stable_sort finishes the job
   when events arrive shuffled *)
let order hops =
  List.stable_sort (fun a b -> Float.compare a.time b.time) (List.rev hops)

let of_events events =
  hops_by_seq events
  |> (fun tbl -> Hashtbl.fold (fun seq cell acc -> (seq, !cell) :: acc) tbl [])
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map (fun (seq, hops) -> { seq; path = order hops })

let find events ~seq =
  match Hashtbl.find_opt (hops_by_seq events) seq with
  | Some cell -> order !cell
  | None -> []

let length t = List.length t.path
