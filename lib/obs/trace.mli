(** The tracing front door handed to instrumented components.

    Hot-path contract: instrumentation sites guard event construction on
    {!enabled}, so the {!disabled} trace costs a single branch and no
    allocation per site. An enabled trace forwards every event (passing
    its optional filter) to its {!Sink}. *)

type t

val disabled : t
(** The shared null trace: {!enabled} is [false], {!emit} is a no-op. *)

val create : ?filter:(Event.t -> bool) -> Sink.t -> t
(** [filter] drops events for which it returns [false] before they reach
    the sink (e.g. excluding engine timer events from a JSONL file). *)

val enabled : t -> bool
val emit : t -> Event.t -> unit

val events : t -> Event.t list
(** Contents (oldest first) of a [Memory] sink; [[]] for other sinks. *)

val sink : t -> Sink.t option
(** [None] for {!disabled}. *)

val flush : t -> unit
val close : t -> unit
