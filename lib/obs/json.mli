(** Minimal JSON values: enough to write and read back the JSONL traces
    and counter dumps without an external dependency. Numbers are kept as
    [Int] when they parse as integers, [Float] otherwise; the accessors
    coerce between the two. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Single-line rendering (no trailing newline). Floats round-trip
    exactly ([%.17g]). *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing whitespace allowed, anything else is
    an error. *)

(** Accessors; all return [None] on a type mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
(** Accepts [Int] too. *)

val to_str : t -> string option
val to_bool : t -> bool option
