type stage = Leafset | Table | Closest
type drop_reason = Loss | Dead_destination | Faulted | Node_fault | Congested

type body =
  | Send of { src : int; dst : int; cls : string; seq : int option }
  | Recv of { src : int; dst : int; cls : string }
  | Drop of {
      src : int;
      dst : int;
      cls : string;
      seq : int option;
      reason : drop_reason;
    }
  | Timer_fired
  | Timer_cancelled
  | Node_join of { addr : int }
  | Node_crash of { addr : int }
  | Lookup_hop of { seq : int; addr : int; stage : stage; hops : int; retx : bool }
  | Hop_ack of { addr : int; dst : int; rtt : float }
  | Ack_timeout of { addr : int; dst : int; waited : float; reroutes : int }
  | Probe of { addr : int; target : int; kind : string }
  | Fault of { label : string; action : string }
  | Suspected of { addr : int; target : int; backoff : float }
  | Unsuspected of { addr : int; target : int }
  | Lookup_retry of { seq : int; addr : int; attempt : int }
  | Queue of { addr : int; cls : string; delay : float; occ : int }

type t = { time : float; body : body }

let stage_name = function Leafset -> "leafset" | Table -> "table" | Closest -> "closest"

let stage_of_name = function
  | "leafset" -> Some Leafset
  | "table" -> Some Table
  | "closest" -> Some Closest
  | _ -> None

let drop_reason_name = function
  | Loss -> "loss"
  | Dead_destination -> "dead-dst"
  | Faulted -> "fault"
  | Node_fault -> "node-fault"
  | Congested -> "congestion"

let drop_reason_of_name = function
  | "loss" -> Some Loss
  | "dead-dst" -> Some Dead_destination
  | "fault" -> Some Faulted
  | "node-fault" -> Some Node_fault
  | "congestion" -> Some Congested
  | _ -> None

let kind_name t =
  match t.body with
  | Send _ -> "send"
  | Recv _ -> "recv"
  | Drop _ -> "drop"
  | Timer_fired -> "timer-fired"
  | Timer_cancelled -> "timer-cancelled"
  | Node_join _ -> "node-join"
  | Node_crash _ -> "node-crash"
  | Lookup_hop _ -> "lookup-hop"
  | Hop_ack _ -> "hop-ack"
  | Ack_timeout _ -> "ack-timeout"
  | Probe _ -> "probe"
  | Fault _ -> "fault"
  | Suspected _ -> "suspected"
  | Unsuspected _ -> "unsuspected"
  | Lookup_retry _ -> "lookup-retry"
  | Queue _ -> "queue"

let seq_field = function None -> [] | Some s -> [ ("seq", Json.Int s) ]

let to_json t =
  let fields =
    match t.body with
    | Send { src; dst; cls; seq } ->
        [ ("src", Json.Int src); ("dst", Json.Int dst); ("cls", Json.String cls) ]
        @ seq_field seq
    | Recv { src; dst; cls } ->
        [ ("src", Json.Int src); ("dst", Json.Int dst); ("cls", Json.String cls) ]
    | Drop { src; dst; cls; seq; reason } ->
        [
          ("src", Json.Int src);
          ("dst", Json.Int dst);
          ("cls", Json.String cls);
          ("reason", Json.String (drop_reason_name reason));
        ]
        @ seq_field seq
    | Timer_fired | Timer_cancelled -> []
    | Node_join { addr } | Node_crash { addr } -> [ ("addr", Json.Int addr) ]
    | Lookup_hop { seq; addr; stage; hops; retx } ->
        [
          ("seq", Json.Int seq);
          ("addr", Json.Int addr);
          ("stage", Json.String (stage_name stage));
          ("hops", Json.Int hops);
          ("retx", Json.Bool retx);
        ]
    | Hop_ack { addr; dst; rtt } ->
        [ ("addr", Json.Int addr); ("dst", Json.Int dst); ("rtt", Json.Float rtt) ]
    | Ack_timeout { addr; dst; waited; reroutes } ->
        [
          ("addr", Json.Int addr);
          ("dst", Json.Int dst);
          ("waited", Json.Float waited);
          ("reroutes", Json.Int reroutes);
        ]
    | Probe { addr; target; kind } ->
        [ ("addr", Json.Int addr); ("target", Json.Int target); ("kind", Json.String kind) ]
    | Fault { label; action } ->
        [ ("label", Json.String label); ("action", Json.String action) ]
    | Suspected { addr; target; backoff } ->
        [
          ("addr", Json.Int addr);
          ("target", Json.Int target);
          ("backoff", Json.Float backoff);
        ]
    | Unsuspected { addr; target } ->
        [ ("addr", Json.Int addr); ("target", Json.Int target) ]
    | Lookup_retry { seq; addr; attempt } ->
        [ ("seq", Json.Int seq); ("addr", Json.Int addr); ("attempt", Json.Int attempt) ]
    | Queue { addr; cls; delay; occ } ->
        [
          ("addr", Json.Int addr);
          ("cls", Json.String cls);
          ("delay", Json.Float delay);
          ("occ", Json.Int occ);
        ]
  in
  Json.Obj
    (("t", Json.Float t.time) :: ("ev", Json.String (kind_name t)) :: fields)

let of_json j =
  let ( let* ) o f = match o with Some v -> f v | None -> Error "missing field" in
  let int k = Option.bind (Json.member k j) Json.to_int in
  let flt k = Option.bind (Json.member k j) Json.to_float in
  let str k = Option.bind (Json.member k j) Json.to_str in
  let bool k = Option.bind (Json.member k j) Json.to_bool in
  let seq_opt = int "seq" in
  let* time = flt "t" in
  let* kind = str "ev" in
  let body =
    match kind with
    | "send" ->
        let* src = int "src" in
        let* dst = int "dst" in
        let* cls = str "cls" in
        Ok (Send { src; dst; cls; seq = seq_opt })
    | "recv" ->
        let* src = int "src" in
        let* dst = int "dst" in
        let* cls = str "cls" in
        Ok (Recv { src; dst; cls })
    | "drop" ->
        let* src = int "src" in
        let* dst = int "dst" in
        let* cls = str "cls" in
        let* reason = Option.bind (str "reason") drop_reason_of_name in
        Ok (Drop { src; dst; cls; seq = seq_opt; reason })
    | "timer-fired" -> Ok Timer_fired
    | "timer-cancelled" -> Ok Timer_cancelled
    | "node-join" ->
        let* addr = int "addr" in
        Ok (Node_join { addr })
    | "node-crash" ->
        let* addr = int "addr" in
        Ok (Node_crash { addr })
    | "lookup-hop" ->
        let* seq = int "seq" in
        let* addr = int "addr" in
        let* stage = Option.bind (str "stage") stage_of_name in
        let* hops = int "hops" in
        let* retx = bool "retx" in
        Ok (Lookup_hop { seq; addr; stage; hops; retx })
    | "hop-ack" ->
        let* addr = int "addr" in
        let* dst = int "dst" in
        let* rtt = flt "rtt" in
        Ok (Hop_ack { addr; dst; rtt })
    | "ack-timeout" ->
        let* addr = int "addr" in
        let* dst = int "dst" in
        let* waited = flt "waited" in
        let* reroutes = int "reroutes" in
        Ok (Ack_timeout { addr; dst; waited; reroutes })
    | "probe" ->
        let* addr = int "addr" in
        let* target = int "target" in
        let* kind = str "kind" in
        Ok (Probe { addr; target; kind })
    | "fault" ->
        let* label = str "label" in
        let* action = str "action" in
        Ok (Fault { label; action })
    | "suspected" ->
        let* addr = int "addr" in
        let* target = int "target" in
        let* backoff = flt "backoff" in
        Ok (Suspected { addr; target; backoff })
    | "unsuspected" ->
        let* addr = int "addr" in
        let* target = int "target" in
        Ok (Unsuspected { addr; target })
    | "lookup-retry" ->
        let* seq = int "seq" in
        let* addr = int "addr" in
        let* attempt = int "attempt" in
        Ok (Lookup_retry { seq; addr; attempt })
    | "queue" ->
        let* addr = int "addr" in
        let* cls = str "cls" in
        let* delay = flt "delay" in
        let* occ = int "occ" in
        Ok (Queue { addr; cls; delay; occ })
    | other -> Error (Printf.sprintf "unknown event kind %S" other)
  in
  match body with Ok body -> Ok { time; body } | Error _ as e -> e

let pp fmt t =
  let j = to_json t in
  Format.pp_print_string fmt (Json.to_string j)
