type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else if Float.is_nan f then "null"
  else if f = infinity then "1e999"
  else if f = neg_infinity then "-1e999"
  else Printf.sprintf "%.17g" f

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_to_string f)
    | String s ->
        Buffer.add_char b '"';
        escape b s;
        Buffer.add_char b '"'
    | List vs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            go v)
          vs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            escape b k;
            Buffer.add_string b "\":";
            go v)
          kvs;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

exception Parse of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some '/' -> Buffer.add_char b '/'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
          | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* ASCII only; anything else becomes '?' (we never emit it) *)
              Buffer.add_char b (if code < 0x80 then Char.chr code else '?');
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec pairs acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                pairs ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (pairs [])
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
