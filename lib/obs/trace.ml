type t = { enabled : bool; sink : Sink.t option; filter : Event.t -> bool }

let disabled = { enabled = false; sink = None; filter = (fun _ -> true) }
let create ?(filter = fun _ -> true) sink = { enabled = true; sink = Some sink; filter }
let enabled t = t.enabled

let ph_trace = Profile.phase "obs.trace"

let emit t ev =
  if t.enabled && t.filter ev then
    match t.sink with
    | Some s ->
        if !Profile.on then begin
          Profile.enter ph_trace;
          Sink.emit s ev;
          Profile.leave ph_trace
        end
        else Sink.emit s ev
    | None -> ()

let events t =
  match t.sink with Some (Sink.Memory r) -> Sink.Ring.to_list r | Some _ | None -> []

let sink t = t.sink
let flush t = match t.sink with Some s -> Sink.flush s | None -> ()
let close t = match t.sink with Some s -> Sink.close s | None -> ()
