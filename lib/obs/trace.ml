type t = { enabled : bool; sink : Sink.t option; filter : Event.t -> bool }

let disabled = { enabled = false; sink = None; filter = (fun _ -> true) }
let create ?(filter = fun _ -> true) sink = { enabled = true; sink = Some sink; filter }
let enabled t = t.enabled

let emit t ev =
  if t.enabled && t.filter ev then
    match t.sink with Some s -> Sink.emit s ev | None -> ()

let events t =
  match t.sink with Some (Sink.Memory r) -> Sink.Ring.to_list r | Some _ | None -> []

let sink t = t.sink
let flush t = match t.sink with Some s -> Sink.flush s | None -> ()
let close t = match t.sink with Some s -> Sink.close s | None -> ()
