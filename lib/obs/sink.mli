(** Event sinks: where a {!Trace} puts the events it is handed.

    Three implementations: a bounded in-memory ring buffer (tests,
    interactive inspection), a JSONL writer (offline analysis — one
    {!Event.to_json} line per event), and a callback for custom
    consumers. The null case lives in {!Trace} as the disabled trace:
    hook sites guard on {!Trace.enabled}, so a disabled trace costs one
    branch and no allocation. *)

module Ring : sig
  (** Bounded FIFO over anything; on overflow the oldest element is
      evicted (and counted). *)

  type 'a t

  val create : capacity:int -> 'a t
  (** [capacity] must be positive. *)

  val push : 'a t -> 'a -> unit
  val length : 'a t -> int
  val capacity : 'a t -> int

  val evicted : 'a t -> int
  (** Elements pushed out by overflow since creation. *)

  val to_list : 'a t -> 'a list
  (** Oldest first. *)

  val clear : 'a t -> unit
end

type t =
  | Memory of Event.t Ring.t
  | Jsonl of jsonl
  | Fn of (Event.t -> unit)

and jsonl

val memory : capacity:int -> t
val jsonl_channel : out_channel -> t

val jsonl_file : string -> t
(** Opens (truncates) [path]; remember to {!close}. *)

val emit : t -> Event.t -> unit
val written : jsonl -> int
(** Lines written so far. *)

val flush : t -> unit

val close : t -> unit
(** Flushes; closes the channel of a [Jsonl] sink opened by
    {!jsonl_file} (a [jsonl_channel] sink is only flushed — the caller
    owns the channel). *)
