type value = Int of int | Float of float
type t = { mutable items : (string * (unit -> value)) list (* reversed *) }

let create () = { items = [] }

let register t name read =
  if List.mem_assoc name t.items then
    invalid_arg (Printf.sprintf "Registry.register: duplicate metric %S" name)
  else t.items <- (name, read) :: t.items

let gauge_i t name read = register t name (fun () -> Int (read ()))
let gauge_f t name read = register t name (fun () -> Float (read ()))
let dump t = List.rev_map (fun (name, read) -> (name, read ())) t.items
let find t name = Option.map (fun read -> read ()) (List.assoc_opt name t.items)

let pp fmt t =
  Format.pp_open_vbox fmt 0;
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Format.pp_print_cut fmt ();
      match v with
      | Int n -> Format.fprintf fmt "%-32s %d" name n
      | Float f -> Format.fprintf fmt "%-32s %.6g" name f)
    (dump t);
  Format.pp_close_box fmt ()

let to_json t =
  Json.Obj
    (List.map
       (fun (name, v) ->
         (name, match v with Int n -> Json.Int n | Float f -> Json.Float f))
       (dump t))
