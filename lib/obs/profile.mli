(** Self-profiling: hierarchical phase timers over wall-clock time.

    Unlike {!Trace} (which records what the *simulated system* did on the
    virtual clock), this module measures where the *simulator itself*
    spends real time: engine dispatch vs network model vs protocol
    handlers vs tracing overhead.

    The profiler is a process-wide singleton so hot paths pay no handle
    plumbing. Phases are registered once by name ({!phase} returns a
    dense integer id); instrumentation sites guard on the public {!on}
    flag so the disabled path costs one load and one branch:

    {[
      let ph_send = Profile.phase "netsim.send"

      let send t msg =
        if !Profile.on then begin
          Profile.enter ph_send;
          send_inner t msg;
          Profile.leave ph_send
        end
        else send_inner t msg
    ]}

    Accounting uses boundary stamps: every [enter]/[leave] charges the
    interval since the previous boundary to the phase that was running
    ("self" time, which partitions wall time and sums without double
    counting), and separately accumulates inclusive time per phase on
    outermost entries. Wall time is measured from {!set_enabled}[ true];
    the remainder not inside any phase is reported as unattributed.

    Timestamps come from the monotonic clock (ns); [enter]+[leave]
    together cost ~100ns, so phases should wrap work that is at least
    microseconds per call. Not reentrancy-safe across threads. *)

val on : bool ref
(** The master switch, exposed as a [ref] so call sites can guard with a
    single [if !Profile.on then ...]. Flip it with {!set_enabled} (which
    also book-keeps wall time), never by assignment. *)

val set_enabled : bool -> unit
(** Turn profiling on or off. Enabling stamps the wall-clock origin;
    disabling folds the elapsed interval into the accumulated wall time.
    Enabling while already enabled is a no-op (likewise disabling). *)

val enabled : unit -> bool

val phase : string -> int
(** [phase name] registers (or looks up) a phase and returns its id.
    Idempotent: the same name always yields the same id. Call it once at
    module initialisation, not on the hot path. *)

val phase_name : int -> string

val enter : int -> unit
(** Begin a phase. No-op when disabled. Phases nest: entering [b] while
    inside [a] suspends [a]'s self-time accumulation until [b] leaves. *)

val leave : int -> unit
(** End the innermost phase, which must be the one passed (checked only
    implicitly: mismatched pairs corrupt attribution, not memory).
    No-op when disabled. *)

type entry = {
  name : string;
  calls : int;
  self_ns : int64;  (** time inside this phase, excluding nested phases *)
  total_ns : int64;  (** inclusive time over outermost entries *)
}

type report = {
  wall_ns : int64;  (** wall time with profiling enabled *)
  entries : entry list;  (** phases with [calls > 0], by self time desc *)
  unattributed_ns : int64;  (** [wall_ns] minus the sum of self times *)
}

val reset : unit -> unit
(** Zero all accumulators and the wall clock (phase registrations are
    kept). If enabled, the wall origin restarts now. *)

val report : unit -> report

val pp_report : Format.formatter -> report -> unit
(** Human-readable breakdown: per-phase self/total/calls and the share
    of wall time each phase's self time represents. *)

val report_to_json : report -> Json.t
