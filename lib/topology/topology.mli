(** Network topology models with endpoint-to-endpoint delay oracles.

    A topology exposes [n_endpoints] attachment points for overlay nodes
    and a one-way propagation delay between any two of them (seconds).
    Round-trip time — the proximity metric used by the protocol — is twice
    the one-way delay.

    Three models mirror the paper's §5.1:
    - {!transit_stub}: GATech-style hierarchical transit-stub network
      (default dimensions 10 transit domains × 5 routers, 10 stub domains
      per transit router × 10 routers = 5050 routers);
    - {!as_graph}: Mercator-style autonomous-system hierarchy where the
      metric is router hop count;
    - {!corpnet}: small corporate WAN (298 routers, measured-RTT style).

    Shortest paths are computed on demand (Dijkstra per source router) and
    cached. *)

module Graph = Graph

type t

val name : t -> string
val n_endpoints : t -> int

val delay : t -> int -> int -> float
(** One-way delay in seconds between two endpoints. [delay t e e = 0]. *)

val rtt : t -> int -> int -> float
(** [2 * delay]. *)

val n_routers : t -> int

val constant : n_endpoints:int -> delay:float -> t
(** Every distinct pair at the same one-way delay (test topology). *)

val transit_stub :
  ?transit_domains:int ->
  ?routers_per_transit:int ->
  ?stubs_per_transit_router:int ->
  ?routers_per_stub:int ->
  rng:Repro_util.Rng.t ->
  n_endpoints:int ->
  unit ->
  t
(** GATech-style topology. Endpoints attach to random stub routers by a
    1 ms LAN link. Defaults give the paper's 5050 routers; pass smaller
    dimensions for quick runs. *)

val as_graph :
  ?n_as:int ->
  ?routers_per_as:int ->
  ?hop_delay:float ->
  rng:Repro_util.Rng.t ->
  n_endpoints:int ->
  unit ->
  t
(** Mercator-style topology: hierarchical AS overlay, proximity = hop
    count (each hop costs [hop_delay] seconds, default 2 ms). Endpoints
    attach directly to random routers. *)

val corpnet :
  ?n_routers:int ->
  ?n_hubs:int ->
  rng:Repro_util.Rng.t ->
  n_endpoints:int ->
  unit ->
  t
(** CorpNet-style topology: [n_hubs] WAN core routers (default 12) plus
    campus routers (default total 298), endpoints on 1 ms LAN links. *)
