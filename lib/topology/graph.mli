(** Undirected weighted router graph with single-source shortest paths. *)

type t

val create : int -> t
(** [create n] — graph on vertices [0 .. n-1], no edges. *)

val n : t -> int
val n_edges : t -> int

val add_edge : t -> int -> int -> float -> unit
(** Undirected edge with a positive weight (seconds of one-way delay, or
    1.0 when the metric is hop count). Parallel edges keep the minimum
    weight. Self-loops are ignored. *)

val neighbors : t -> int -> (int * float) list

val dijkstra : t -> int -> float array
(** Distances from the source to every vertex; [infinity] when
    unreachable. *)

val connected : t -> bool

val ensure_connected : t -> Repro_util.Rng.t -> weight:(unit -> float) -> unit
(** Add random edges between components until the graph is connected. *)
