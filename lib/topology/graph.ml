type t = {
  adj : (int, float) Hashtbl.t array; (* neighbor -> weight *)
  mutable edges : int;
}

let create n =
  if n <= 0 then invalid_arg "Graph.create";
  { adj = Array.init n (fun _ -> Hashtbl.create 4); edges = 0 }

let n t = Array.length t.adj
let n_edges t = t.edges

let add_edge t u v w =
  if u = v then ()
  else begin
    if u < 0 || v < 0 || u >= n t || v >= n t then invalid_arg "Graph.add_edge";
    if w <= 0.0 then invalid_arg "Graph.add_edge: weight must be positive";
    let set a b =
      match Hashtbl.find_opt t.adj.(a) b with
      | Some old when old <= w -> false
      | Some _ ->
          Hashtbl.replace t.adj.(a) b w;
          false
      | None ->
          Hashtbl.replace t.adj.(a) b w;
          true
    in
    let fresh = set u v in
    ignore (set v u);
    if fresh then t.edges <- t.edges + 1
  end

let neighbors t u = Hashtbl.fold (fun v w acc -> (v, w) :: acc) t.adj.(u) []

let dijkstra t src =
  let nn = n t in
  let dist = Array.make nn infinity in
  dist.(src) <- 0.0;
  let heap = Repro_util.Heap.create ~leq:(fun (a, _) (b, _) -> a <= b) () in
  Repro_util.Heap.push heap (0.0, src);
  let rec loop () =
    match Repro_util.Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if d <= dist.(u) then
          Hashtbl.iter
            (fun v w ->
              let nd = d +. w in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                Repro_util.Heap.push heap (nd, v)
              end)
            t.adj.(u);
        loop ()
  in
  loop ();
  dist

let components t =
  let nn = n t in
  let comp = Array.make nn (-1) in
  let next = ref 0 in
  for s = 0 to nn - 1 do
    if comp.(s) = -1 then begin
      let c = !next in
      incr next;
      let stack = ref [ s ] in
      comp.(s) <- c;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
            stack := rest;
            Hashtbl.iter
              (fun v _ ->
                if comp.(v) = -1 then begin
                  comp.(v) <- c;
                  stack := v :: !stack
                end)
              t.adj.(u)
      done
    end
  done;
  (comp, !next)

let connected t =
  let _, k = components t in
  k <= 1

let ensure_connected t rng ~weight =
  let rec go () =
    let comp, k = components t in
    if k > 1 then begin
      (* connect a vertex of component 0 with one of another component *)
      let v0 = ref (-1) and v1 = ref (-1) in
      Array.iteri
        (fun i c ->
          if c = 0 && !v0 = -1 then v0 := i;
          if c = 1 && !v1 = -1 then v1 := i)
        comp;
      (* randomize endpoints a bit within their components *)
      let pick_in c =
        let nn = n t in
        let start = Repro_util.Rng.int rng nn in
        let rec find i tries =
          if tries >= nn then -1
          else begin
            let v = (start + i) mod nn in
            if comp.(v) = c then v else find (i + 1) (tries + 1)
          end
        in
        find 0 0
      in
      let a = match pick_in 0 with -1 -> !v0 | v -> v in
      let b = match pick_in 1 with -1 -> !v1 | v -> v in
      add_edge t a b (weight ());
      go ()
    end
  in
  go ()
