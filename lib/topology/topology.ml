module Graph = Graph
module Rng = Repro_util.Rng

type routed = {
  graph : Graph.t;
  attach : int array; (* endpoint -> router *)
  lan : float array; (* endpoint -> access-link delay *)
  scale : float; (* multiplies router-graph distance into seconds *)
  spt_cache : (int, float array) Hashtbl.t;
}

type kind = Constant of float | Routed of routed

type t = { name : string; n_endpoints : int; kind : kind }

let name t = t.name
let n_endpoints t = t.n_endpoints

let n_routers t =
  match t.kind with Constant _ -> 0 | Routed r -> Graph.n r.graph

let spt r src =
  match Hashtbl.find_opt r.spt_cache src with
  | Some d -> d
  | None ->
      let d = Graph.dijkstra r.graph src in
      Hashtbl.add r.spt_cache src d;
      d

let delay t e1 e2 =
  if e1 = e2 then 0.0
  else begin
    if e1 < 0 || e2 < 0 || e1 >= t.n_endpoints || e2 >= t.n_endpoints then
      invalid_arg "Topology.delay: endpoint out of range";
    match t.kind with
    | Constant d -> d
    | Routed r ->
        let r1 = r.attach.(e1) and r2 = r.attach.(e2) in
        let core = if r1 = r2 then 0.0 else (spt r r1).(r2) *. r.scale in
        r.lan.(e1) +. core +. r.lan.(e2)
  end

let rtt t e1 e2 = 2.0 *. delay t e1 e2

let constant ~n_endpoints ~delay =
  if n_endpoints <= 0 then invalid_arg "Topology.constant";
  { name = "constant"; n_endpoints; kind = Constant delay }

(* random spanning tree plus [extra] random edges over vertex list [vs] *)
let connect_cluster rng graph vs ~extra ~weight =
  let n = Array.length vs in
  if n > 1 then begin
    let order = Array.copy vs in
    Rng.shuffle rng order;
    for i = 1 to n - 1 do
      let j = Rng.int rng i in
      Graph.add_edge graph order.(i) order.(j) (weight ())
    done;
    for _ = 1 to extra do
      let a = vs.(Rng.int rng n) and b = vs.(Rng.int rng n) in
      if a <> b then Graph.add_edge graph a b (weight ())
    done
  end

let uniform rng lo hi = lo +. Rng.float rng (hi -. lo)

let make_routed ~name ~n_endpoints ~graph ~attach ~lan ~scale =
  {
    name;
    n_endpoints;
    kind = Routed { graph; attach; lan; scale; spt_cache = Hashtbl.create 64 };
  }

let transit_stub ?(transit_domains = 10) ?(routers_per_transit = 5)
    ?(stubs_per_transit_router = 10) ?(routers_per_stub = 10) ~rng ~n_endpoints () =
  if n_endpoints <= 0 then invalid_arg "Topology.transit_stub";
  let n_transit = transit_domains * routers_per_transit in
  let n_stub_domains = n_transit * stubs_per_transit_router in
  let n_total = n_transit + (n_stub_domains * routers_per_stub) in
  let graph = Graph.create n_total in
  (* transit domains: vertices [d*routers_per_transit, ...) *)
  let transit_of d = Array.init routers_per_transit (fun i -> (d * routers_per_transit) + i) in
  for d = 0 to transit_domains - 1 do
    connect_cluster rng graph (transit_of d) ~extra:(routers_per_transit / 2)
      ~weight:(fun () -> uniform rng 0.005 0.020)
  done;
  (* inter-transit-domain: random tree over domains plus a few extras *)
  let domain_edge d1 d2 =
    let a = Rng.pick rng (transit_of d1) and b = Rng.pick rng (transit_of d2) in
    Graph.add_edge graph a b (uniform rng 0.02 0.06)
  in
  for d = 1 to transit_domains - 1 do
    domain_edge d (Rng.int rng d)
  done;
  for _ = 1 to transit_domains / 2 do
    let d1 = Rng.int rng transit_domains and d2 = Rng.int rng transit_domains in
    if d1 <> d2 then domain_edge d1 d2
  done;
  (* stub domains hang off transit routers *)
  let stub_base = n_transit in
  let stub_routers = ref [] in
  let sd = ref 0 in
  for tr = 0 to n_transit - 1 do
    for _ = 1 to stubs_per_transit_router do
      let base = stub_base + (!sd * routers_per_stub) in
      incr sd;
      let vs = Array.init routers_per_stub (fun i -> base + i) in
      connect_cluster rng graph vs ~extra:(routers_per_stub / 3)
        ~weight:(fun () -> uniform rng 0.001 0.005);
      (* gateway link into the transit router *)
      Graph.add_edge graph (Rng.pick rng vs) tr (uniform rng 0.002 0.010);
      Array.iter (fun v -> stub_routers := v :: !stub_routers) vs
    done
  done;
  Graph.ensure_connected graph rng ~weight:(fun () -> uniform rng 0.02 0.06);
  let stub_routers = Array.of_list !stub_routers in
  let attach = Array.init n_endpoints (fun _ -> Rng.pick rng stub_routers) in
  let lan = Array.make n_endpoints 0.001 in
  make_routed ~name:"gatech" ~n_endpoints ~graph ~attach ~lan ~scale:1.0

let as_graph ?(n_as = 120) ?(routers_per_as = 6) ?(hop_delay = 0.002) ~rng ~n_endpoints () =
  if n_endpoints <= 0 then invalid_arg "Topology.as_graph";
  let n_total = n_as * routers_per_as in
  let graph = Graph.create n_total in
  let routers_of a = Array.init routers_per_as (fun i -> (a * routers_per_as) + i) in
  for a = 0 to n_as - 1 do
    connect_cluster rng graph (routers_of a) ~extra:(routers_per_as / 3)
      ~weight:(fun () -> 1.0)
  done;
  (* AS overlay: preferential-attachment tree plus shortcuts, approximating
     the heavy-tailed AS degree distribution *)
  let as_edges = ref [] in
  for a = 1 to n_as - 1 do
    (* preferential attachment: pick an endpoint of a random existing edge,
       falling back to a uniform earlier AS *)
    let target =
      match !as_edges with
      | [] -> 0
      | edges ->
          if Rng.bool rng then begin
            let u, v = List.nth edges (Rng.int rng (List.length edges)) in
            if Rng.bool rng then u else v
          end
          else Rng.int rng a
    in
    as_edges := (a, target) :: !as_edges;
    Graph.add_edge graph
      (Rng.pick rng (routers_of a))
      (Rng.pick rng (routers_of target))
      1.0
  done;
  for _ = 1 to n_as / 4 do
    let a = Rng.int rng n_as and b = Rng.int rng n_as in
    if a <> b then
      Graph.add_edge graph (Rng.pick rng (routers_of a)) (Rng.pick rng (routers_of b)) 1.0
  done;
  Graph.ensure_connected graph rng ~weight:(fun () -> 1.0);
  (* attach endpoints to distinct routers when possible (the paper's
     Mercator setup attaches each end node to its own router) *)
  let attach =
    if n_endpoints <= n_total then begin
      let routers = Array.init n_total (fun i -> i) in
      Rng.shuffle rng routers;
      Array.sub routers 0 n_endpoints
    end
    else Array.init n_endpoints (fun _ -> Rng.int rng n_total)
  in
  let lan = Array.make n_endpoints 0.0 in
  make_routed ~name:"mercator" ~n_endpoints ~graph ~attach ~lan ~scale:hop_delay

let corpnet ?(n_routers = 298) ?(n_hubs = 12) ~rng ~n_endpoints () =
  if n_endpoints <= 0 || n_hubs >= n_routers then invalid_arg "Topology.corpnet";
  let graph = Graph.create n_routers in
  let hubs = Array.init n_hubs (fun i -> i) in
  (* WAN core: hub mesh with wide-area delays (campuses world-wide) *)
  (* complete hub mesh: corporate WANs are engineered, so a detour via a
     third campus costs little more than the direct WAN path *)
  for i = 0 to n_hubs - 1 do
    for j = i + 1 to n_hubs - 1 do
      Graph.add_edge graph i j (uniform rng 0.010 0.080)
    done
  done;
  connect_cluster rng graph hubs ~extra:0 ~weight:(fun () -> uniform rng 0.010 0.080);
  (* each hub anchors one campus: its routers interconnect with sub-ms
     LAN delays, so most machine pairs on a campus are ~1-3 ms apart —
     the locality PNS exploits to keep CorpNet's RDP the lowest of the
     three topologies *)
  for v = n_hubs to n_routers - 1 do
    let campus = (v - n_hubs) mod n_hubs in
    Graph.add_edge graph v campus (uniform rng 0.0003 0.0015);
    (* a couple of intra-campus cross-links *)
    let sibling = n_hubs + campus + (n_hubs * Rng.int rng (max 1 ((n_routers - n_hubs) / n_hubs))) in
    if sibling < n_routers && sibling <> v then
      Graph.add_edge graph v sibling (uniform rng 0.0003 0.0015)
  done;
  Graph.ensure_connected graph rng ~weight:(fun () -> uniform rng 0.010 0.080);
  let attach = Array.init n_endpoints (fun _ -> Rng.int rng n_routers) in
  let lan = Array.make n_endpoints 0.0005 in
  make_routed ~name:"corpnet" ~n_endpoints ~graph ~attach ~lan ~scale:1.0
