(** One runner per table/figure of the paper's §5.

    Each function runs the corresponding experiment and prints the same
    rows/series the paper plots (see DESIGN.md §4 for the experiment
    index and EXPERIMENTS.md for paper-vs-measured numbers). [size]
    scales population and simulated time:
    - [Quick] ≈ 150 nodes, ~2.5 simulated hours — seconds to minutes of
      wall time, used by the bench harness;
    - [Medium] ≈ 400 nodes, 6 hours;
    - [Full] — the paper's dimensions (thousands of nodes, days;
      expensive). *)

type size = Quick | Medium | Full

val size_of_string : string -> size option
val pp_size : Format.formatter -> size -> unit

val gnutella_trace : size -> seed:int -> Churn.Trace.t
(** The workhorse trace at the given scale (shared by E2, E5–E9). *)

val base_config : size -> seed:int -> Harness.Sim.config

val set_manifest_out : string option -> unit
(** Direct subsequent runs to write their manifest (DESIGN.md §9) to
    this path on close. Experiments that run several configurations
    reuse the path — the file ends up holding the last run's manifest.
    Default [None] (no manifest). *)

val fig3 : ?size:size -> seed:int -> unit -> unit
(** Node failure rates over time for the three traces. *)

val topology_table : ?size:size -> seed:int -> unit -> unit
(** §5.3 "Network topology": loss, control traffic and RDP on CorpNet,
    GATech and Mercator. *)

val fig4 : ?size:size -> seed:int -> unit -> unit
(** RDP and control traffic over (normalised) time for the three traces,
    plus the per-class control breakdown on the Gnutella trace. *)

val fig5 : ?size:size -> seed:int -> unit -> unit
(** RDP, control traffic and join-latency CDF for Poisson traces with
    session times 5–600 minutes. *)

val fig6 : ?size:size -> seed:int -> unit -> unit
(** RDP, control traffic, lookup loss rate and incorrect delivery rate
    as network loss varies 0–5%. *)

val fig7 : ?size:size -> seed:int -> unit -> unit
(** Control traffic and RDP vs leaf-set size l; RDP vs b. *)

val ablation : ?size:size -> seed:int -> unit -> unit
(** §5.3 "Active probing and per-hop acks": the four technique
    combinations at two application traffic levels. *)

val selftuning : ?size:size -> seed:int -> unit -> unit
(** §5.3: achieved raw loss rate and control traffic when tuning to
    Lr = 5% vs 1% (per-hop acks off). *)

val suppression : ?size:size -> seed:int -> unit -> unit
(** §5.3: failure-detection traffic suppressed by application traffic. *)

val structure_ablation : ?size:size -> seed:int -> unit -> unit
(** Extra ablation for §4.1's claim: leaf-set maintenance overhead vs l
    with and without the single-heartbeat optimisation. *)

val fig8 : ?size:size -> seed:int -> unit -> unit
(** Squirrel total traffic per node over six days, two seeds. *)

val consistency : ?size:size -> seed:int -> unit -> unit
(** §3.2's consistency-latency trade-off: the default retry-the-root
    policy against the deliver-at-the-alternative variant, with and
    without link loss. *)

val massive_failure : ?size:size -> seed:int -> unit -> unit
(** E-faults A: crash 10–50% of the active overlay simultaneously under
    OverNet-like churn and report the collector's recovery metrics —
    time-to-repair, peak windowed lookup-loss / incorrect-delivery rates,
    and the post-convergence (oracle-checked) incorrect rate. *)

val bursty_loss : ?size:size -> seed:int -> unit -> unit
(** E-faults B: Gilbert–Elliott bursty loss vs the paper's uniform loss
    at the same long-run average rate (equal raw drop probability,
    different correlation structure). *)

val fail_slow : ?size:size -> seed:int -> unit -> unit
(** E-failslow: inject fail-slow node faults (multiplicative slowdown or
    additive per-message processing delay) into a fraction of the
    overlay and report failure-detector accuracy — suspicion counts,
    false-suspicion rate of slow-but-alive victims, time-to-detect true
    (churn) crashes — and the lookup-latency tail (p50/p99). *)

val bursty_retries : ?size:size -> seed:int -> unit -> unit
(** E-faults B rerun with end-to-end lookup retries (and root-side
    duplicate suppression) enabled: success rate under uniform vs bursty
    loss, with and without retries. The acceptance bar is ≥ 99% of
    judged lookups correctly delivered with retries on. *)

val congestion : ?size:size -> seed:int -> unit -> unit
(** E-congestion: a lookup storm against bounded per-node capacity
    (service rate + finite queue). Compares an uncapped control run, the
    naive overlay (FIFO, no backpressure — congestive collapse) and the
    graceful one (control prioritised, probe/join backpressure): success
    rate during and after the storm, queueing-delay percentiles,
    congestion drops, collapse windows and ring-consistency agreement. *)

val flash_crowd : ?size:size -> seed:int -> unit -> unit
(** E-flashcrowd: a mass-join flash crowd against a small steady overlay
    with bounded capacity, admission control off vs on. The acceptance
    bar is a ≥ 2× lookup success rate during the crowd for the graceful
    variant. *)

val congestion_smoke : ?size:size -> seed:int -> unit -> unit
(** Fixed-cost CI run for the congestion path: fails loudly if the
    capacity model never dropped, the queue taps never fired, or the
    default-off run recorded any congestion activity. Ignores [size]. *)

val smoke : ?size:size -> seed:int -> unit -> unit
(** Fixed-cost tiny run for CI: exercises node-fault injection, the
    suspicion list and end-to-end retries, and fails loudly if any of
    those paths stayed cold. Ignores [size]. *)

val apps : ?size:size -> seed:int -> unit -> unit
(** Extension experiment: the applications the paper motivates (§1, §3.1)
    riding on the overlay under Gnutella-like churn — Scribe multicast
    delivery ratio and PAST storage durability. *)

val all : ?size:size -> seed:int -> unit -> unit
