module Sim = Harness.Sim
module Collector = Overlay_metrics.Collector
module M = Mspastry.Message
module Trace = Churn.Trace
module Rng = Repro_util.Rng
module Netfault = Repro_faults.Netfault
module Schedule = Repro_faults.Schedule
module Profile = Repro_obs.Profile

type size = Quick | Medium | Full

let size_of_string = function
  | "quick" -> Some Quick
  | "medium" -> Some Medium
  | "full" -> Some Full
  | _ -> None

let pp_size fmt s =
  Format.pp_print_string fmt (match s with Quick -> "quick" | Medium -> "medium" | Full -> "full")

let hours h = h *. 3600.0

(* per-size dimensions for the synthetic traces *)
let gnutella_scale = function Quick -> 0.06 | Medium -> 0.15 | Full -> 1.0
let gnutella_duration = function
  | Quick -> hours 2.5
  | Medium -> hours 6.0
  | Full -> hours 60.0

let poisson_n = function Quick -> 120 | Medium -> 400 | Full -> 10_000
let poisson_duration = function Quick -> hours 2.0 | Medium -> hours 5.0 | Full -> hours 12.0

let warmup_for = function Quick -> 1800.0 | Medium -> 3600.0 | Full -> hours 3.0
let window_for = function Quick -> 600.0 | Medium -> 600.0 | Full -> 600.0

let gnutella_trace size ~seed =
  Trace.gnutella
    ~scale:(gnutella_scale size)
    ~duration:(gnutella_duration size)
    (Rng.create (seed + 1000))

(* Where runs write their manifest (see Manifest, DESIGN.md §9); [None]
   disables the write. Experiments that run several configurations reuse
   the path, so the file holds the last run's manifest. *)
let manifest_out : string option ref = ref None
let set_manifest_out p = manifest_out := p

let base_config size ~seed =
  {
    Sim.default_config with
    seed;
    warmup = warmup_for size;
    window = window_for size;
    manifest_out = !manifest_out;
  }

let header title =
  Printf.printf "\n=== %s ===\n%!" title

let series_line name pts =
  Printf.printf "%s:" name;
  Array.iter (fun (t, v) -> Printf.printf " %.3g:%.4g" t v) pts;
  print_newline ()

(* ------------------------------------------------------------------ *)

let fig3 ?(size = Quick) ~seed () =
  header "Fig 3: node failure rates (per node per second) for the three traces";
  let traces =
    match size with
    | Full ->
        [
          ("gnutella", Trace.gnutella (Rng.create seed), 600.0);
          ("overnet", Trace.overnet (Rng.create (seed + 1)), 600.0);
          ("microsoft", Trace.microsoft (Rng.create (seed + 2)), 3600.0);
        ]
    | Medium | Quick ->
        let sc = if size = Medium then 0.2 else 0.08 in
        [
          ("gnutella", Trace.gnutella ~scale:sc (Rng.create seed), 600.0);
          ( "overnet",
            Trace.overnet ~scale:1.0 ~duration:(hours 48.0) (Rng.create (seed + 1)),
            600.0 );
          ( "microsoft",
            Trace.microsoft ~scale:0.02 ~duration:(hours 96.0) (Rng.create (seed + 2)),
            3600.0 );
        ]
  in
  List.iter
    (fun (name, trace, window) ->
      let series = Trace.failure_rate_series trace ~window in
      (* thin long series for printing *)
      let step = max 1 (Array.length series / 48) in
      let thinned =
        Array.of_list
          (List.filteri (fun i _ -> i mod step = 0) (Array.to_list series))
      in
      Printf.printf "%-10s sessions=%d max-pop=%d mean-session=%.0fs\n" name
        (Trace.n_nodes trace) (Trace.max_concurrent trace) (Trace.mean_session trace);
      series_line "  failure-rate" thinned)
    traces

(* ------------------------------------------------------------------ *)

let ph_workload = Profile.phase "harness.workload"

let run_gnutella_with ?(cfg_adjust = fun c -> c) size ~seed =
  if !Profile.on then Profile.enter ph_workload;
  let trace = gnutella_trace size ~seed in
  if !Profile.on then Profile.leave ph_workload;
  let config = cfg_adjust (base_config size ~seed) in
  (trace, Sim.run config ~trace)

let topology_table ?(size = Quick) ~seed () =
  header "Topology table (§5.3): dependability and performance per topology";
  Printf.printf "%-10s %12s %12s %8s %8s\n" "topology" "loss-rate" "incorrect"
    "control" "RDP";
  List.iter
    (fun kind ->
      let _, r =
        run_gnutella_with size ~seed ~cfg_adjust:(fun c -> { c with Sim.topology = kind })
      in
      let s = r.Sim.summary in
      Printf.printf "%-10s %12.2e %12.2e %8.3f %8.2f\n%!"
        (Sim.topology_name kind) s.Collector.loss_rate s.Collector.incorrect_rate
        s.Collector.control_per_node_per_s s.Collector.rdp_mean)
    [ Sim.Corpnet; Sim.Gatech; Sim.Mercator ]

(* ------------------------------------------------------------------ *)

let fig4 ?(size = Quick) ~seed () =
  header "Fig 4: RDP and control traffic over time, per trace";
  let mk_traces () =
    match size with
    | Full ->
        [
          ("gnutella", Trace.gnutella (Rng.create (seed + 1000)));
          ("overnet", Trace.overnet (Rng.create (seed + 1001)));
          ("microsoft", Trace.microsoft (Rng.create (seed + 1002)));
        ]
    | Medium ->
        [
          ("gnutella", Trace.gnutella ~scale:0.15 ~duration:(hours 8.0) (Rng.create (seed + 1000)));
          ("overnet", Trace.overnet ~scale:0.6 ~duration:(hours 8.0) (Rng.create (seed + 1001)));
          ("microsoft", Trace.microsoft ~scale:0.015 ~duration:(hours 8.0) (Rng.create (seed + 1002)));
        ]
    | Quick ->
        [
          ("gnutella", Trace.gnutella ~scale:0.06 ~duration:(hours 2.5) (Rng.create (seed + 1000)));
          ("overnet", Trace.overnet ~scale:0.3 ~duration:(hours 2.5) (Rng.create (seed + 1001)));
          ("microsoft", Trace.microsoft ~scale:0.008 ~duration:(hours 2.5) (Rng.create (seed + 1002)));
        ]
  in
  List.iter
    (fun (name, trace) ->
      let config = base_config size ~seed in
      let r = Sim.run config ~trace in
      let s = r.Sim.summary in
      Printf.printf "%-10s pop=%.0f rdp=%.2f control=%.3f msg/s/node loss=%.2e incorrect=%.2e\n"
        name s.Collector.mean_population s.Collector.rdp_mean
        s.Collector.control_per_node_per_s s.Collector.loss_rate s.Collector.incorrect_rate;
      let norm arr =
        let d = r.Sim.duration in
        Array.map (fun (t, v) -> (t /. d, v)) arr
      in
      series_line "  rdp(t)" (norm (Collector.rdp_series r.Sim.collector));
      series_line "  control(t)" (norm (Collector.control_series r.Sim.collector));
      if name = "gnutella" then
        List.iter
          (fun cls ->
            if M.is_control cls then
              series_line
                (Printf.sprintf "  %s(t)" (M.class_name cls))
                (norm (Collector.control_series_by_class r.Sim.collector cls)))
          M.all_classes;
      flush stdout)
    (mk_traces ())

(* ------------------------------------------------------------------ *)

let fig5 ?(size = Quick) ~seed () =
  header "Fig 5: RDP, control traffic and join latency vs session time (Poisson)";
  let sessions_min =
    match size with Quick -> [ 5.; 15.; 30.; 120. ] | Medium | Full -> [ 5.; 15.; 30.; 60.; 120.; 600. ]
  in
  Printf.printf "%-12s %8s %10s %10s %12s %8s\n" "session(min)" "RDP" "control"
    "loss" "join-fail" "joins";
  let cdf_traces = ref [] in
  List.iter
    (fun mins ->
      let session_mean = mins *. 60.0 in
      let duration =
        Float.max (poisson_duration size) (8.0 *. session_mean)
      in
      let duration = Float.min duration (hours 10.0) in
      let trace =
        Trace.poisson (Rng.create (seed + 2000 + int_of_float mins))
          ~n_avg:(poisson_n size) ~session_mean ~duration
      in
      let config = base_config size ~seed in
      let config = { config with Sim.warmup = Float.min config.Sim.warmup (duration /. 4.0) } in
      let r = Sim.run config ~trace in
      let s = r.Sim.summary in
      Printf.printf "%-12.0f %8.2f %10.3f %10.2e %12d %8d\n%!" mins
        s.Collector.rdp_mean s.Collector.control_per_node_per_s s.Collector.loss_rate
        r.Sim.join_failures s.Collector.joins;
      if mins = 5.0 || mins = 30.0 then
        cdf_traces :=
          (mins, Collector.join_latencies r.Sim.collector) :: !cdf_traces)
    sessions_min;
  List.iter
    (fun (mins, lats) ->
      let cdf = Repro_util.Stats.cdf lats in
      let step = max 1 (Array.length cdf / 24) in
      let thinned =
        Array.of_list (List.filteri (fun i _ -> i mod step = 0) (Array.to_list cdf))
      in
      series_line (Printf.sprintf "join-latency-cdf-%.0fmin" mins) thinned)
    (List.rev !cdf_traces)

(* ------------------------------------------------------------------ *)

let fig6 ?(size = Quick) ~seed () =
  header "Fig 6: impact of network message loss (0-5%)";
  Printf.printf "%-8s %8s %10s %12s %14s\n" "loss%" "RDP" "control" "lookup-loss"
    "incorrect";
  List.iter
    (fun pct ->
      let _, r =
        run_gnutella_with size ~seed ~cfg_adjust:(fun c ->
            { c with Sim.loss_rate = pct /. 100.0 })
      in
      let s = r.Sim.summary in
      Printf.printf "%-8.1f %8.2f %10.3f %12.2e %14.2e\n%!" pct s.Collector.rdp_mean
        s.Collector.control_per_node_per_s s.Collector.loss_rate s.Collector.incorrect_rate)
    (match size with Quick -> [ 0.; 1.; 3.; 5. ] | Medium | Full -> [ 0.; 1.; 2.; 3.; 4.; 5. ])

(* ------------------------------------------------------------------ *)

let fig7 ?(size = Quick) ~seed () =
  header "Fig 7: effect of leaf-set size l and digit size b";
  Printf.printf "%-6s %10s %8s\n" "l" "control" "RDP";
  List.iter
    (fun l ->
      let _, r =
        run_gnutella_with size ~seed ~cfg_adjust:(fun c ->
            { c with Sim.pastry = { c.Sim.pastry with Mspastry.Config.l } })
      in
      let s = r.Sim.summary in
      Printf.printf "%-6d %10.3f %8.2f\n%!" l s.Collector.control_per_node_per_s
        s.Collector.rdp_mean)
    (match size with Quick -> [ 8; 16; 32 ] | Medium | Full -> [ 8; 16; 24; 32; 48; 64 ]);
  Printf.printf "%-6s %10s %8s\n" "b" "control" "RDP";
  List.iter
    (fun b ->
      let _, r =
        run_gnutella_with size ~seed ~cfg_adjust:(fun c ->
            { c with Sim.pastry = { c.Sim.pastry with Mspastry.Config.b } })
      in
      let s = r.Sim.summary in
      Printf.printf "%-6d %10.3f %8.2f\n%!" b s.Collector.control_per_node_per_s
        s.Collector.rdp_mean)
    (match size with Quick -> [ 1; 2; 4 ] | Medium | Full -> [ 1; 2; 3; 4; 5 ])

(* ------------------------------------------------------------------ *)

let ablation ?(size = Quick) ~seed () =
  header "Ablation (§5.3): active probing and per-hop acks";
  Printf.printf "%-24s %-10s %12s %8s %10s\n" "configuration" "lookups/s" "loss-rate"
    "RDP" "control";
  let variants =
    [
      ("neither", false, false);
      ("acks only", true, false);
      ("probing only", false, true);
      ("acks + probing", true, true);
    ]
  in
  let rates = match size with Quick -> [ 0.01 ] | Medium | Full -> [ 0.01; 0.001 ] in
  List.iter
    (fun rate ->
      List.iter
        (fun (name, acks, probing) ->
          let _, r =
            run_gnutella_with size ~seed ~cfg_adjust:(fun c ->
                {
                  c with
                  Sim.lookup_rate = rate;
                  Sim.pastry =
                    {
                      c.Sim.pastry with
                      Mspastry.Config.per_hop_acks = acks;
                      active_probing = probing;
                    };
                })
          in
          let s = r.Sim.summary in
          Printf.printf "%-24s %-10.3f %12.2e %8.2f %10.3f\n%!" name rate
            s.Collector.loss_rate s.Collector.rdp_mean s.Collector.control_per_node_per_s)
        variants)
    rates

(* ------------------------------------------------------------------ *)

let selftuning ?(size = Quick) ~seed () =
  header "Self-tuning (§5.3): raw loss rate vs target (per-hop acks off)";
  Printf.printf "%-10s %12s %12s %10s\n" "target-Lr" "achieved" "RDP" "control";
  List.iter
    (fun target ->
      let _, r =
        run_gnutella_with size ~seed ~cfg_adjust:(fun c ->
            {
              c with
              Sim.pastry =
                {
                  c.Sim.pastry with
                  Mspastry.Config.per_hop_acks = false;
                  lr_target = target;
                };
            })
      in
      let s = r.Sim.summary in
      Printf.printf "%-10.2f %12.2e %12.2f %10.3f\n%!" target s.Collector.loss_rate
        s.Collector.rdp_mean s.Collector.control_per_node_per_s)
    [ 0.05; 0.01 ]

(* ------------------------------------------------------------------ *)

let suppression ?(size = Quick) ~seed () =
  header "Suppression (§5.3): application traffic replaces failure detection";
  Printf.printf "%-12s %12s %12s %12s %8s\n" "lookups/s" "rt-probes" "leafset"
    "control" "RDP";
  let rate_of cls s =
    try List.assoc cls s.Collector.control_by_class with Not_found -> 0.0
  in
  List.iter
    (fun rate ->
      let _, r =
        run_gnutella_with size ~seed ~cfg_adjust:(fun c -> { c with Sim.lookup_rate = rate })
      in
      let s = r.Sim.summary in
      Printf.printf "%-12.3f %12.4f %12.4f %12.3f %8.2f\n%!" rate
        (rate_of M.C_rt_probe s) (rate_of M.C_leafset s)
        s.Collector.control_per_node_per_s s.Collector.rdp_mean)
    (match size with
    | Quick -> [ 0.0; 0.1; 1.0 ]
    | Medium | Full -> [ 0.0; 0.01; 0.1; 1.0 ])

(* ------------------------------------------------------------------ *)

let structure_ablation ?(size = Quick) ~seed () =
  header "Structure ablation (§4.1): leaf-set overhead vs l, heartbeat optimisation";
  Printf.printf "%-6s %-12s %14s %14s\n" "l" "structure" "leafset-msgs" "control";
  let ls =
    match size with Quick -> [ 16; 32 ] | Medium | Full -> [ 8; 16; 32; 64 ]
  in
  List.iter
    (fun l ->
      List.iter
        (fun exploit ->
          let _, r =
            run_gnutella_with size ~seed ~cfg_adjust:(fun c ->
                {
                  c with
                  Sim.pastry =
                    { c.Sim.pastry with Mspastry.Config.l; exploit_structure = exploit };
                })
          in
          let s = r.Sim.summary in
          let leafset_rate =
            try List.assoc M.C_leafset s.Collector.control_by_class with Not_found -> 0.0
          in
          Printf.printf "%-6d %-12s %14.4f %14.3f\n%!" l
            (if exploit then "heartbeat" else "probe-all")
            leafset_rate s.Collector.control_per_node_per_s)
        [ true; false ])
    ls

(* ------------------------------------------------------------------ *)

let fig8 ?(size = Quick) ~seed () =
  header "Fig 8: Squirrel deployment traffic (simulator vs independent seed)";
  let n_nodes, duration, window =
    match size with
    | Quick -> (26, 86_400.0, 3600.0)
    | Medium -> (52, 2.0 *. 86_400.0, 3600.0)
    | Full -> (52, 6.0 *. 86_400.0, 3600.0)
  in
  List.iter
    (fun (label, s) ->
      let r = Squirrel.Deployment.run ~n_nodes ~duration ~window ~seed:s () in
      Printf.printf
        "%-12s nodes=%d requests=%d hit-rate=%.2f failed=%d mean-latency=%.0fms\n" label
        r.Squirrel.Deployment.n_nodes r.Squirrel.Deployment.cache_stats.Squirrel.Cache.requests
        r.Squirrel.Deployment.hit_rate r.Squirrel.Deployment.cache_stats.Squirrel.Cache.failed
        (r.Squirrel.Deployment.cache_stats.Squirrel.Cache.mean_latency *. 1000.0);
      series_line "  total-traffic" r.Squirrel.Deployment.total_traffic)
    [ ("run-A", seed); ("run-B", seed + 7919) ]

let consistency ?(size = Quick) ~seed () =
  header "Consistency vs latency (§3.2): delivery policy when the root misses an ack";
  Printf.printf "%-24s %-8s %12s %12s %8s\n" "policy" "loss%" "incorrect"
    "lookup-loss" "RDP";
  List.iter
    (fun (label, retries) ->
      List.iter
        (fun pct ->
          let _, r =
            run_gnutella_with size ~seed ~cfg_adjust:(fun c ->
                {
                  c with
                  Sim.loss_rate = pct /. 100.0;
                  Sim.pastry =
                    { c.Sim.pastry with Mspastry.Config.root_retries = retries };
                })
          in
          let s = r.Sim.summary in
          Printf.printf "%-24s %-8.1f %12.2e %12.2e %8.2f\n%!" label pct
            s.Collector.incorrect_rate s.Collector.loss_rate s.Collector.rdp_mean)
        (match size with Quick -> [ 0.; 5. ] | Medium | Full -> [ 0.; 1.; 5. ]))
    [
      ("deliver-at-alternative", 0);
      ("retry-root x4 (default)", 4);
      ("retry-until-evicted", 20);
    ]

let apps ?(size = Quick) ~seed () =
  header "Applications under churn (extension): Scribe multicast + PAST storage";
  let trace = gnutella_trace size ~seed in
  let config = base_config size ~seed in
  let live = Sim.live_of_trace config ~trace in
  let module Live = Sim.Live in
  let warmup = warmup_for size in
  let duration = Trace.duration trace in
  let scribe = Scribe.create ~refresh_period:30.0 ~live () in
  let store = Past_store.Past.create ~replicas:3 ~refresh_period:60.0 ~live () in
  let group = Scribe.group_of_name "churn-group" in
  let rng = Rng.create (seed + 31) in
  let published = ref [] in
  let n_objects = 100 in
  ignore
    (Simkit.Engine.schedule_at (Live.engine live) ~time:warmup (fun () ->
         let nodes = Array.of_list (Live.active_nodes live) in
         Array.iteri
           (fun i n -> if i mod 2 = 0 then Scribe.subscribe scribe ~member:n group)
           nodes;
         for i = 0 to n_objects - 1 do
           Past_store.Past.put store
             ~client:nodes.(Rng.int rng (Array.length nodes))
             ~key:(Printf.sprintf "obj-%d" i)
             ~value:"payload"
         done));
  (* one multicast and two gets every 30 s for the rest of the trace *)
  let t = ref (warmup +. 60.0) in
  while !t < duration -. 60.0 do
    let fire = !t in
    ignore
      (Simkit.Engine.schedule_at (Live.engine live) ~time:fire (fun () ->
           let nodes = Array.of_list (Live.active_nodes live) in
           if Array.length nodes > 0 then begin
             let from = nodes.(Rng.int rng (Array.length nodes)) in
             let id = Scribe.multicast scribe ~from group in
             published := (id, Scribe.members scribe group) :: !published;
             for _ = 1 to 2 do
               Past_store.Past.get store
                 ~client:nodes.(Rng.int rng (Array.length nodes))
                 ~key:(Printf.sprintf "obj-%d" (Rng.int rng n_objects))
             done
           end));
    t := !t +. 30.0
  done;
  Live.run_until live (duration +. 60.0);
  Live.close live;
  let total = ref 0 and ratio_acc = ref 0.0 in
  List.iter
    (fun (id, members_then) ->
      if members_then > 0 then begin
        incr total;
        ratio_acc :=
          !ratio_acc
          +. (float_of_int (Scribe.delivered scribe group id) /. float_of_int members_then)
      end)
    !published;
  let st = Past_store.Past.stats store in
  let sc = Scribe.stats scribe in
  Printf.printf "scribe: %d multicasts, mean delivery ratio %.3f, %d members now\n"
    !total
    (if !total = 0 then 0.0 else !ratio_acc /. float_of_int !total)
    (Scribe.members scribe group);
  Printf.printf "        (%d subscribes, %d tree messages)\n" sc.Scribe.subscribes_sent
    sc.Scribe.tree_messages;
  Printf.printf
    "past:   %d/%d gets hit (%d misses, %d timeouts), %d replicas resident, %d repairs\n%!"
    st.Past_store.Past.get_hits st.Past_store.Past.gets st.Past_store.Past.get_misses
    st.Past_store.Past.get_timeouts st.Past_store.Past.stored_objects
    st.Past_store.Past.repair_pulls

(* ------------------------------------------------------------------ *)

(* E-faults A: simultaneous crash of a large fraction of the overlay
   under OverNet-like churn, with oracle-checked recovery metrics. *)
let massive_failure ?(size = Quick) ~seed () =
  header "E-faults A: massive correlated failures under OverNet-like churn";
  let scale, duration =
    match size with
    | Quick -> (0.3, hours 2.5)
    | Medium -> (0.6, hours 5.0)
    | Full -> (1.0, hours 12.0)
  in
  let warmup = warmup_for size in
  let t_fault = warmup +. ((duration -. warmup) /. 2.0) in
  Printf.printf
    "crash at t=%.0fs; recovery judged on %gs windows of lookups by send time\n"
    t_fault (window_for size);
  Printf.printf "%-8s %8s %8s %10s %12s %12s %12s %12s\n" "crash%" "pre-pop"
    "post-pop" "TTR(s)" "peak-loss" "peak-incorr" "post-incorr" "post-loss";
  List.iter
    (fun fraction ->
      let trace = Trace.overnet ~scale ~duration (Rng.create (seed + 4000)) in
      let label = Printf.sprintf "crash-%.0f%%" (100.0 *. fraction) in
      let config =
        {
          (base_config size ~seed) with
          Sim.fault_schedule =
            [ Schedule.crash_fraction ~label ~time:t_fault fraction ];
        }
      in
      let r = Sim.run config ~trace in
      (* convergence check: the tail of the run, well after the fault,
         must be back to zero incorrect deliveries (oracle-checked) *)
      let pre = Collector.summary ~since:warmup ~until:t_fault r.Sim.collector in
      let post =
        Collector.summary ~since:(t_fault +. 1800.0) ~until:duration r.Sim.collector
      in
      let ep =
        List.find_opt
          (fun e -> e.Collector.ep_label = label)
          (Collector.episodes r.Sim.collector)
      in
      let ttr, peak_loss, peak_incorr =
        match ep with
        | Some e ->
            ( (match e.Collector.time_to_repair with
              | Some ttr -> Printf.sprintf "%.0f" ttr
              | None -> "unrepaired"),
              e.Collector.peak_loss,
              e.Collector.peak_incorrect )
        | None -> ("?", nan, nan)
      in
      Printf.printf "%-8.0f %8.0f %8.0f %10s %12.3g %12.3g %12.2e %12.2e\n%!"
        (100.0 *. fraction) pre.Collector.mean_population
        post.Collector.mean_population ttr peak_loss peak_incorr
        post.Collector.incorrect_rate post.Collector.loss_rate)
    (match size with
    | Quick -> [ 0.10; 0.25; 0.50 ]
    | Medium | Full -> [ 0.10; 0.20; 0.30; 0.40; 0.50 ])

(* E-faults B: bursty (Gilbert-Elliott) vs uniform loss at the same
   long-run average rate. *)
let bursty_loss ?(size = Quick) ~seed () =
  header "E-faults B: bursty vs uniform network loss at equal average rate";
  let burst = 10.0 in
  Printf.printf "%-10s %-8s %12s %12s %14s %8s %10s\n" "model" "avg%"
    "raw-achieved" "lookup-loss" "incorrect" "RDP" "control";
  List.iter
    (fun avg ->
      List.iter
        (fun (name, cfg_adjust) ->
          let _, r = run_gnutella_with size ~seed ~cfg_adjust in
          let s = r.Sim.summary in
          let n = r.Sim.net_stats in
          let raw =
            if n.Netsim.Net.sent = 0 then 0.0
            else
              float_of_int
                (n.Netsim.Net.dropped_loss + n.Netsim.Net.dropped_fault)
              /. float_of_int n.Netsim.Net.sent
          in
          Printf.printf "%-10s %-8.1f %12.4f %12.2e %14.2e %8.2f %10.3f\n%!"
            name (100.0 *. avg) raw s.Collector.loss_rate
            s.Collector.incorrect_rate s.Collector.rdp_mean
            s.Collector.control_per_node_per_s)
        [
          ("uniform", fun c -> { c with Sim.loss_rate = avg });
          ( Printf.sprintf "bursty-%g" burst,
            fun c ->
              {
                c with
                Sim.fault_schedule =
                  [
                    Schedule.set_base ~label:"bursty-loss" ~time:0.0
                      (Netfault.bursty ~avg_loss:avg ~burst);
                  ];
              } );
        ])
    (match size with Quick -> [ 0.03 ] | Medium | Full -> [ 0.01; 0.03; 0.05 ])

(* E-failslow: fail-slow victims (slower processing, not crashed) and
   what they do to the failure detector and the lookup-latency tail.
   Multiplicative slowdowns stretch per-message delays but stay inside
   the probe timeout; additive processing delays past t_out/2 per
   direction push probe RTTs over the timeout and manufacture false
   suspicions of nodes that are alive. *)
let fail_slow ?(size = Quick) ~seed () =
  header "E-failslow: fail-slow nodes, detector accuracy and latency tail";
  let warmup = warmup_for size in
  let t_fault = warmup in
  (* a bounded fault interval: additive slowdowns past the probe timeout
     trigger per-hop ack retransmit storms (the pathology under study),
     which are expensive to simulate -- keep the faulted window short *)
  let fault_len = match size with Quick -> 1800.0 | Medium | Full -> 3600.0 in
  let duration = t_fault +. fault_len +. 900.0 in
  Printf.printf
    "fail-slow injected at t=%.0fs for %.0fs; metrics over the faulted interval\n"
    t_fault fault_len;
  Printf.printf "%-10s %6s %6s %6s %10s %8s %8s %8s %9s\n" "slowdown" "frac%"
    "susp" "false" "false-rate" "TTD(s)" "p50(s)" "p99(s)" "success";
  let percentile a q =
    let n = Array.length a in
    if n = 0 then nan else a.(min (n - 1) (int_of_float (q *. float_of_int n)))
  in
  let fractions =
    match size with Quick -> [ 0.10; 0.25 ] | Medium | Full -> [ 0.05; 0.10; 0.25; 0.50 ]
  in
  let rows =
    ("none", 1.0, 0.0, 0.0)
    :: List.concat_map
         (fun (lbl, factor, extra) ->
           List.map (fun f -> (lbl, factor, extra, f)) fractions)
         [
           ("x4", 4.0, 0.0);
           ("x20", 20.0, 0.0);
           ("+0.5s", 1.0, 0.5);
           ("+2s", 1.0, 2.0);
         ]
  in
  List.iter
    (fun (lbl, factor, extra, fraction) ->
      let trace =
        Trace.gnutella ~scale:(gnutella_scale size) ~duration (Rng.create (seed + 1000))
      in
      let config =
        let c = base_config size ~seed in
        if fraction = 0.0 then c
        else
          {
            c with
            Sim.fault_schedule =
              [
                Schedule.fail_slow ~label:(Printf.sprintf "slow-%s" lbl) ~factor
                  ~extra ~time:t_fault ~duration:fault_len fraction;
              ];
          }
      in
      let r = Sim.run config ~trace in
      let s =
        Collector.summary ~since:t_fault ~until:(t_fault +. fault_len) r.Sim.collector
      in
      let delays =
        Collector.lookup_delays ~since:t_fault ~until:(t_fault +. fault_len)
          r.Sim.collector
      in
      Printf.printf "%-10s %6.0f %6d %6d %10.3f %8.1f %8.3f %8.3f %9.4f\n%!" lbl
        (100.0 *. fraction) s.Collector.suspicions s.Collector.false_suspicions
        s.Collector.false_suspicion_rate s.Collector.detect_latency_mean
        (percentile delays 0.50) (percentile delays 0.99) s.Collector.success_rate)
    rows

(* E-faults B': the bursty-loss scenario rerun with end-to-end lookup
   retries at the origin (plus root-side duplicate suppression). The
   success column is the fraction of judged lookups with at least one
   correct delivery -- the acceptance bar is >= 0.99 with retries on. *)
let bursty_retries ?(size = Quick) ~seed () =
  header "E-faults B': end-to-end lookup retries under bursty loss";
  let burst = 10.0 in
  let avg = 0.03 in
  Printf.printf "%-10s %9s %8s %9s %12s %12s %10s %10s\n" "model" "detector"
    "retries" "success" "lookup-loss" "incorrect" "la/n/s" "control";
  let uniform c = { c with Sim.loss_rate = avg } in
  let bursty c =
    {
      c with
      Sim.fault_schedule =
        [
          Schedule.set_base ~label:"bursty-loss" ~time:0.0
            (Netfault.bursty ~avg_loss:avg ~burst);
        ];
    }
  in
  (* [volley]: liveness-probe escalation base. 1 = the paper's detector
     (every probe a single packet); 8 rides out message-count bursts *)
  List.iter
    (fun (name, base_adjust, volley, retries) ->
      let cfg_adjust c =
        let c = base_adjust c in
        {
          c with
          Sim.pastry =
            {
              c.Sim.pastry with
              Mspastry.Config.e2e_lookup_retries = retries;
              probe_volley = volley;
            };
        }
      in
      let _, r = run_gnutella_with size ~seed ~cfg_adjust in
      let s = r.Sim.summary in
      let lookup_acks =
        match List.assoc_opt M.C_lookup_ack s.Collector.control_by_class with
        | Some v -> v
        | None -> 0.0
      in
      Printf.printf "%-10s %9s %8d %9.4f %12.2e %12.2e %10.4f %10.3f\n%!" name
        (if volley > 1 then Printf.sprintf "volley-%d" volley else "paper")
        retries s.Collector.success_rate s.Collector.loss_rate
        s.Collector.incorrect_rate lookup_acks s.Collector.control_per_node_per_s)
    [
      ("uniform", uniform, 1, 0);
      ("uniform", uniform, 1, 3);
      (Printf.sprintf "bursty-%g" burst, bursty, 1, 0);
      (Printf.sprintf "bursty-%g" burst, bursty, 1, 3);
      (Printf.sprintf "bursty-%g" burst, bursty, 8, 0);
      (Printf.sprintf "bursty-%g" burst, bursty, 8, 3);
    ]

(* ------------------------------------------------------------------ *)

(* E-congestion: a lookup storm against bounded per-node capacity. The
   naive overlay (FIFO queues, no backpressure) collapses: control
   messages drown with the lookups, acks and heartbeats are lost, the
   failure detector manufactures suspicions and the repair traffic feeds
   back into the queues. The graceful overlay (control prioritised,
   probe/join backpressure) sheds deferrable work and keeps the ring
   intact, so service recovers as soon as the storm passes. *)

let congestion_variants =
  [
    ("uncapped", None, false, false);
    ("naive", Some true, false, false);
    ("graceful", Some true, true, true);
  ]

let congestion_capacity = { Netsim.Net.service_rate = 6.0; queue_limit = 24 }

let congestion ?(size = Quick) ~seed () =
  header "E-congestion: lookup storm, collapse vs graceful degradation";
  let warmup = warmup_for size in
  let storm_rate, storm_len =
    match size with
    | Quick -> (1.0, 1200.0)
    | Medium -> (1.0, 1800.0)
    | Full -> (2.0, 3600.0)
  in
  let t_storm = warmup +. 600.0 in
  let duration = t_storm +. storm_len +. 1800.0 in
  Printf.printf
    "capacity %.0f msg/s/node, queue %d; +%.1f lookups/s/node for %.0fs at t=%.0fs\n"
    congestion_capacity.Netsim.Net.service_rate
    congestion_capacity.Netsim.Net.queue_limit storm_rate storm_len t_storm;
  Printf.printf "%-10s %9s %9s %9s %10s %9s %9s %10s %9s\n" "variant"
    "storm-ok" "after-ok" "control" "q-p50(s)" "q-p99(s)" "cong-drop"
    "collapse-w" "ring";
  List.iter
    (fun (name, cap, prioritize, backpressure) ->
      let trace =
        Trace.gnutella ~scale:(gnutella_scale size) ~duration
          (Rng.create (seed + 1000))
      in
      let config =
        {
          (base_config size ~seed) with
          Sim.capacity = (match cap with Some _ -> Some congestion_capacity | None -> None);
          prioritize_control = prioritize;
          exact_percentiles = true;
          pastry =
            {
              (base_config size ~seed).Sim.pastry with
              Mspastry.Config.backpressure;
            };
          fault_schedule =
            [
              Schedule.lookup_storm ~label:"storm" ~time:t_storm
                ~duration:storm_len storm_rate;
            ];
        }
      in
      let live = Sim.live_of_trace config ~trace in
      Sim.Live.run_until live (duration +. config.Sim.drain);
      Sim.Live.close live;
      let c = Sim.Live.collector live in
      let s_storm =
        Collector.summary ~since:t_storm ~until:(t_storm +. storm_len) c
      in
      let s_after =
        Collector.summary ~since:(t_storm +. storm_len) ~until:duration c
      in
      let qd = Collector.queue_delays ~since:t_storm ~until:duration c in
      let pct p = if Array.length qd = 0 then 0.0 else Repro_util.Stats.percentile qd p in
      let n = Netsim.Net.stats (Sim.Live.net live) in
      let collapse = List.length (Collector.collapse_windows c) in
      let audit = Sim.Live.ring_audit live in
      Printf.printf "%-10s %9.4f %9.4f %9.3f %10.4f %9.4f %9d %10d %9.3f\n%!"
        name s_storm.Collector.success_rate s_after.Collector.success_rate
        s_storm.Collector.control_per_node_per_s (pct 50.0) (pct 99.0)
        n.Netsim.Net.dropped_congestion collapse audit.Harness.Oracle.agreement)
    congestion_variants

(* E-flashcrowd: a mass-join flash crowd against a small steady overlay
   with bounded capacity. Join traffic converges on the few live nodes;
   without admission control it evicts lookups and acks from their
   queues. The graceful overlay defers join service and collapses probe
   volleys while overloaded, trading join latency for lookup goodput. *)
let flash_crowd ?(size = Quick) ~seed () =
  header "E-flashcrowd: mass-join flash crowd, admission control on vs off";
  let n_avg, joiners, over =
    match size with
    | Quick -> (60, 300, 600.0)
    | Medium -> (150, 750, 600.0)
    | Full -> (400, 2000, 1200.0)
  in
  let warmup = 1800.0 in
  let t_crowd = warmup +. 600.0 in
  let crowd_window = 1500.0 in
  let duration = t_crowd +. crowd_window +. 1200.0 in
  (* queue depth / service rate = 4 s of queueing when saturated — past
     the 3 s hop-RTO ceiling, so a FIFO overlay under sustained overload
     sees even delivered acks as timeouts (the collapse feedback loop);
     prioritised control keeps ack delay well under the RTO instead *)
  let cap = { Netsim.Net.service_rate = 6.0; queue_limit = 24 } in
  Printf.printf
    "steady %d nodes, %d joiners over %.0fs at t=%.0fs; capacity %.0f msg/s, queue %d\n"
    n_avg joiners over t_crowd cap.Netsim.Net.service_rate
    cap.Netsim.Net.queue_limit;
  Printf.printf "%-10s %9s %9s %8s %9s %9s %9s %10s %9s\n" "variant"
    "crowd-ok" "after-ok" "joins" "join-fail" "control" "q-p99(s)"
    "cong-drop" "ring";
  let results =
    List.map
      (fun (name, prioritize, backpressure) ->
        let trace =
          Trace.poisson
            (Rng.create (seed + 5000))
            ~n_avg ~session_mean:(hours 4.0) ~duration
        in
        let config =
          {
            (base_config size ~seed) with
            Sim.lookup_rate = 0.1;
            warmup;
            window = 300.0;
            capacity = Some cap;
            prioritize_control = prioritize;
            exact_percentiles = true;
            pastry =
              {
                (base_config size ~seed).Sim.pastry with
                Mspastry.Config.backpressure;
              };
            fault_schedule =
              [ Schedule.flash_crowd ~label:"crowd" ~time:t_crowd ~over joiners ];
          }
        in
        let live = Sim.live_of_trace config ~trace in
        Sim.Live.run_until live (duration +. config.Sim.drain);
        Sim.Live.close live;
        let c = Sim.Live.collector live in
        let s_crowd =
          Collector.summary ~since:t_crowd ~until:(t_crowd +. crowd_window) c
        in
        let s_after =
          Collector.summary ~since:(t_crowd +. crowd_window) ~until:duration c
        in
        let qd = Collector.queue_delays ~since:t_crowd ~until:duration c in
        let p99 =
          if Array.length qd = 0 then 0.0 else Repro_util.Stats.percentile qd 99.0
        in
        let n = Netsim.Net.stats (Sim.Live.net live) in
        let audit = Sim.Live.ring_audit live in
        Printf.printf "%-10s %9.4f %9.4f %8d %9d %9.3f %9.4f %10d %9.3f\n%!"
          name s_crowd.Collector.success_rate s_after.Collector.success_rate
          s_crowd.Collector.joins (Sim.Live.join_failures live)
          s_crowd.Collector.control_per_node_per_s p99
          n.Netsim.Net.dropped_congestion audit.Harness.Oracle.agreement;
        (name, s_crowd.Collector.success_rate))
      [ ("naive", false, false); ("graceful", true, true) ]
  in
  match (List.assoc_opt "naive" results, List.assoc_opt "graceful" results) with
  | Some naive, Some graceful when naive > 0.0 ->
      Printf.printf "graceful/naive success ratio during crowd: %.2fx\n%!"
        (graceful /. naive)
  | _ -> ()

(* CI smoke for the congestion path: fixed cost, fails loudly if the
   capacity model, the queue taps or the backpressure signal stayed
   cold. *)
let congestion_smoke ?size:_ ~seed () =
  header "congestion-smoke: capacity model, queue taps and backpressure (CI)";
  let duration = 2400.0 and warmup = 600.0 in
  let run ~capacity ~prioritize ~backpressure =
    let trace = Trace.gnutella ~scale:0.02 ~duration (Rng.create (seed + 1000)) in
    let config =
      {
        Sim.default_config with
        seed;
        warmup;
        window = 300.0;
        capacity;
        prioritize_control = prioritize;
        exact_percentiles = true;
        manifest_out = !manifest_out;
        pastry =
          { Sim.default_config.Sim.pastry with Mspastry.Config.backpressure };
        fault_schedule =
          [
            Schedule.lookup_storm ~label:"smoke-storm" ~time:900.0
              ~duration:900.0 2.0;
          ];
      }
    in
    let live = Sim.live_of_trace config ~trace in
    Sim.Live.run_until live (duration +. config.Sim.drain);
    Sim.Live.close live;
    live
  in
  let cap = Some { Netsim.Net.service_rate = 4.0; queue_limit = 8 } in
  let naive = run ~capacity:cap ~prioritize:false ~backpressure:false in
  let graceful = run ~capacity:cap ~prioritize:true ~backpressure:true in
  let off = run ~capacity:None ~prioritize:true ~backpressure:false in
  let drops l = (Netsim.Net.stats (Sim.Live.net l)).Netsim.Net.dropped_congestion in
  let samples l =
    Array.length (Collector.queue_delays (Sim.Live.collector l))
  in
  Printf.printf
    "naive: %d congestion drops, %d queue samples; graceful: %d drops; off: %d drops\n%!"
    (drops naive) (samples naive) (drops graceful) (drops off);
  if drops naive = 0 then failwith "congestion-smoke: capacity model never dropped";
  if samples naive = 0 then failwith "congestion-smoke: queue taps never fired";
  if drops off <> 0 then failwith "congestion-smoke: drops with the model off";
  if samples off <> 0 then failwith "congestion-smoke: queue samples with the model off";
  let audit = Sim.Live.ring_audit graceful in
  Printf.printf "graceful ring agreement: %.3f (%d audited)\n%!"
    audit.Harness.Oracle.agreement audit.Harness.Oracle.audited;
  print_endline "congestion-smoke ok"

(* ------------------------------------------------------------------ *)

(* CI smoke: a tiny fixed-cost end-to-end run that exercises node-fault
   injection, the suspicion list and end-to-end retries in a few seconds
   of wall time. [size] is accepted for CLI uniformity but ignored. *)
let smoke ?size:_ ~seed () =
  header "smoke: tiny end-to-end run with node faults (CI)";
  let duration = 2400.0 and warmup = 600.0 in
  let trace = Trace.gnutella ~scale:0.02 ~duration (Rng.create (seed + 1000)) in
  let config =
    {
      Sim.default_config with
      seed;
      warmup;
      window = 300.0;
      manifest_out = !manifest_out;
      pastry =
        { Sim.default_config.Sim.pastry with Mspastry.Config.e2e_lookup_retries = 2 };
      fault_schedule =
        [
          Schedule.fail_slow ~label:"smoke-slow" ~extra:2.0 ~time:900.0
            ~duration:600.0 0.2;
          Schedule.flapping ~label:"smoke-flap" ~time:1500.0 ~duration:600.0
            ~period:120.0 ~duty:0.3 0.1;
        ];
    }
  in
  let r = Sim.run config ~trace in
  let s = r.Sim.summary in
  let n = r.Sim.net_stats in
  Printf.printf
    "nodes=%d lookups=%d success=%.3f loss=%.2e suspicions=%d false=%d node-drops=%d\n%!"
    r.Sim.nodes_created s.Collector.lookups_sent s.Collector.success_rate
    s.Collector.loss_rate s.Collector.suspicions s.Collector.false_suspicions
    n.Netsim.Net.dropped_node;
  if s.Collector.lookups_sent = 0 then failwith "smoke: no lookups were sent";
  if s.Collector.suspicions = 0 then failwith "smoke: no suspicions were recorded";
  if n.Netsim.Net.dropped_node = 0 then failwith "smoke: node-fault hook never fired";
  print_endline "smoke ok"

let all ?(size = Quick) ~seed () =
  fig3 ~size ~seed ();
  topology_table ~size ~seed ();
  fig4 ~size ~seed ();
  fig5 ~size ~seed ();
  fig6 ~size ~seed ();
  fig7 ~size ~seed ();
  ablation ~size ~seed ();
  selftuning ~size ~seed ();
  suppression ~size ~seed ();
  structure_ablation ~size ~seed ();
  consistency ~size ~seed ();
  massive_failure ~size ~seed ();
  bursty_loss ~size ~seed ();
  fail_slow ~size ~seed ();
  bursty_retries ~size ~seed ();
  congestion ~size ~seed ();
  flash_crowd ~size ~seed ();
  apps ~size ~seed ();
  fig8 ~size ~seed ()
