open Pastry
module M = Message
module Rng = Repro_util.Rng
module Obs = Repro_obs
module Profile = Repro_obs.Profile

(* one profile phase per traffic class: where does protocol handler time
   go — lookups, acks, or background maintenance? *)
let ph_node_lookup = Profile.phase "node.lookup"
let ph_node_lookup_ack = Profile.phase "node.lookup-acks"
let ph_node_dprobe = Profile.phase "node.distance-probes"
let ph_node_leafset = Profile.phase "node.leafset-hb/probes"
let ph_node_rt_probe = Profile.phase "node.rt-probes"
let ph_node_ack = Profile.phase "node.acks+retransmits"
let ph_node_join = Profile.phase "node.join"
let ph_node_maint = Profile.phase "node.rt-maintenance"

let node_phase = function
  | M.C_lookup -> ph_node_lookup
  | M.C_lookup_ack -> ph_node_lookup_ack
  | M.C_distance_probe -> ph_node_dprobe
  | M.C_leafset -> ph_node_leafset
  | M.C_rt_probe -> ph_node_rt_probe
  | M.C_ack_retransmit -> ph_node_ack
  | M.C_join -> ph_node_join
  | M.C_maintenance -> ph_node_maint

type forward_decision = Continue | Absorb

type env = {
  now : unit -> float;
  send : dst:int -> Message.t -> unit;
  schedule : delay:float -> (unit -> unit) -> Simkit.Engine.event_id;
  cancel : Simkit.Engine.event_id -> unit;
  rng : Rng.t;
  deliver : Message.lookup -> unit;
  forward : prev:Peer.t option -> Message.lookup -> forward_decision;
  on_active : unit -> unit;
  on_join_failed : unit -> unit;
  on_lookup_drop : Message.lookup -> unit;
}

type probe_state = {
  p_peer : Peer.t;
  mutable p_retries : int;
  mutable p_timer : Simkit.Engine.event_id option;
}

type dprobe = {
  d_target : Peer.t;
  d_total : int;
  d_announce : bool;
  d_on_done : float option -> unit;
  mutable d_samples : float list;
  d_sent_at : (int, float) Hashtbl.t; (* probe_seq -> send time *)
  mutable d_finish : Simkit.Engine.event_id option;
}

type pending_hop = {
  h_payload : M.payload;
  h_key : Nodeid.t;
  h_dst : Peer.t;
  h_sent_at : float;
  h_reroutes : int;
  mutable h_timer : Simkit.Engine.event_id option;
}

type nn_state = {
  mutable nn_outstanding : int;
  mutable nn_best : Peer.t option;
  mutable nn_best_rtt : float;
  mutable nn_rounds : int;
  mutable nn_fallback : Peer.t option; (* reply sender, used if all probes fail *)
}

type buffered = { bf_payload : M.payload; bf_key : Nodeid.t; mutable bf_attempts : int }

(* negative-caching entry: quarantined until [s_until]; kept after expiry
   so a re-suspicion doubles the backoff instead of starting over *)
type susp = { s_addr : int; mutable s_until : float; mutable s_backoff : float }

type e2e_state = {
  e_key : Nodeid.t;
  mutable e_attempt : int;
  mutable e_timeout : float;
  mutable e_timer : Simkit.Engine.event_id option;
}

type t = {
  cfg : Config.t;
  env : env;
  me : Peer.t;
  mutable active : bool;
  mutable alive : bool;
  mutable was_active : bool;
  leafset : Leafset.t;
  table : Routing_table.t;
  ls_probes : (Nodeid.t, probe_state) Hashtbl.t;
  rt_probes : (Nodeid.t, probe_state) Hashtbl.t;
  failed : (Nodeid.t, unit) Hashtbl.t;
  suspicion : (Nodeid.t, susp) Hashtbl.t;
  e2e : (int, e2e_state) Hashtbl.t; (* lookup seq -> pending retry state *)
  delivered_seqs : (int * int, unit) Hashtbl.t; (* (origin addr, seq) *)
  mutable on_suspicion : (target:int -> unit) option;
  mutable load_signal : (unit -> int) option;
  last_heard : (Nodeid.t, float) Hashtbl.t;
  last_sent : (Nodeid.t, float) Hashtbl.t;
  rtos : (Nodeid.t, Rto.t) Hashtbl.t;
  excluded : (Nodeid.t, float) Hashtbl.t; (* id -> exclusion expiry *)
  pending : (int, pending_hop) Hashtbl.t;
  mutable next_hop_id : int;
  dprobes : (Nodeid.t, dprobe) Hashtbl.t;
  last_measured : (Nodeid.t, float) Hashtbl.t;
  last_rt_probe : (Nodeid.t, float) Hashtbl.t;
  dprobe_by_seq : (int, dprobe) Hashtbl.t;
  mutable next_dprobe_seq : int;
  dprobe_queue : (unit -> unit) Queue.t;
  mutable dprobes_running : int;
  tuning : Tuning.t;
  mutable trt : float;
  mutable local_trt : float;
  mutable nn : nn_state option;
  mutable join_reply_seen : bool;
  mutable join_retries : int;
  mutable join_timer : Simkit.Engine.event_id option;
  mutable bootstrap_addr : int;
  mutable buffer : buffered list;
  mutable repair_scheduled : bool;
  mutable prev_right : Nodeid.t option;
  mutable right_since : float;
  mutable trace : Obs.Trace.t;
}

let create ~cfg ~env ~id ~addr =
  (match Config.validate cfg with Ok () -> () | Error e -> invalid_arg ("Node.create: " ^ e));
  let me = Peer.make id addr in
  {
    cfg;
    env;
    me;
    active = false;
    alive = true;
    was_active = false;
    leafset = Leafset.create ~l:cfg.l ~me;
    table = Routing_table.create ~b:cfg.b ~me:id;
    ls_probes = Hashtbl.create 16;
    rt_probes = Hashtbl.create 16;
    failed = Hashtbl.create 16;
    suspicion = Hashtbl.create 16;
    e2e = Hashtbl.create 16;
    delivered_seqs = Hashtbl.create 64;
    on_suspicion = None;
    load_signal = None;
    last_heard = Hashtbl.create 64;
    last_sent = Hashtbl.create 64;
    rtos = Hashtbl.create 64;
    excluded = Hashtbl.create 8;
    pending = Hashtbl.create 16;
    next_hop_id = 0;
    dprobes = Hashtbl.create 16;
    last_measured = Hashtbl.create 64;
    last_rt_probe = Hashtbl.create 64;
    dprobe_by_seq = Hashtbl.create 16;
    next_dprobe_seq = 0;
    dprobe_queue = Queue.create ();
    dprobes_running = 0;
    tuning = Tuning.create cfg ~now:(env.now ());
    trt = (if cfg.self_tuning then cfg.t_rt_max else cfg.t_rt_fixed);
    local_trt = (if cfg.self_tuning then cfg.t_rt_max else cfg.t_rt_fixed);
    nn = None;
    join_reply_seen = false;
    join_retries = 0;
    join_timer = None;
    bootstrap_addr = -1;
    buffer = [];
    repair_scheduled = false;
    prev_right = None;
    right_since = 0.0;
    trace = Obs.Trace.disabled;
  }

let set_trace t trace = t.trace <- trace
let me t = t.me
let config t = t.cfg
let is_active t = t.active
let is_alive t = t.alive
let leafset t = t.leafset
let table t = t.table
let current_trt t = t.trt

let now t = t.env.now ()

let m_unique t =
  let ids = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace ids p.Peer.id ()) (Leafset.members t.leafset);
  List.iter (fun p -> Hashtbl.replace ids p.Peer.id ()) (Routing_table.peers t.table);
  Hashtbl.length ids

let estimated_n t = Tuning.estimate_n t.leafset
let estimated_mu t = Tuning.estimate_mu t.tuning ~m:(m_unique t) ~now:(now t)
let failed_set t = Hashtbl.fold (fun id () acc -> id :: acc) t.failed []
let pending_probes t = Hashtbl.length t.ls_probes + Hashtbl.length t.rt_probes
let pending_hops t = Hashtbl.length t.pending
let pending_e2e t = Hashtbl.length t.e2e
let set_on_suspicion t f = t.on_suspicion <- Some f
let set_load_signal t f = t.load_signal <- Some f

(* backpressure: the node is overloaded when its local queue-occupancy
   signal (wired by the harness from the netsim capacity model) is at or
   above the configured threshold. Always false in the paper's
   configuration (backpressure off) or without a wired signal. *)
let overloaded t =
  t.cfg.Config.backpressure
  &&
  match t.load_signal with
  | Some f -> f () >= t.cfg.Config.overload_threshold
  | None -> false

let suspected_set t =
  let n = now t in
  Hashtbl.fold
    (fun id s acc -> if s.s_until > n then id :: acc else acc)
    t.suspicion []

let rto_of t id =
  match Hashtbl.find_opt t.rtos id with
  | Some r -> r
  | None ->
      let r =
        Rto.create ~initial:t.cfg.hop_rto_initial ~min:t.cfg.hop_rto_min
          ~max:t.cfg.hop_rto_max
      in
      Hashtbl.add t.rtos id r;
      r

let send_msg ?hop t (dst : Peer.t) payload =
  Hashtbl.replace t.last_sent dst.Peer.id (now t);
  t.env.send ~dst:dst.Peer.addr (M.make ?hop ~sender:t.me payload)

let is_suspected t id =
  match Hashtbl.find_opt t.suspicion id with
  | Some s -> s.s_until > now t
  | None -> false

let is_excluded t id =
  (match Hashtbl.find_opt t.excluded id with
  | Some expiry when expiry > now t -> true
  | Some _ ->
      Hashtbl.remove t.excluded id;
      false
  | None -> false)
  || Hashtbl.mem t.failed id
  || is_suspected t id

let cancel_timer t = function Some ev -> t.env.cancel ev | None -> ()

let emit_ev t body = Obs.Trace.emit t.trace { Obs.Event.time = now t; body }
let traced t = Obs.Trace.enabled t.trace

let emit_probe t (target : Peer.t) kind =
  if traced t then
    emit_ev t (Obs.Event.Probe { addr = t.me.Peer.addr; target = target.Peer.addr; kind })

(* quarantine a peer that exhausted probe retries: gossip cannot
   reinstall it (probe/admission gates check [is_suspected]) until the
   backoff expires, and each relapse doubles the backoff. Only a direct
   message from the peer ([note_alive]) clears the entry. Callers use
   [suspect_and_revalidate], which also schedules an active re-probe at
   expiry — a whole neighbourhood can evict the same peer, after which
   no gossip ever names it again, so waiting passively for gossip would
   make a false eviction permanent. *)
let suspect_peer t (j : Peer.t) =
  if t.cfg.suspicion_backoff > 0.0 then begin
    let backoff =
      match Hashtbl.find_opt t.suspicion j.Peer.id with
      | Some s -> Float.min t.cfg.suspicion_backoff_max (2.0 *. s.s_backoff)
      | None -> t.cfg.suspicion_backoff
    in
    Hashtbl.replace t.suspicion j.Peer.id
      { s_addr = j.Peer.addr; s_until = now t +. backoff; s_backoff = backoff };
    if traced t then
      emit_ev t
        (Obs.Event.Suspected { addr = t.me.Peer.addr; target = j.Peer.addr; backoff });
    match t.on_suspicion with Some f -> f ~target:j.Peer.addr | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Distance probing (PNS RTT measurement, §4.2)                        *)
(* ------------------------------------------------------------------ *)

let rec start_next_dprobe t =
  if
    t.alive
    && t.dprobes_running < t.cfg.max_concurrent_distance_probes
    && not (Queue.is_empty t.dprobe_queue)
  then begin
    let thunk = Queue.pop t.dprobe_queue in
    thunk ();
    start_next_dprobe t
  end

and finish_dprobe t d =
  cancel_timer t d.d_finish;
  Hashtbl.remove t.dprobes d.d_target.Peer.id;
  Hashtbl.iter (fun seq _ -> Hashtbl.remove t.dprobe_by_seq seq) d.d_sent_at;
  t.dprobes_running <- t.dprobes_running - 1;
  let result =
    match d.d_samples with
    | [] -> None
    | samples -> Some (Repro_util.Stats.median (Array.of_list samples))
  in
  (match result with
  | Some rtt when d.d_announce && t.cfg.symmetric_probes ->
      send_msg t d.d_target (M.Rtt_report { rtt })
  | Some _ | None -> ());
  d.d_on_done result;
  start_next_dprobe t

and launch_dprobe t target ~total ~announce ~on_done =
  let d =
    {
      d_target = target;
      d_total = total;
      d_announce = announce;
      d_on_done = on_done;
      d_samples = [];
      d_sent_at = Hashtbl.create 4;
      d_finish = None;
    }
  in
  Hashtbl.replace t.dprobes target.Peer.id d;
  t.dprobes_running <- t.dprobes_running + 1;
  emit_probe t target "distance";
  let send_sample () =
    if t.alive then begin
      let seq = t.next_dprobe_seq in
      t.next_dprobe_seq <- seq + 1;
      Hashtbl.replace d.d_sent_at seq (now t);
      Hashtbl.replace t.dprobe_by_seq seq d;
      send_msg t target (M.Distance_probe { probe_seq = seq })
    end
  in
  send_sample ();
  for k = 1 to total - 1 do
    ignore
      (t.env.schedule ~delay:(float_of_int k *. t.cfg.distance_probe_spacing) send_sample)
  done;
  let finish_at = (float_of_int (total - 1) *. t.cfg.distance_probe_spacing) +. t.cfg.t_out in
  d.d_finish <- Some (t.env.schedule ~delay:finish_at (fun () -> if t.alive then finish_dprobe t d))

and request_dprobe t target ~total ~announce ~on_done =
  if Nodeid.equal target.Peer.id t.me.Peer.id then on_done None
  else if Hashtbl.mem t.dprobes target.Peer.id then on_done None
  else begin
    let start () =
      if Hashtbl.mem t.dprobes target.Peer.id then on_done None
      else launch_dprobe t target ~total ~announce ~on_done
    in
    if t.dprobes_running < t.cfg.max_concurrent_distance_probes then start ()
    else Queue.push start t.dprobe_queue
  end

(* Measure a routing-table candidate and install it under PNS rules.
   [fill_only] restricts probing to cases that add information (empty
   slot, or an installed-but-unmeasured entry); gossip contexts pass
   [fill_only:false] so closer candidates can displace occupants. A memo
   bounds how often any one peer is re-measured. *)
and maybe_measure ?(fill_only = false) t target ~announce =
  if not (Nodeid.equal target.Peer.id t.me.Peer.id) then begin
    let needed =
      match Routing_table.find t.table target.Peer.id with
      | Some e -> not (Float.is_finite e.Routing_table.rtt)
      | None -> (
          match Routing_table.slot_of t.table target.Peer.id with
          | None -> false
          | Some (r, c) -> (
              match Routing_table.get t.table r c with
              | None -> true
              | Some _ -> not fill_only))
    in
    let recently =
      match Hashtbl.find_opt t.last_measured target.Peer.id with
      | Some ts -> now t -. ts < t.cfg.rt_maintenance_period /. 2.0
      | None -> false
    in
    if
      needed && (not recently)
      && (not (Hashtbl.mem t.failed target.Peer.id))
      && not (is_suspected t target.Peer.id)
    then begin
      Hashtbl.replace t.last_measured target.Peer.id (now t);
      request_dprobe t target ~total:t.cfg.distance_probe_count ~announce
        ~on_done:(fun result ->
          match result with
          | Some rtt -> ignore (Routing_table.consider t.table target ~rtt)
          | None -> ())
    end
  end

(* ------------------------------------------------------------------ *)
(* Leaf-set probing and repair (Fig 2)                                  *)
(* ------------------------------------------------------------------ *)

let leaf_members_payload t = Leafset.members t.leafset
let failed_payload t = Hashtbl.fold (fun id () acc -> id :: acc) t.failed []

let rec probe t (j : Peer.t) =
  if
    (not (Nodeid.equal j.Peer.id t.me.Peer.id))
    && (not (Hashtbl.mem t.ls_probes j.Peer.id))
    && (not (Hashtbl.mem t.failed j.Peer.id))
    && not (is_suspected t j.Peer.id)
  then begin
    let st = { p_peer = j; p_retries = 0; p_timer = None } in
    Hashtbl.replace t.ls_probes j.Peer.id st;
    emit_probe t j "leafset";
    send_ls_probe t st
  end

and probe_copies t retries =
  (* escalating volley: retry [k] goes out as [probe_volley^k]
     back-to-back copies (replies are idempotent, any one proves
     liveness). The first transmission always costs one packet; only
     retries — already evidence of a possible loss burst — escalate, so
     the common case is untaxed while an exhausted episode has pushed
     enough packets through the link to outlast a burst. *)
  let rec pow acc n = if n <= 0 then acc else pow (acc * t.cfg.probe_volley) (n - 1) in
  (* backpressure: volleys multiply traffic exactly when the local queue
     is already saturated — collapse them to single packets under
     overload *)
  if overloaded t then 1 else min 512 (pow 1 retries)

and send_ls_probe t st =
  for _ = 1 to probe_copies t st.p_retries do
    send_msg t st.p_peer
      (M.Ls_probe { leaf = leaf_members_payload t; failed = failed_payload t; trt = t.local_trt })
  done;
  st.p_timer <-
    Some
      (t.env.schedule ~delay:t.cfg.t_out (fun () -> if t.alive then probe_timeout t st))

and probe_timeout t st =
  if Hashtbl.mem t.ls_probes st.p_peer.Peer.id then begin
    if st.p_retries < t.cfg.max_probe_retries then begin
      st.p_retries <- st.p_retries + 1;
      send_ls_probe t st
    end
    else begin
      let j = st.p_peer in
      let was_member = Leafset.mem t.leafset j.Peer.id in
      ignore (Leafset.remove t.leafset j.Peer.id);
      ignore (Routing_table.remove t.table j.Peer.id);
      Trace_log.Log.debug (fun m -> m "%a: leaf %a marked faulty" Peer.pp t.me Peer.pp j);
      Hashtbl.replace t.failed j.Peer.id ();
      suspect_and_revalidate t j;
      Tuning.record_failure t.tuning ~now:(now t);
      Hashtbl.remove t.ls_probes j.Peer.id;
      (* §4.1: announce a confirmed leaf-set failure to the other members,
         which both informs them and solicits replacement candidates *)
      if was_member && t.active then
        List.iter (fun m -> probe t m) (Leafset.members t.leafset);
      done_probing t
    end
  end

and done_probing t =
  if Hashtbl.length t.ls_probes = 0 then begin
    if Leafset.complete t.leafset then begin
      Hashtbl.reset t.failed;
      if not t.active then activate t
    end
    else schedule_repair t
  end

and schedule_repair t =
  if not t.repair_scheduled then begin
    t.repair_scheduled <- true;
    ignore
      (t.env.schedule ~delay:t.cfg.repair_delay (fun () ->
           t.repair_scheduled <- false;
           if t.alive then repair t))
  end

and repair t =
  if Hashtbl.length t.ls_probes = 0 && not (Leafset.complete t.leafset) then begin
    let half = t.cfg.l / 2 in
    (* sides that still have members: iterate outwards (Fig 2) *)
    (match Leafset.leftmost t.leafset with
    | Some lm when Leafset.left_size t.leafset < half -> probe t lm
    | Some _ | None -> ());
    (match Leafset.rightmost t.leafset with
    | Some rm when Leafset.right_size t.leafset < half -> probe t rm
    | Some _ | None -> ());
    (* generalized repair: an empty side is reseeded from the routing
       table (converges in O(log N) rounds after mass failures) *)
    let known () =
      Routing_table.peers t.table @ Leafset.members t.leafset
      |> List.filter (fun p ->
             (not (Nodeid.equal p.Peer.id t.me.Peer.id))
             && not (Hashtbl.mem t.failed p.Peer.id))
    in
    if Leafset.left_size t.leafset = 0 then begin
      let best =
        List.fold_left
          (fun acc p ->
            let d = Nodeid.cw_dist p.Peer.id t.me.Peer.id in
            match acc with
            | Some (_, bd) when Nodeid.compare bd d <= 0 -> acc
            | _ -> Some (p, d))
          None (known ())
      in
      match best with
      | Some (p, _) -> send_msg t p (M.Repair_request { left_side = true })
      | None -> ()
    end;
    if Leafset.right_size t.leafset = 0 then begin
      let best =
        List.fold_left
          (fun acc p ->
            let d = Nodeid.cw_dist t.me.Peer.id p.Peer.id in
            match acc with
            | Some (_, bd) when Nodeid.compare bd d <= 0 -> acc
            | _ -> Some (p, d))
          None (known ())
      in
      match best with
      | Some (p, _) -> send_msg t p (M.Repair_request { left_side = false })
      | None -> ()
    end
  end

(* ------------------------------------------------------------------ *)
(* Routing-table liveness probing (§3.2)                                *)
(* ------------------------------------------------------------------ *)

and rt_probe t (j : Peer.t) =
  if
    (not (Nodeid.equal j.Peer.id t.me.Peer.id))
    && (not (Hashtbl.mem t.rt_probes j.Peer.id))
    && (not (Hashtbl.mem t.ls_probes j.Peer.id))
    && (not (Hashtbl.mem t.failed j.Peer.id))
    && not (is_suspected t j.Peer.id)
  then begin
    let st = { p_peer = j; p_retries = 0; p_timer = None } in
    Hashtbl.replace t.rt_probes j.Peer.id st;
    emit_probe t j "rt";
    send_rt_probe t st
  end

and send_rt_probe t st =
  for _ = 1 to probe_copies t st.p_retries do
    send_msg t st.p_peer M.Rt_probe
  done;
  st.p_timer <-
    Some
      (t.env.schedule ~delay:t.cfg.t_out (fun () -> if t.alive then rt_probe_timeout t st))

and rt_probe_timeout t st =
  if Hashtbl.mem t.rt_probes st.p_peer.Peer.id then begin
    if st.p_retries < t.cfg.max_probe_retries then begin
      st.p_retries <- st.p_retries + 1;
      send_rt_probe t st
    end
    else begin
      let j = st.p_peer in
      Hashtbl.remove t.rt_probes j.Peer.id;
      ignore (Routing_table.remove t.table j.Peer.id);
      Hashtbl.replace t.failed j.Peer.id ();
      Tuning.record_failure t.tuning ~now:(now t);
      (* repair is lazy: periodic maintenance and passive repair refill
         the slot *)
      if Leafset.mem t.leafset j.Peer.id then begin
        (* it was also a leaf — escalate to the leaf-set machinery
           (suspicion waits for the leaf probes' own verdict, which would
           otherwise be gated) *)
        Hashtbl.remove t.failed j.Peer.id;
        probe t j
      end
      else suspect_and_revalidate t j
    end
  end

(* negative caching with active revalidation: when the quarantine
   expires, re-verify the peer ourselves instead of waiting for gossip
   to name it (which may never happen once every neighbour evicted it).
   A successful probe re-admits via the normal [handle_ls_probe] path;
   an exhausted one relapses with doubled backoff. Once the backoff is
   maxed out, only peers that would still matter to the leaf set keep
   being revalidated — confirmed-dead strangers stay quarantined
   passively. *)
and suspect_and_revalidate t (j : Peer.t) =
  suspect_peer t j;
  match Hashtbl.find_opt t.suspicion j.Peer.id with
  | None -> ()
  | Some s ->
      let expiry = s.s_until in
      ignore
        (t.env.schedule ~delay:(s.s_backoff +. 0.01) (fun () ->
             if t.alive then revalidate_suspect t j ~expiry))

and revalidate_suspect t (j : Peer.t) ~expiry =
  match Hashtbl.find_opt t.suspicion j.Peer.id with
  | Some s
    when Float.equal s.s_until expiry
         && (s.s_backoff < t.cfg.suspicion_backoff_max
             || Leafset.would_admit t.leafset j.Peer.id) ->
      (* the [failed] entry would gate the probe; this IS the retry *)
      Hashtbl.remove t.failed j.Peer.id;
      probe t j
  | Some _ | None -> ()

(* a direct message from [sender] is proof of liveness: resolve suspicion *)
and note_alive t (sender : Peer.t) =
  let id = sender.Peer.id in
  Hashtbl.replace t.last_heard id (now t);
  Hashtbl.remove t.excluded id;
  Hashtbl.remove t.failed id;
  (if Hashtbl.mem t.suspicion id then begin
     Hashtbl.remove t.suspicion id;
     if traced t then
       emit_ev t
         (Obs.Event.Unsuspected { addr = t.me.Peer.addr; target = sender.Peer.addr })
   end);
  match Hashtbl.find_opt t.rt_probes id with
  | Some st ->
      cancel_timer t st.p_timer;
      Hashtbl.remove t.rt_probes id
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Routed messages, per-hop acks (§3.2)                                 *)
(* ------------------------------------------------------------------ *)

and routed_excluded t id = is_excluded t id

and send_routed t (next : Peer.t) payload ~key ~reroutes =
  let wants_acks =
    t.cfg.per_hop_acks
    && match payload with M.Lookup l -> l.M.reliable | _ -> true
  in
  if wants_acks then begin
    let hop_id = t.next_hop_id in
    t.next_hop_id <- hop_id + 1;
    let ph =
      {
        h_payload = payload;
        h_key = key;
        h_dst = next;
        h_sent_at = now t;
        h_reroutes = reroutes;
        h_timer = None;
      }
    in
    Hashtbl.replace t.pending hop_id ph;
    let rto = Rto.timeout (rto_of t next.Peer.id) in
    ph.h_timer <-
      Some (t.env.schedule ~delay:rto (fun () -> if t.alive then hop_timeout t hop_id));
    send_msg ~hop:hop_id t next payload
  end
  else send_msg t next payload

and hop_timeout t hop_id =
  match Hashtbl.find_opt t.pending hop_id with
  | None -> ()
  | Some ph ->
      Hashtbl.remove t.pending hop_id;
      let j = ph.h_dst in
      if traced t then
        emit_ev t
          (Obs.Event.Ack_timeout
             {
               addr = t.me.Peer.addr;
               dst = j.Peer.addr;
               waited = now t -. ph.h_sent_at;
               reroutes = ph.h_reroutes;
             });
      (* temporarily exclude the silent node and check on it; only the
         probe machinery may declare it faulty *)
      Hashtbl.replace t.excluded j.Peer.id (now t +. t.cfg.exclusion_period);
      if Leafset.mem t.leafset j.Peer.id then probe t j else rt_probe t j;
      if ph.h_reroutes >= t.cfg.max_hop_reroutes then begin
        match ph.h_payload with
        | M.Lookup l -> t.env.on_lookup_drop l
        | _ -> ()
      end
      else begin
        let payload = mark_retx ph.h_payload in
        route_payload t payload ~key:ph.h_key ~reroutes:(ph.h_reroutes + 1)
      end

and mark_retx = function
  | M.Lookup l -> M.Lookup { l with retx = true }
  | other -> other

and bump_hops = function
  | M.Lookup l -> M.Lookup { l with hops = l.hops + 1 }
  | other -> other

(* route a payload from this node: Fig 2's route_i. [prev] is the hop a
   routed message arrived from (None at the origin or on local retries) —
   it feeds the common-API forward upcall. *)
and route_payload ?prev t payload ~key ~reroutes =
  let decision =
    match payload with
    | M.Lookup l -> t.env.forward ~prev l
    | _ -> Continue
  in
  match decision with
  | Absorb -> ()
  | Continue -> (
  let hop, rule =
    Route.next_hop_explained ~excluded:(routed_excluded t) ~leafset:t.leafset
      ~table:t.table ~key ()
  in
  (match payload with
  | M.Lookup l when traced t ->
      let stage =
        match rule with
        | Route.Via_leafset -> Obs.Event.Leafset
        | Route.Via_table -> Obs.Event.Table
        | Route.Via_closest -> Obs.Event.Closest
      in
      emit_ev t
        (Obs.Event.Lookup_hop
           { seq = l.M.seq; addr = t.me.Peer.addr; stage; hops = l.M.hops; retx = l.M.retx })
  | _ -> ());
  match hop with
  | Route.Deliver -> receive_root t payload ~key ~reroutes
  | Route.Forward next ->
      (* passive routing-table repair: if our own slot for this key is
         empty, ask the next hop for its entry *)
      (match Route.empty_slot_on_path ~leafset:t.leafset ~table:t.table ~key with
      | Some (row, col) when t.active -> send_msg t next (M.Slot_request { row; col })
      | Some _ | None -> ());
      send_routed t next (bump_hops payload) ~key ~reroutes)

and receive_root t payload ~key ~reroutes =
  match payload with
  | M.Lookup l ->
      (* consistency guard: per-hop-ack exclusions steer *forwarding* but
         must never make us deliver a key whose root (per the unexcluded
         leaf set) is someone else — a lost ack would otherwise cause an
         inconsistent delivery. Retry shortly: either the excluded root
         answers its liveness probe (and the retry reaches it), or it is
         declared faulty and evicted, making us the genuine root. *)
      let owner = Leafset.closest t.leafset key in
      if
        (not (Nodeid.equal owner.Peer.id t.me.Peer.id))
        && reroutes <= t.cfg.root_retries
        && reroutes < t.cfg.max_hop_reroutes
      then begin
        (* the leaf set still names someone else as the root: bypass the
           exclusion and retransmit straight to it with growing backoff —
           a lost ack recovers in one extra round-trip. Only after
           [root_retries] attempts does the local node deliver in the
           root's stead (§3.2's consistency/latency dial). *)
        let backoff = 0.5 *. float_of_int reroutes in
        ignore
          (t.env.schedule ~delay:backoff (fun () ->
               if t.alive then begin
                 let owner' = Leafset.closest t.leafset key in
                 if Nodeid.equal owner'.Peer.id t.me.Peer.id then
                   receive_root t payload ~key ~reroutes:(reroutes + 1)
                 else
                   send_routed t owner' (mark_retx payload) ~key
                     ~reroutes:(reroutes + 1)
               end))
      end
      else begin
        let sides_ok =
          Leafset.left_size t.leafset = 0 = (Leafset.right_size t.leafset = 0)
        in
        if t.active && sides_ok then deliver_at_root t l
        else push_buffer t payload ~key
      end
  | M.Join_request { joiner; rows } ->
      if Nodeid.equal joiner.Peer.id t.me.Peer.id then ()
        (* admission control: under overload the root defers the join —
           the joiner's retry timer re-attempts once the crowd thins *)
      else if overloaded t then ()
      else if t.active then begin
        let rows = own_rows_from t (Nodeid.shared_prefix_length ~b:t.cfg.b t.me.Peer.id joiner.Peer.id) @ rows in
        let leaf = t.me :: leaf_members_payload t in
        send_msg t joiner (M.Join_reply { rows; leaf })
      end
      else push_buffer t payload ~key
  | _ -> ()

(* deliver a lookup we are the root for. With end-to-end retries on, the
   root also suppresses duplicate deliveries (per-hop retransmissions
   after a lost ack, and the origin's own e2e re-issues, both produce
   copies) and returns a delivery receipt so the origin can stand down. *)
and deliver_at_root t (l : M.lookup) =
  if t.cfg.e2e_lookup_retries > 0 then begin
    let k = (l.M.origin.Peer.addr, l.M.seq) in
    if not (Hashtbl.mem t.delivered_seqs k) then begin
      Hashtbl.replace t.delivered_seqs k ();
      t.env.deliver l
    end;
    if l.M.reliable then send_msg t l.M.origin (M.Lookup_ack { seq = l.M.seq })
  end
  else t.env.deliver l

and own_rows_from t r0 =
  let rows = Routing_table.rows t.table in
  let acc = ref [] in
  for r = rows - 1 downto r0 do
    let entries =
      Routing_table.row_entries t.table r
      |> List.map (fun e -> (e.Routing_table.peer, e.Routing_table.rtt))
    in
    if entries <> [] then acc := (r, entries) :: !acc
  done;
  !acc

and push_buffer t payload ~key =
  if List.length t.buffer >= 1000 then begin
    (* drop the oldest entry (tail of the newest-first list) *)
    match List.rev t.buffer with
    | { bf_payload = M.Lookup l; _ } :: rest ->
        t.env.on_lookup_drop l;
        t.buffer <- List.rev rest
    | _ :: rest -> t.buffer <- List.rev rest
    | [] -> ()
  end;
  (* newest first; flush reverses to preserve arrival order *)
  t.buffer <- { bf_payload = payload; bf_key = key; bf_attempts = 0 } :: t.buffer

and flush_buffer t =
  if t.active && t.buffer <> [] then begin
    let entries = List.rev t.buffer in
    t.buffer <- [];
    List.iter
      (fun e ->
        e.bf_attempts <- e.bf_attempts + 1;
        if e.bf_attempts > 60 then begin
          match e.bf_payload with
          | M.Lookup l -> t.env.on_lookup_drop l
          | _ -> ()
        end
        else route_payload t e.bf_payload ~key:e.bf_key ~reroutes:0)
      entries;
    if t.buffer <> [] then
      ignore (t.env.schedule ~delay:1.0 (fun () -> if t.alive then flush_buffer t))
  end

(* ------------------------------------------------------------------ *)
(* Activation and periodic maintenance                                  *)
(* ------------------------------------------------------------------ *)

and activate t =
  if not t.active then begin
    Trace_log.Log.debug (fun m ->
        m "%a: active (leafset %d members)" Peer.pp t.me (Leafset.size t.leafset));
    t.active <- true;
    (match t.join_timer with
    | Some ev ->
        t.env.cancel ev;
        t.join_timer <- None
    | None -> ());
    Hashtbl.reset t.failed;
    if not t.was_active then begin
      t.was_active <- true;
      if traced t then emit_ev t (Obs.Event.Node_join { addr = t.me.Peer.addr });
      t.env.on_active ();
      announce_rows t;
      start_periodics t
    end;
    flush_buffer t
  end

and announce_rows t =
  (* §2: after initializing its table, the joiner sends row r to every
     node in that row (announcing itself and gossiping the row) *)
  for r = 0 to Routing_table.rows t.table - 1 do
    let entries = Routing_table.row_entries t.table r in
    if entries <> [] then begin
      let payload_entries =
        List.map (fun e -> (e.Routing_table.peer, e.Routing_table.rtt)) entries
      in
      List.iter
        (fun e -> send_msg t e.Routing_table.peer (M.Row_announce { row = r; entries = payload_entries }))
        entries
    end
  done

and start_periodics t =
  let jitter p = Rng.float t.env.rng p in
  (* leaf-set heartbeats *)
  let rec hb_tick () =
    if t.alive then begin
      if t.active then heartbeat_round t;
      ignore (t.env.schedule ~delay:t.cfg.t_ls (fun () -> hb_tick ()))
    end
  in
  ignore (t.env.schedule ~delay:(jitter t.cfg.t_ls) (fun () -> hb_tick ()));
  (* routing-table liveness probing: each entry is probed every Trt
     seconds; the scan itself runs more often so that a freshly lowered
     Trt takes effect promptly *)
  if t.cfg.active_probing then begin
    let scan_period () = Float.max 1.0 (Float.min 60.0 (t.trt /. 4.0)) in
    let rec rt_tick () =
      if t.alive then begin
        if t.active then rt_probe_round t;
        ignore (t.env.schedule ~delay:(scan_period ()) (fun () -> rt_tick ()))
      end
    in
    ignore (t.env.schedule ~delay:(jitter (scan_period ())) (fun () -> rt_tick ()))
  end;
  (* periodic routing-table maintenance gossip *)
  let rec maint_tick () =
    if t.alive then begin
      if t.active then maintenance_round t;
      ignore (t.env.schedule ~delay:t.cfg.rt_maintenance_period (fun () -> maint_tick ()))
    end
  in
  ignore (t.env.schedule ~delay:(jitter t.cfg.rt_maintenance_period) (fun () -> maint_tick ()));
  (* self-tuning refresh *)
  if t.cfg.self_tuning then begin
    let rec tune_tick () =
      if t.alive then begin
        if t.active then begin
          let m = m_unique t in
          t.local_trt <- Tuning.local_trt t.tuning ~leafset:t.leafset ~m ~now:(now t);
          t.trt <- Tuning.current_trt t.tuning ~leafset:t.leafset ~m ~now:(now t)
        end;
        ignore (t.env.schedule ~delay:t.cfg.tuning_refresh_period (fun () -> tune_tick ()))
      end
    in
    ignore (t.env.schedule ~delay:(jitter t.cfg.tuning_refresh_period) (fun () -> tune_tick ()))
  end

and heartbeat_round t =
  let n = now t in
  if t.cfg.exploit_structure then begin
    (* single heartbeat to the left ring neighbour (§4.1) *)
    (match Leafset.left_neighbor t.leafset with
    | Some ln ->
        let fresh =
          t.cfg.probe_suppression
          &&
          match Hashtbl.find_opt t.last_sent ln.Peer.id with
          | Some ts -> n -. ts < t.cfg.t_ls
          | None -> false
        in
        if not fresh then send_msg t ln M.Heartbeat
    | None -> ());
    (* watch the right neighbour *)
    match Leafset.right_neighbor t.leafset with
    | Some rn ->
        let changed =
          match t.prev_right with
          | Some id -> not (Nodeid.equal id rn.Peer.id)
          | None -> true
        in
        if changed then begin
          t.prev_right <- Some rn.Peer.id;
          t.right_since <- n
        end;
        let last =
          Float.max t.right_since
            (match Hashtbl.find_opt t.last_heard rn.Peer.id with Some v -> v | None -> 0.0)
        in
        if n -. last > t.cfg.t_ls +. t.cfg.t_out then probe t rn
    | None -> ()
  end
  else
    (* baseline: probe every leaf-set member each period *)
    List.iter
      (fun m ->
        let fresh =
          t.cfg.probe_suppression
          &&
          match Hashtbl.find_opt t.last_heard m.Peer.id with
          | Some ts -> n -. ts < t.cfg.t_ls
          | None -> false
        in
        if not fresh then probe t m)
      (Leafset.members t.leafset)

and rt_probe_round t =
  (* backpressure: routing-table probing is deferrable — skip the round
     under overload; the scan tick retries shortly *)
  if overloaded t then ()
  else begin
  let n = now t in
  List.iter
    (fun (e : Routing_table.entry) ->
      let j = e.Routing_table.peer in
      let fresh =
        t.cfg.probe_suppression
        &&
        match Hashtbl.find_opt t.last_heard j.Peer.id with
        | Some ts -> n -. ts < t.trt
        | None -> false
      in
      let recently_probed =
        match Hashtbl.find_opt t.last_rt_probe j.Peer.id with
        | Some ts -> n -. ts < t.trt
        | None -> false
      in
      if (not fresh) && not recently_probed then begin
        Hashtbl.replace t.last_rt_probe j.Peer.id n;
        rt_probe t j
      end)
    (Routing_table.entries t.table)
  end

and maintenance_round t =
  (* backpressure: maintenance gossip is the most deferrable traffic of
     all — skip the round under overload; the next tick retries *)
  if overloaded t then ()
  else
    (* ask one node per row for its matching row; probe unknown entries *)
    for r = 0 to Routing_table.rows t.table - 1 do
      match Routing_table.row_entries t.table r with
      | [] -> ()
      | entries ->
          let arr = Array.of_list entries in
          let e = Rng.pick t.env.rng arr in
          send_msg t e.Routing_table.peer (M.Row_request { row = r })
    done

(* ------------------------------------------------------------------ *)
(* Join (§2, Fig 2)                                                     *)
(* ------------------------------------------------------------------ *)

and bootstrap t =
  if not t.was_active then activate t

and join t ~bootstrap_addr =
  t.bootstrap_addr <- bootstrap_addr;
  start_join_attempt t

and start_join_attempt t =
  if t.alive && not t.active then begin
    t.nn <-
      Some
        {
          nn_outstanding = 0;
          nn_best = None;
          nn_best_rtt = infinity;
          nn_rounds = 0;
          nn_fallback = None;
        };
    t.join_reply_seen <- false;
    (* the bootstrap address is all we know; its id arrives in the reply *)
    t.env.send ~dst:t.bootstrap_addr (M.make ~sender:t.me M.Nn_request);
    (match t.join_timer with Some ev -> t.env.cancel ev | None -> ());
    t.join_timer <-
      Some
        (t.env.schedule ~delay:t.cfg.join_retry_period (fun () ->
             if t.alive && not t.active then begin
               t.join_retries <- t.join_retries + 1;
               if t.join_retries > t.cfg.max_join_retries then begin
                 Trace_log.Log.info (fun m -> m "%a: join failed after %d attempts"
                     Peer.pp t.me t.join_retries);
                 t.alive <- false;
                 t.env.on_join_failed ()
               end
               else start_join_attempt t
             end))
  end

and nn_probe_done t nn peer result =
  nn.nn_outstanding <- nn.nn_outstanding - 1;
  (match result with
  | Some rtt when rtt < nn.nn_best_rtt ->
      nn.nn_best <- Some peer;
      nn.nn_best_rtt <- rtt
  | Some _ | None -> ());
  if nn.nn_outstanding <= 0 then nn_round_complete t nn

and nn_round_complete t nn =
  if t.alive && not t.active && not t.join_reply_seen then begin
    match (nn.nn_best, nn.nn_fallback) with
    | None, None -> () (* nothing answered; the join timer retries *)
    | None, Some seed -> send_join_request t seed
    | Some best, fallback ->
        (* greedy descent: recurse into the closest node found, unless we
           already asked it (no improvement) or rounds are exhausted *)
        let same_as_asked =
          match fallback with
          | Some f -> Nodeid.equal f.Peer.id best.Peer.id
          | None -> false
        in
        if nn.nn_rounds < 3 && not same_as_asked then begin
          nn.nn_rounds <- nn.nn_rounds + 1;
          send_msg t best M.Nn_request
        end
        else send_join_request t best
  end

and send_join_request t seed =
  t.nn <- None;
  send_msg t seed (M.Join_request { joiner = t.me; rows = [] })

(* ------------------------------------------------------------------ *)
(* Message dispatch                                                     *)
(* ------------------------------------------------------------------ *)

and handle t ~src:_ (msg : M.t) =
  if t.alive then begin
    let sender = msg.M.sender in
    note_alive t sender;
    (match msg.M.hop with
    | Some hop_id -> send_msg t sender (M.Hop_ack { hop_id })
    | None -> ());
    match msg.M.payload with
    | M.Lookup l -> route_payload ~prev:sender t (M.Lookup l) ~key:l.M.key ~reroutes:0
    | M.Lookup_ack { seq } -> handle_lookup_ack t seq
    | M.Hop_ack { hop_id } -> handle_hop_ack t hop_id
    | M.Join_request { joiner; rows } ->
        (* admission control: refuse to forward join traffic under
           overload (the joiner retries later) *)
        if not (overloaded t) then handle_join_request t ~sender ~joiner ~rows
    | M.Join_reply { rows; leaf } -> handle_join_reply t ~rows ~leaf
    | M.Ls_probe { leaf; failed; trt } ->
        handle_ls_probe t ~sender ~leaf ~failed ~trt ~is_reply:false
    | M.Ls_probe_reply { leaf; failed; trt } ->
        handle_ls_probe t ~sender ~leaf ~failed ~trt ~is_reply:true
    | M.Heartbeat -> () (* note_alive already recorded it *)
    | M.Rt_probe -> send_msg t sender (M.Rt_probe_reply { trt = t.local_trt })
    | M.Rt_probe_reply { trt } -> if t.cfg.self_tuning then Tuning.observe_remote t.tuning trt
    | M.Distance_probe { probe_seq } ->
        send_msg t sender (M.Distance_probe_reply { probe_seq })
    | M.Distance_probe_reply { probe_seq } -> handle_dprobe_reply t probe_seq
    | M.Rtt_report { rtt } ->
        (* symmetric PNS: the peer measured us; consider it at that cost *)
        ignore (Routing_table.consider t.table sender ~rtt)
    | M.Row_announce { row = _; entries } ->
        List.iter (fun (p, _) -> maybe_measure t p ~announce:true) entries;
        if not t.cfg.symmetric_probes then maybe_measure t sender ~announce:false
    | M.Row_request { row } ->
        let entries =
          Routing_table.row_entries t.table row
          |> List.map (fun e -> (e.Routing_table.peer, e.Routing_table.rtt))
        in
        send_msg t sender (M.Row_reply { row; entries })
    | M.Row_reply { row = _; entries } ->
        List.iter (fun (p, _) -> maybe_measure t p ~announce:true) entries
    | M.Slot_request { row; col } ->
        let entry =
          match Routing_table.get t.table row col with
          | Some e -> Some (e.Routing_table.peer, e.Routing_table.rtt)
          | None -> None
        in
        send_msg t sender (M.Slot_reply { row; col; entry })
    | M.Slot_reply { entry; _ } -> (
        match entry with
        | Some (p, _) -> maybe_measure t p ~announce:true
        | None -> ())
    | M.Repair_request { left_side = _ } ->
        let cands =
          t.me :: (Routing_table.peers t.table @ Leafset.members t.leafset)
          |> List.sort_uniq (fun a b -> Nodeid.compare a.Peer.id b.Peer.id)
          |> List.filter (fun p -> not (Nodeid.equal p.Peer.id sender.Peer.id))
          |> List.sort (fun a b ->
                 Nodeid.compare
                   (Nodeid.ring_dist a.Peer.id sender.Peer.id)
                   (Nodeid.ring_dist b.Peer.id sender.Peer.id))
        in
        send_msg t sender
          (M.Repair_reply { candidates = Repro_util.Listx.take (t.cfg.l + 1) cands })
    | M.Repair_reply { candidates } ->
        List.iter
          (fun p ->
            if Leafset.would_admit t.leafset p.Peer.id && not (Hashtbl.mem t.failed p.Peer.id)
            then probe t p)
          candidates;
        if Hashtbl.length t.ls_probes = 0 then done_probing t
    | M.Goodbye ->
        (* the sender vouches for its own departure: evict immediately and
           start repair, skipping probe verification *)
        ignore (Leafset.remove t.leafset sender.Peer.id);
        ignore (Routing_table.remove t.table sender.Peer.id);
        Hashtbl.replace t.failed sender.Peer.id ();
        Tuning.record_failure t.tuning ~now:(now t);
        if Hashtbl.length t.ls_probes = 0 then done_probing t
    | M.Nn_request ->
        (* admission control: seed discovery is the front door of a join
           — under overload, stay silent and let the joiner retry *)
        if not (overloaded t) then
          send_msg t sender (M.Nn_reply { leaf = leaf_members_payload t })
    | M.Nn_reply { leaf } -> handle_nn_reply t ~sender ~leaf
  end

and handle_hop_ack t hop_id =
  match Hashtbl.find_opt t.pending hop_id with
  | None -> ()
  | Some ph ->
      cancel_timer t ph.h_timer;
      Hashtbl.remove t.pending hop_id;
      let rtt = now t -. ph.h_sent_at in
      if traced t then
        emit_ev t
          (Obs.Event.Hop_ack { addr = t.me.Peer.addr; dst = ph.h_dst.Peer.addr; rtt });
      Rto.observe (rto_of t ph.h_dst.Peer.id) rtt

and handle_dprobe_reply t probe_seq =
  match Hashtbl.find_opt t.dprobe_by_seq probe_seq with
  | None -> ()
  | Some d -> (
      Hashtbl.remove t.dprobe_by_seq probe_seq;
      match Hashtbl.find_opt d.d_sent_at probe_seq with
      | None -> ()
      | Some sent ->
          Hashtbl.remove d.d_sent_at probe_seq;
          d.d_samples <- (now t -. sent) :: d.d_samples;
          if List.length d.d_samples >= d.d_total then finish_dprobe t d)

and handle_join_request t ~sender:_ ~joiner ~rows =
  if Nodeid.equal joiner.Peer.id t.me.Peer.id then
    (* our own request was routed back to us (someone already gossiped our
       id); the join retry timer will take another attempt *)
    ()
  else begin
    (* contribute our row matching the joiner's prefix, then route on *)
    let r = Nodeid.shared_prefix_length ~b:t.cfg.b t.me.Peer.id joiner.Peer.id in
    let entries =
      if r >= Routing_table.rows t.table then []
      else
        Routing_table.row_entries t.table r
        |> List.map (fun e -> (e.Routing_table.peer, e.Routing_table.rtt))
    in
    let rows = if entries = [] then rows else (r, entries) :: rows in
    route_payload t (M.Join_request { joiner; rows }) ~key:joiner.Peer.id ~reroutes:0
  end

and handle_join_reply t ~rows ~leaf =
  if (not t.active) && not t.join_reply_seen then begin
    t.join_reply_seen <- true;
    t.nn <- None;
    (* install the gathered rows; RTTs from other vantage points are not
       ours, so entries start unmeasured and are probed (§4.2) *)
    List.iter
      (fun (_, entries) ->
        List.iter
          (fun ((p : Peer.t), _claimed) ->
            if not (Nodeid.equal p.Peer.id t.me.Peer.id) then begin
              (match Routing_table.find t.table p.Peer.id with
              | None -> (
                  match Routing_table.slot_of t.table p.Peer.id with
                  | Some (r, c) when Routing_table.get t.table r c = None ->
                      ignore (Routing_table.set t.table p ~rtt:infinity)
                  | Some _ | None -> ())
              | Some _ -> ());
              maybe_measure t p ~announce:true
            end)
          entries)
      rows;
    (* Fig 2: add the leaf-set candidates, then probe every member *)
    List.iter (fun p -> ignore (Leafset.add t.leafset p)) leaf;
    List.iter (fun p -> maybe_measure ~fill_only:true t p ~announce:true) leaf;
    let members = Leafset.members t.leafset in
    if members = [] then
      (* the root knew nobody: we are the second node; probe the root *)
      ()
    else List.iter (fun p -> probe t p) members;
    if Hashtbl.length t.ls_probes = 0 then done_probing t
  end

and handle_ls_probe t ~sender ~leaf ~failed ~trt ~is_reply =
  if t.cfg.self_tuning then Tuning.observe_remote t.tuning trt;
  (* Fig 2 RECEIVE(LS-PROBE | LS-PROBE-REPLY) *)
  Hashtbl.remove t.failed sender.Peer.id;
  ignore (Leafset.add t.leafset sender);
  maybe_measure ~fill_only:true t sender ~announce:true;
  (* verify claimed failures of our own members before evicting them *)
  List.iter
    (fun id ->
      if Leafset.mem t.leafset id then begin
        match
          List.find_opt (fun p -> Nodeid.equal p.Peer.id id) (Leafset.members t.leafset)
        with
        | Some p ->
            ignore (Leafset.remove t.leafset id);
            probe t p
        | None -> ()
      end)
    failed;
  (* candidates from the sender's leaf set: probe before admission (the
     anti-bounce rule: never insert a node we have not heard from) *)
  List.iter
    (fun (p : Peer.t) ->
      if
        (not (Hashtbl.mem t.failed p.Peer.id))
        && (not (Nodeid.equal p.Peer.id t.me.Peer.id))
        && Leafset.would_admit t.leafset p.Peer.id
      then probe t p)
    leaf;
  if not is_reply then
    send_msg t sender
      (M.Ls_probe_reply
         { leaf = leaf_members_payload t; failed = failed_payload t; trt = t.local_trt })
  else begin
    match Hashtbl.find_opt t.ls_probes sender.Peer.id with
    | Some st ->
        cancel_timer t st.p_timer;
        Hashtbl.remove t.ls_probes sender.Peer.id;
        done_probing t
    | None -> ()
  end

and handle_nn_reply t ~sender ~leaf =
  match t.nn with
  | None -> ()
  | Some nn ->
      (* ignore duplicate replies while a probing round is in flight —
         resetting the outstanding count mid-round would let the round
         complete on partial RTT data *)
      if (not t.join_reply_seen) && nn.nn_outstanding <= 0 then begin
        nn.nn_fallback <- Some sender;
        let targets =
          sender :: leaf
          |> List.sort_uniq (fun a b -> Nodeid.compare a.Peer.id b.Peer.id)
          |> List.filter (fun p -> not (Nodeid.equal p.Peer.id t.me.Peer.id))
        in
        if targets = [] then send_join_request t sender
        else begin
          nn.nn_outstanding <- List.length targets;
          (* single-sample probes: §4.2's cheap nearest-neighbour mode *)
          List.iter
            (fun p ->
              request_dprobe t p ~total:1 ~announce:false ~on_done:(fun r ->
                  match t.nn with
                  | Some nn' when nn' == nn -> nn_probe_done t nn p r
                  | Some _ | None -> ()))
            targets
        end
      end

and lookup ?(reliable = true) t ~key ~seq =
  let payload =
    M.Lookup { key; seq; origin = t.me; hops = 0; retx = false; reliable }
  in
  if reliable && t.cfg.e2e_lookup_retries > 0 then install_e2e t ~key ~seq;
  route_payload t payload ~key ~reroutes:0

(* ------------------------------------------------------------------ *)
(* End-to-end lookup retries at the origin                              *)
(* ------------------------------------------------------------------ *)

(* first timeout: twice the expected route time under the initial
   per-hop RTO, from the leaf-set density estimate of N (the same
   estimator the self-tuning uses) — deterministic, no RTT history *)
and install_e2e t ~key ~seq =
  let cols = float_of_int (1 lsl t.cfg.b) in
  let hops_est =
    1.0 +. (Float.log (Float.max cols (estimated_n t)) /. Float.log cols)
  in
  let timeout =
    Float.max t.cfg.e2e_timeout_min (2.0 *. hops_est *. t.cfg.hop_rto_initial)
  in
  let st = { e_key = key; e_attempt = 0; e_timeout = timeout; e_timer = None } in
  Hashtbl.replace t.e2e seq st;
  arm_e2e t seq st

and arm_e2e t seq st =
  st.e_timer <-
    Some
      (t.env.schedule ~delay:st.e_timeout (fun () ->
           if t.alive then e2e_timeout t seq))

and e2e_timeout t seq =
  match Hashtbl.find_opt t.e2e seq with
  | None -> ()
  | Some st ->
      if st.e_attempt >= t.cfg.e2e_lookup_retries then Hashtbl.remove t.e2e seq
      else begin
        st.e_attempt <- st.e_attempt + 1;
        st.e_timeout <- 2.0 *. st.e_timeout;
        if traced t then
          emit_ev t
            (Obs.Event.Lookup_retry
               { seq; addr = t.me.Peer.addr; attempt = st.e_attempt });
        let payload =
          M.Lookup
            {
              key = st.e_key;
              seq;
              origin = t.me;
              hops = 0;
              retx = true;
              reliable = true;
            }
        in
        arm_e2e t seq st;
        route_payload t payload ~key:st.e_key ~reroutes:0
      end

and handle_lookup_ack t seq =
  match Hashtbl.find_opt t.e2e seq with
  | None -> ()
  | Some st ->
      cancel_timer t st.e_timer;
      Hashtbl.remove t.e2e seq

let crash t =
  if t.alive && traced t then emit_ev t (Obs.Event.Node_crash { addr = t.me.Peer.addr });
  t.active <- false;
  t.alive <- false

let leave t =
  if t.alive then begin
    if t.active then
      List.iter (fun m -> send_msg t m M.Goodbye) (Leafset.members t.leafset);
    crash t
  end

let bootstrap = bootstrap
let join = join

let handle t ~src msg =
  if !Profile.on then begin
    let ph = node_phase (M.classify msg) in
    Profile.enter ph;
    handle t ~src msg;
    Profile.leave ph
  end
  else handle t ~src msg

let lookup = lookup
