open Pastry

type lookup = {
  key : Nodeid.t;
  seq : int;
  origin : Peer.t;
  hops : int;
  retx : bool;
  reliable : bool;
}

type entry = Peer.t * float

type payload =
  | Join_request of { joiner : Peer.t; rows : (int * entry list) list }
  | Join_reply of { rows : (int * entry list) list; leaf : Peer.t list }
  | Ls_probe of { leaf : Peer.t list; failed : Nodeid.t list; trt : float }
  | Ls_probe_reply of { leaf : Peer.t list; failed : Nodeid.t list; trt : float }
  | Heartbeat
  | Lookup of lookup
  | Lookup_ack of { seq : int }
  | Hop_ack of { hop_id : int }
  | Rt_probe
  | Rt_probe_reply of { trt : float }
  | Distance_probe of { probe_seq : int }
  | Distance_probe_reply of { probe_seq : int }
  | Rtt_report of { rtt : float }
  | Row_announce of { row : int; entries : entry list }
  | Row_request of { row : int }
  | Row_reply of { row : int; entries : entry list }
  | Slot_request of { row : int; col : int }
  | Slot_reply of { row : int; col : int; entry : entry option }
  | Repair_request of { left_side : bool }
  | Repair_reply of { candidates : Peer.t list }
  | Nn_request
  | Nn_reply of { leaf : Peer.t list }
  | Goodbye

type t = { sender : Peer.t; hop : int option; payload : payload }

let make ?hop ~sender payload = { sender; hop; payload }

type traffic_class =
  | C_lookup
  | C_lookup_ack
  | C_distance_probe
  | C_leafset
  | C_rt_probe
  | C_ack_retransmit
  | C_join
  | C_maintenance

let classify t =
  match t.payload with
  | Lookup l -> if l.retx then C_ack_retransmit else C_lookup
  | Lookup_ack _ -> C_lookup_ack
  | Hop_ack _ -> C_ack_retransmit
  | Join_request _ | Join_reply _ | Row_announce _ | Nn_request | Nn_reply _ -> C_join
  | Ls_probe _ | Ls_probe_reply _ | Heartbeat | Repair_request _ | Repair_reply _
  | Goodbye ->
      C_leafset
  | Rt_probe | Rt_probe_reply _ -> C_rt_probe
  | Distance_probe _ | Distance_probe_reply _ | Rtt_report _ -> C_distance_probe
  | Row_request _ | Row_reply _ | Slot_request _ | Slot_reply _ -> C_maintenance

let class_name = function
  | C_lookup -> "lookup"
  | C_lookup_ack -> "lookup-acks"
  | C_distance_probe -> "distance-probes"
  | C_leafset -> "leafset-hb/probes"
  | C_rt_probe -> "rt-probes"
  | C_ack_retransmit -> "acks+retransmits"
  | C_join -> "join"
  | C_maintenance -> "rt-maintenance"

let all_classes =
  [
    C_lookup;
    C_lookup_ack;
    C_distance_probe;
    C_leafset;
    C_rt_probe;
    C_ack_retransmit;
    C_join;
    C_maintenance;
  ]

let is_control = function C_lookup -> false | _ -> true

(* queueing priority under the netsim capacity model: keeping failure
   detection and per-hop acking alive under overload matters more than
   forwarding one more lookup *)
let priority = function C_lookup -> 0 | _ -> 1
