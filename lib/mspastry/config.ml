type t = {
  b : int;
  l : int;
  t_ls : float;
  t_out : float;
  max_probe_retries : int;
  probe_volley : int;
  per_hop_acks : bool;
  active_probing : bool;
  self_tuning : bool;
  lr_target : float;
  t_rt_fixed : float;
  t_rt_max : float;
  probe_suppression : bool;
  symmetric_probes : bool;
  exploit_structure : bool;
  rt_maintenance_period : float;
  distance_probe_count : int;
  distance_probe_spacing : float;
  max_concurrent_distance_probes : int;
  hop_rto_initial : float;
  hop_rto_min : float;
  hop_rto_max : float;
  max_hop_reroutes : int;
  root_retries : int;
  exclusion_period : float;
  join_retry_period : float;
  max_join_retries : int;
  tuning_refresh_period : float;
  repair_delay : float;
  suspicion_backoff : float;
  suspicion_backoff_max : float;
  e2e_lookup_retries : int;
  e2e_timeout_min : float;
  backpressure : bool;
  overload_threshold : int;
}

let default =
  {
    b = 4;
    l = 32;
    t_ls = 30.0;
    t_out = 3.0;
    max_probe_retries = 2;
    probe_volley = 1;
    per_hop_acks = true;
    active_probing = true;
    self_tuning = true;
    lr_target = 0.05;
    t_rt_fixed = 30.0;
    t_rt_max = 3600.0;
    probe_suppression = true;
    symmetric_probes = true;
    exploit_structure = true;
    rt_maintenance_period = 1200.0;
    distance_probe_count = 3;
    distance_probe_spacing = 1.0;
    max_concurrent_distance_probes = 8;
    hop_rto_initial = 0.5;
    hop_rto_min = 0.02;
    hop_rto_max = 3.0;
    max_hop_reroutes = 20;
    root_retries = 4;
    exclusion_period = 30.0;
    join_retry_period = 20.0;
    max_join_retries = 3;
    tuning_refresh_period = 30.0;
    repair_delay = 1.0;
    suspicion_backoff = 30.0;
    suspicion_backoff_max = 600.0;
    e2e_lookup_retries = 0;
    e2e_timeout_min = 1.0;
    backpressure = false;
    overload_threshold = 16;
  }

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.b < 1 || t.b > 8 then err "b must be in 1..8 (got %d)" t.b
  else if t.l < 2 || t.l mod 2 <> 0 then err "l must be even and >= 2 (got %d)" t.l
  else if t.t_ls <= 0.0 then err "t_ls must be positive"
  else if t.t_out <= 0.0 then err "t_out must be positive"
  else if t.max_probe_retries < 0 then err "max_probe_retries must be >= 0"
  else if t.probe_volley < 1 then err "probe_volley must be >= 1"
  else if t.lr_target <= 0.0 || t.lr_target >= 1.0 then
    err "lr_target must be in (0,1)"
  else if t.t_rt_fixed <= 0.0 || t.t_rt_max <= 0.0 then err "Trt bounds must be positive"
  else if t.distance_probe_count < 1 then err "distance_probe_count must be >= 1"
  else if t.hop_rto_min <= 0.0 || t.hop_rto_max < t.hop_rto_min then
    err "bad per-hop RTO bounds"
  else if t.max_hop_reroutes < 0 then err "max_hop_reroutes must be >= 0"
  else if t.root_retries < 0 then err "root_retries must be >= 0"
  else if t.suspicion_backoff < 0.0 then err "suspicion_backoff must be >= 0"
  else if t.suspicion_backoff_max < t.suspicion_backoff then
    err "suspicion_backoff_max must be >= suspicion_backoff"
  else if t.e2e_lookup_retries < 0 then err "e2e_lookup_retries must be >= 0"
  else if t.e2e_timeout_min <= 0.0 then err "e2e_timeout_min must be positive"
  else if t.overload_threshold < 1 then err "overload_threshold must be >= 1"
  else Ok ()

let pp fmt t =
  Format.fprintf fmt
    "b=%d l=%d Tls=%.0fs To=%.0fs acks=%b probing=%b selftune=%b Lr=%.2f"
    t.b t.l t.t_ls t.t_out t.per_hop_acks t.active_probing t.self_tuning t.lr_target
