(** Protocol event tracing through [Logs].

    Disabled by default; applications opt in with
    [Logs.Src.set_level Trace_log.src (Some Logs.Debug)]. *)

val src : Logs.src

module Log : Logs.LOG
