(** MSPastry wire messages.

    Every message names its overlay-level sender. Routed payloads
    (lookups and join requests) optionally carry a per-hop ack tag; the
    receiving hop acknowledges immediately at the network level, before
    any routing decision (§3.2). *)

open Pastry

type lookup = {
  key : Nodeid.t;
  seq : int;  (** harness-assigned, identifies the lookup end-to-end *)
  origin : Peer.t;
  hops : int;  (** overlay hops taken so far *)
  retx : bool;  (** this transmission is a per-hop reroute *)
  reliable : bool;
      (** §3.2: applications that tolerate loss flag lookups to switch
          per-hop acks off for that message *)
}

type entry = Peer.t * float
(** A routing-table entry with the sender's RTT estimate (seconds;
    [infinity] when unmeasured). *)

type payload =
  | Join_request of { joiner : Peer.t; rows : (int * entry list) list }
      (** routed towards the joiner's id; nodes along the route prepend
          their row [shared-prefix-length] entries *)
  | Join_reply of { rows : (int * entry list) list; leaf : Peer.t list }
  | Ls_probe of { leaf : Peer.t list; failed : Nodeid.t list; trt : float }
  | Ls_probe_reply of { leaf : Peer.t list; failed : Nodeid.t list; trt : float }
  | Heartbeat
  | Lookup of lookup
  | Lookup_ack of { seq : int }
      (** end-to-end receipt: the root delivered lookup [seq]; sent
          straight back to the origin when end-to-end retries are on *)
  | Hop_ack of { hop_id : int }
  | Rt_probe  (** routing-table liveness probe *)
  | Rt_probe_reply of { trt : float }
  | Distance_probe of { probe_seq : int }
  | Distance_probe_reply of { probe_seq : int }
  | Rtt_report of { rtt : float }  (** symmetric distance probes, §4.2 *)
  | Row_announce of { row : int; entries : entry list }
      (** a fresh node pushing its row to the row's members *)
  | Row_request of { row : int }  (** periodic RT maintenance gossip *)
  | Row_reply of { row : int; entries : entry list }
  | Slot_request of { row : int; col : int }  (** passive RT repair *)
  | Slot_reply of { row : int; col : int; entry : entry option }
  | Repair_request of { left_side : bool }
      (** generalized leaf-set repair: ask for the l+1 nodes closest to
          the sender known to the receiver *)
  | Repair_reply of { candidates : Peer.t list }
  | Nn_request  (** nearest-neighbour seed discovery: ask for the leaf set *)
  | Nn_reply of { leaf : Peer.t list }
  | Goodbye
      (** graceful departure: the sender is leaving; treat it as failed
          without probe verification (it told us itself) *)

type t = {
  sender : Peer.t;
  hop : int option;  (** per-hop ack tag: receiver must ack this id *)
  payload : payload;
}

val make : ?hop:int -> sender:Peer.t -> payload -> t

(** Control-traffic classes, matching the Fig 4 breakdown (maintenance
    gossip is reported separately and folded into "RT probes" when
    printing the paper's five categories). *)
type traffic_class =
  | C_lookup  (** first transmission of a lookup hop — not control *)
  | C_lookup_ack  (** end-to-end delivery receipts (control) *)
  | C_distance_probe
  | C_leafset
  | C_rt_probe
  | C_ack_retransmit
  | C_join
  | C_maintenance

val classify : t -> traffic_class
val class_name : traffic_class -> string
val all_classes : traffic_class list
val is_control : traffic_class -> bool

val priority : traffic_class -> int
(** Queueing priority for {!Netsim.Net}'s capacity model: control
    traffic (everything {!is_control}) is 1, plain lookup forwarding is
    0 — under overload a node keeps heartbeating, probing and acking
    while lookups queue behind (and overflow first). *)
