let history_size = 16
let remote_size = 32

type t = {
  cfg : Config.t;
  (* failure times, oldest first, at most [history_size]; seeded with the
     join time so a fresh node under-estimates rather than divides by 0 *)
  mutable history : float list;
  mutable n_failures : int;
  remotes : float array;
  mutable n_remotes : int; (* total observed; ring index = n mod size *)
}

let create cfg ~now =
  { cfg; history = [ now ]; n_failures = 0; remotes = Array.make remote_size 0.0; n_remotes = 0 }

let record_failure t ~now =
  t.n_failures <- t.n_failures + 1;
  let h = t.history @ [ now ] in
  let len = List.length h in
  t.history <- (if len > history_size then List.tl h else h)

let observe_remote t v =
  if v > 0.0 && Float.is_finite v then begin
    t.remotes.(t.n_remotes mod remote_size) <- v;
    t.n_remotes <- t.n_remotes + 1
  end

let failures_seen t = t.n_failures

let estimate_mu t ~m ~now =
  if m <= 0 || t.n_failures = 0 then 0.0
  else begin
    let first = List.hd t.history in
    let full = List.length t.history > history_size - 1 && t.n_failures >= history_size in
    let k, span =
      if full then
        (* history holds the last K failure times *)
        let last = List.fold_left (fun _ x -> x) first t.history in
        (float_of_int (List.length t.history - 1), last -. first)
      else
        (* fewer than K failures: pretend one happens right now *)
        (float_of_int t.n_failures, now -. first)
    in
    if span <= 0.0 then 0.0 else k /. (float_of_int m *. span)
  end

let id_space = 2.0 ** 128.0

let estimate_n leafset =
  let members = Pastry.Leafset.members leafset in
  let m = List.length members in
  if m = 0 then 1.0
  else
    match (Pastry.Leafset.leftmost leafset, Pastry.Leafset.rightmost leafset) with
    | Some lm, Some rm ->
        let span =
          Pastry.Nodeid.to_float (Pastry.Nodeid.cw_dist lm.Pastry.Peer.id rm.Pastry.Peer.id)
        in
        if span <= 0.0 then float_of_int (m + 1)
        else Float.max (float_of_int (m + 1)) (float_of_int (m + 1) *. id_space /. span)
    | _ -> float_of_int (m + 1)

let pf ~t_detect ~mu =
  if mu <= 0.0 || t_detect <= 0.0 then 0.0
  else begin
    let x = t_detect *. mu in
    if x < 1e-8 then x /. 2.0 else 1.0 -. ((1.0 -. exp (-.x)) /. x)
  end

let expected_hops ~b ~n =
  let base = float_of_int (1 lsl b) in
  let n = Float.max n 2.0 in
  let h = (base -. 1.0) /. base *. (log n /. log base) in
  Float.max 1.0 h

let raw_loss_rate (cfg : Config.t) ~trt ~n ~mu =
  let r = float_of_int (cfg.max_probe_retries + 1) in
  let detect_ls = cfg.t_ls +. (r *. cfg.t_out) in
  let detect_rt = trt +. (r *. cfg.t_out) in
  let h = expected_hops ~b:cfg.b ~n in
  let p_last = pf ~t_detect:detect_ls ~mu in
  let p_rt = pf ~t_detect:detect_rt ~mu in
  1.0 -. ((1.0 -. p_last) *. ((1.0 -. p_rt) ** (h -. 1.0)))

let trt_floor (cfg : Config.t) = float_of_int (cfg.max_probe_retries + 1) *. cfg.t_out

let solve_trt (cfg : Config.t) ~n ~mu =
  let lo = trt_floor cfg and hi = cfg.t_rt_max in
  if raw_loss_rate cfg ~trt:lo ~n ~mu >= cfg.lr_target then lo
  else if raw_loss_rate cfg ~trt:hi ~n ~mu <= cfg.lr_target then hi
  else begin
    let lo = ref lo and hi = ref hi in
    for _ = 1 to 60 do
      let mid = (!lo +. !hi) /. 2.0 in
      if raw_loss_rate cfg ~trt:mid ~n ~mu > cfg.lr_target then hi := mid else lo := mid
    done;
    !lo
  end

let local_trt t ~leafset ~m ~now =
  let mu = estimate_mu t ~m ~now in
  let n = estimate_n leafset in
  solve_trt t.cfg ~n ~mu

let current_trt t ~leafset ~m ~now =
  let local = local_trt t ~leafset ~m ~now in
  let k = min t.n_remotes remote_size in
  let values = Array.make (k + 1) local in
  Array.blit t.remotes 0 values 0 k;
  let med = Repro_util.Stats.median values in
  Float.max (trt_floor t.cfg) (Float.min t.cfg.t_rt_max med)
