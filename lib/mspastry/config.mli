(** MSPastry protocol parameters and feature toggles.

    {!default} is the paper's base configuration (§5.1): [b = 4], [l = 32],
    [Tls = 30 s], per-hop acks on, routing-table probing self-tuned to a
    raw loss rate of 5%, probe suppression and symmetric distance probes
    on. The toggles exist so the ablation experiments (§5.3) can switch
    individual techniques off. *)

type t = {
  b : int;  (** digits are base 2^b (paper: 4) *)
  l : int;  (** leaf set size, l/2 per side (paper: 32) *)
  t_ls : float;  (** leaf-set heartbeat period Tls, seconds (30) *)
  t_out : float;  (** probe timeout To, seconds (3 — TCP SYN timeout) *)
  max_probe_retries : int;  (** probe retries before declaring failure (2) *)
  probe_volley : int;
      (** escalation base for liveness-probe packet trains: probe retry
          [k] goes out as [probe_volley{^k}] back-to-back copies (any one
          reply proves liveness), so the first transmission is always a
          single packet and only retries — already evidence of a possible
          loss burst — escalate. [1] (default, the paper's behaviour) =
          every transmission is a single packet. Larger bases let the
          detector ride out correlated loss bursts that would otherwise
          convict an alive peer, at the cost of extra probe traffic on
          lossy links. *)
  per_hop_acks : bool;  (** §3.2 per-hop acknowledgements *)
  active_probing : bool;  (** §3.2 routing-table liveness probes *)
  self_tuning : bool;  (** §4.1 tune Trt from estimated N and µ *)
  lr_target : float;  (** target raw loss rate for self-tuning (0.05) *)
  t_rt_fixed : float;  (** Trt when self-tuning is off (seconds) *)
  t_rt_max : float;  (** upper clamp for the self-tuned Trt *)
  probe_suppression : bool;  (** §4.1 any traffic replaces failure probes *)
  symmetric_probes : bool;  (** §4.2 share measured RTTs with the peer *)
  exploit_structure : bool;
      (** §4.1 heartbeat only to the left ring neighbour; when off, every
          leaf-set member is probed every [t_ls] (the pre-MSPastry
          baseline) *)
  rt_maintenance_period : float;  (** periodic routing-table gossip (1200 s) *)
  distance_probe_count : int;  (** RTT samples per distance estimate (3) *)
  distance_probe_spacing : float;  (** seconds between samples (1) *)
  max_concurrent_distance_probes : int;
  hop_rto_initial : float;  (** per-hop RTO before any RTT sample *)
  hop_rto_min : float;  (** aggressive floor for per-hop retransmits *)
  hop_rto_max : float;
  max_hop_reroutes : int;  (** reroute budget before a hop gives up *)
  root_retries : int;
      (** §3.2's consistency/latency dial for the last hop. When the
          key's root misses an ack, the message is retransmitted straight
          to it with growing backoff this many times (recovering lost
          acks) before the next-closest node delivers in its stead.
          [0] = the paper's latency-first variant (deliver at the
          alternative immediately); large values approach
          never-deliver-until-the-root-is-declared-faulty. Default 4. *)
  exclusion_period : float;
      (** how long a non-acking peer stays excluded from routing if the
          liveness probe remains unresolved *)
  join_retry_period : float;
  max_join_retries : int;
  tuning_refresh_period : float;  (** how often Trt is recomputed *)
  repair_delay : float;  (** damping delay before leaf-set repair probes *)
  suspicion_backoff : float;
      (** negative caching: a peer that exhausts probe retries is
          quarantined this long (seconds) — no probes, no admission from
          gossip, excluded from routing. Each re-suspicion doubles the
          quarantine (up to [suspicion_backoff_max]); any direct message
          from the peer clears it. [0] disables the suspicion list
          (pre-PR-3 behaviour). Default 30. *)
  suspicion_backoff_max : float;  (** quarantine doubling clamp (600) *)
  e2e_lookup_retries : int;
      (** end-to-end lookup retries at the origin: if no [Lookup_ack]
          arrives within an RTO-derived timeout, the lookup is re-routed
          from scratch, with doubling timeout, up to this many re-issues.
          Also switches on root-side duplicate-delivery suppression and
          delivery receipts. [0] (default) = off — the paper's per-hop
          reliability only. *)
  e2e_timeout_min : float;
      (** floor for the first end-to-end retry timeout (seconds, 1.0) *)
  backpressure : bool;
      (** overload-graceful mode: when the harness wires a local load
          signal (see {!Node.set_load_signal}) and the signal is at or
          above [overload_threshold], the node sheds deferrable work —
          probe volleys collapse to single packets, routing-table probe
          rounds and maintenance gossip are skipped (retried at the next
          tick), and join admission is deferred ([Nn_request] and
          [Join_request] service is refused, leaving the joiner's retry
          machinery to try again later) — while heartbeats, leaf-set
          probing and acking continue unthrottled. [false] (default) =
          the paper's behaviour: no load shedding. *)
  overload_threshold : int;
      (** queue occupancy (messages backlogged at this node under the
          netsim capacity model) at which backpressure engages (16) *)
}

val default : t

val validate : t -> (unit, string) result
(** Sanity-check parameter ranges (used by tests and the CLI). *)

val pp : Format.formatter -> t -> unit
