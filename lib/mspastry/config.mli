(** MSPastry protocol parameters and feature toggles.

    {!default} is the paper's base configuration (§5.1): [b = 4], [l = 32],
    [Tls = 30 s], per-hop acks on, routing-table probing self-tuned to a
    raw loss rate of 5%, probe suppression and symmetric distance probes
    on. The toggles exist so the ablation experiments (§5.3) can switch
    individual techniques off. *)

type t = {
  b : int;  (** digits are base 2^b (paper: 4) *)
  l : int;  (** leaf set size, l/2 per side (paper: 32) *)
  t_ls : float;  (** leaf-set heartbeat period Tls, seconds (30) *)
  t_out : float;  (** probe timeout To, seconds (3 — TCP SYN timeout) *)
  max_probe_retries : int;  (** probe retries before declaring failure (2) *)
  per_hop_acks : bool;  (** §3.2 per-hop acknowledgements *)
  active_probing : bool;  (** §3.2 routing-table liveness probes *)
  self_tuning : bool;  (** §4.1 tune Trt from estimated N and µ *)
  lr_target : float;  (** target raw loss rate for self-tuning (0.05) *)
  t_rt_fixed : float;  (** Trt when self-tuning is off (seconds) *)
  t_rt_max : float;  (** upper clamp for the self-tuned Trt *)
  probe_suppression : bool;  (** §4.1 any traffic replaces failure probes *)
  symmetric_probes : bool;  (** §4.2 share measured RTTs with the peer *)
  exploit_structure : bool;
      (** §4.1 heartbeat only to the left ring neighbour; when off, every
          leaf-set member is probed every [t_ls] (the pre-MSPastry
          baseline) *)
  rt_maintenance_period : float;  (** periodic routing-table gossip (1200 s) *)
  distance_probe_count : int;  (** RTT samples per distance estimate (3) *)
  distance_probe_spacing : float;  (** seconds between samples (1) *)
  max_concurrent_distance_probes : int;
  hop_rto_initial : float;  (** per-hop RTO before any RTT sample *)
  hop_rto_min : float;  (** aggressive floor for per-hop retransmits *)
  hop_rto_max : float;
  max_hop_reroutes : int;  (** reroute budget before a hop gives up *)
  root_retries : int;
      (** §3.2's consistency/latency dial for the last hop. When the
          key's root misses an ack, the message is retransmitted straight
          to it with growing backoff this many times (recovering lost
          acks) before the next-closest node delivers in its stead.
          [0] = the paper's latency-first variant (deliver at the
          alternative immediately); large values approach
          never-deliver-until-the-root-is-declared-faulty. Default 4. *)
  exclusion_period : float;
      (** how long a non-acking peer stays excluded from routing if the
          liveness probe remains unresolved *)
  join_retry_period : float;
  max_join_retries : int;
  tuning_refresh_period : float;  (** how often Trt is recomputed *)
  repair_delay : float;  (** damping delay before leaf-set repair probes *)
}

val default : t

val validate : t -> (unit, string) result
(** Sanity-check parameter ranges (used by tests and the CLI). *)

val pp : Format.formatter -> t -> unit
