(** Per-peer retransmission timeout estimation.

    TCP-style smoothed RTT (Karn & Partridge / Jacobson): on each sample,
    [srtt += (s − srtt)/8] and [rttvar += (|s − srtt| − rttvar)/4]. The
    paper sets timeouts "more aggressively" than TCP because Pastry has
    alternative next hops, so the timeout is
    [1.1·srtt + max(G, 2·rttvar)] (TCP uses [srtt + max(G, 4·rttvar)])
    clamped to configured bounds — the granularity floor [G] matters in a
    jitter-free simulation, where rttvar otherwise decays to zero and the
    timeout would race the ack, and samples are only taken
    from unambiguous exchanges (Karn's rule — the caller must not feed
    samples from retransmitted hops). *)

type t

val create : initial:float -> min:float -> max:float -> t

val observe : t -> float -> unit
(** Feed one RTT sample in seconds. *)

val timeout : t -> float
(** Current retransmission timeout; [initial] until the first sample.
    While a backoff episode is in progress (see {!backoff}) the value is
    doubled per retransmission, always clamped at [max]. *)

val backoff : t -> unit
(** Karn-style exponential backoff: record that a timeout expired
    without an ack, doubling subsequent {!timeout}s (clamped at [max])
    until the next {!observe}d unambiguous sample resets the episode. *)

val srtt : t -> float option
val samples : t -> int
