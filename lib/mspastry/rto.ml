type t = {
  initial : float;
  min_rto : float;
  max_rto : float;
  mutable srtt : float;
  mutable rttvar : float;
  mutable n : int;
  mutable backoff_mult : float;
}

let create ~initial ~min ~max =
  if initial <= 0.0 || min <= 0.0 || max < min then invalid_arg "Rto.create";
  {
    initial;
    min_rto = min;
    max_rto = max;
    srtt = 0.0;
    rttvar = 0.0;
    n = 0;
    backoff_mult = 1.0;
  }

let observe t s =
  if s >= 0.0 then begin
    if t.n = 0 then begin
      t.srtt <- s;
      t.rttvar <- s /. 2.0
    end
    else begin
      let err = s -. t.srtt in
      t.srtt <- t.srtt +. (err /. 8.0);
      t.rttvar <- t.rttvar +. ((Float.abs err -. t.rttvar) /. 4.0)
    end;
    t.n <- t.n + 1;
    (* Karn: a fresh unambiguous sample ends the backoff episode *)
    t.backoff_mult <- 1.0
  end

let backoff t = t.backoff_mult <- t.backoff_mult *. 2.0

(* clock-granularity floor on the variance term (TCP's G): without it a
   jitter-free path drives rttvar to 0 and the timeout races the ack *)
let granularity = 0.01

let timeout t =
  let base =
    if t.n = 0 then t.initial
    else begin
      let rto = (t.srtt *. 1.1) +. Float.max granularity (2.0 *. t.rttvar) in
      Float.min t.max_rto (Float.max t.min_rto rto)
    end
  in
  Float.min t.max_rto (base *. t.backoff_mult)

let srtt t = if t.n = 0 then None else Some t.srtt
let samples t = t.n
