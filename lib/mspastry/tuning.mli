(** Self-tuning of the routing-table probing period Trt (§4.1).

    Each node estimates the overlay size [N] from its leaf-set density
    and the node failure rate [µ] from a history of the last [K]
    failures it observed among the [M] unique nodes in its routing state.
    From these it solves the raw-loss-rate equation

    {v Lr = 1 − (1 − Pf(Tls + (r+1)·To, µ)) · (1 − Pf(Trt + (r+1)·To, µ))^(h−1) v}

    with [Pf(T,µ) = 1 − (1/(Tµ))·(1 − e^(−Tµ))] and
    [h = (2^b − 1)/2^b · log_{2^b} N], for the [Trt] that meets the
    configured target [Lr]. Nodes piggyback their local solution on
    protocol messages and adopt the median of received values. *)

type t

val create : Config.t -> now:float -> t
(** The failure history is seeded with the creation (join) time. *)

val record_failure : t -> now:float -> unit
(** Note one observed failure of a routing-state member. *)

val observe_remote : t -> float -> unit
(** Record a Trt value piggybacked by another node. *)

val failures_seen : t -> int

val estimate_mu : t -> m:int -> now:float -> float
(** Failures per node per second, from the K-failure history over [m]
    unique routing-state nodes. 0 until a failure is seen. *)

val estimate_n : Pastry.Leafset.t -> float
(** Overlay size from leaf-set identifier density; 1 for an empty set. *)

val pf : t_detect:float -> mu:float -> float
(** Probability that a given next hop is dead, when failures at rate [mu]
    are detected within at most [t_detect] seconds. *)

val expected_hops : b:int -> n:float -> float

val raw_loss_rate : Config.t -> trt:float -> n:float -> mu:float -> float

val solve_trt : Config.t -> n:float -> mu:float -> float
(** Smallest Trt in [\[(retries+1)·To, t_rt_max\]] meeting the target raw
    loss rate ([t_rt_max] when even the slowest probing beats the target;
    the floor when the target is unreachable). *)

val local_trt : t -> leafset:Pastry.Leafset.t -> m:int -> now:float -> float
(** This node's own solution, from its current estimates. *)

val current_trt : t -> leafset:Pastry.Leafset.t -> m:int -> now:float -> float
(** Median of the remembered remote values and the local solution —
    the Trt the node actually uses. *)
