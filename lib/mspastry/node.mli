(** An MSPastry protocol node.

    The node is a pure state machine over an {!env} of capabilities
    (virtual clock, message send, timers, application upcalls), so the
    same code runs under the packet simulator and under unit tests with a
    scripted environment — mirroring the paper's "the code that runs in
    the simulator and in the real deployment is the same".

    Lifecycle: {!create} → either {!bootstrap} (first node of a fresh
    overlay) or {!join} via any live node's address → the node probes its
    prospective leaf set (Fig 2) and fires [on_active] once routing
    consistency is established → {!lookup} routes application messages →
    {!crash} silences it (voluntary departures are treated as failures,
    as in the paper's traces). *)

open Pastry

type forward_decision = Continue | Absorb

type env = {
  now : unit -> float;
  send : dst:int -> Message.t -> unit;
  schedule : delay:float -> (unit -> unit) -> Simkit.Engine.event_id;
  cancel : Simkit.Engine.event_id -> unit;
  rng : Repro_util.Rng.t;
  deliver : Message.lookup -> unit;
      (** the node is the root of the lookup's key and is active *)
  forward : prev:Pastry.Peer.t option -> Message.lookup -> forward_decision;
      (** the common-API forward upcall: invoked before this node routes a
          lookup onward ([prev] is the hop it arrived from, [None] at the
          origin). Returning [Absorb] consumes the message here without
          delivering it — Scribe-style applications build multicast trees
          this way. Return [Continue] when in doubt. *)
  on_active : unit -> unit;  (** fired once, when the join completes *)
  on_join_failed : unit -> unit;
      (** join retries exhausted; the node never became active *)
  on_lookup_drop : Message.lookup -> unit;
      (** a per-hop reroute budget was exhausted; the message is lost *)
}

type t

val create : cfg:Config.t -> env:env -> id:Nodeid.t -> addr:int -> t

val set_trace : t -> Repro_obs.Trace.t -> unit
(** Attach a structured event trace (nodes start with the disabled
    trace). An enabled trace receives protocol-level events: a
    [Lookup_hop] with the routing stage each time the node routes or
    delivers a lookup, [Hop_ack] / [Ack_timeout] with per-hop ack timing,
    a [Probe] per liveness / distance probe launched, and
    [Node_join] / [Node_crash] lifecycle events. *)

val me : t -> Peer.t
val config : t -> Config.t

val bootstrap : t -> unit
(** Become the first, immediately-active node of a new overlay. *)

val join : t -> bootstrap_addr:int -> unit
(** Join via the given address: nearest-neighbour seed discovery, routed
    join request, leaf-set probing, activation. *)

val handle : t -> src:int -> Message.t -> unit
(** Network upcall — wire this to {!Netsim.Net.register}. *)

val lookup : ?reliable:bool -> t -> key:Nodeid.t -> seq:int -> unit
(** Route an application lookup from this node. [reliable:false] flags
    the message to travel without per-hop acks (§3.2) — cheaper, but a
    node or link failure along the route loses it. *)

val crash : t -> unit
(** Halt the node: it stops processing messages and timers. The caller
    must also unregister it from the network. *)

val leave : t -> unit
(** Graceful departure: announce GOODBYE to the leaf-set members (they
    evict and repair immediately, without burning probe timeouts on a
    node known to be gone), then halt as {!crash}. *)

val is_active : t -> bool
val is_alive : t -> bool

val leafset : t -> Leafset.t
val table : t -> Routing_table.t

val current_trt : t -> float
(** The routing-table probing period currently in force. *)

val estimated_n : t -> float
val estimated_mu : t -> float

val failed_set : t -> Nodeid.t list
(** Contents of [failed_i] (test introspection). *)

val pending_probes : t -> int
val pending_hops : t -> int

val suspected_set : t -> Nodeid.t list
(** Peers currently quarantined by the suspicion list (negative
    caching): probe retries were exhausted on them, and until the
    per-peer backoff expires they are excluded from routing and cannot
    be re-admitted or re-probed from gossip. Expired entries are not
    listed (the doubled backoff is remembered internally). *)

val pending_e2e : t -> int
(** Lookups this origin is still waiting on end-to-end (receipts
    outstanding, retries possibly pending). Always 0 when
    [e2e_lookup_retries = 0]. *)

val set_on_suspicion : t -> (target:int -> unit) -> unit
(** Install an observer called with the target's overlay address each
    time this node's failure detector (newly or again) quarantines a
    peer — the harness uses it to score detector accuracy against ground
    truth. At most one observer; later calls replace earlier ones. *)

val set_load_signal : t -> (unit -> int) -> unit
(** Wire the node's local load signal: a thunk returning the number of
    messages currently backlogged at this node (the harness wires it to
    {!Netsim.Net.queue_occupancy}). Only consulted when
    [cfg.backpressure] is on; with the signal at or above
    [cfg.overload_threshold] the node sheds deferrable work — probe
    volleys collapse to single packets, routing-table probe rounds and
    maintenance gossip are skipped, and join admission ([Nn_request] /
    [Join_request] service) is deferred — while heartbeats, leaf-set
    probing and acking continue. At most one signal; later calls
    replace earlier ones. *)
