(* Library-level tracing: silent unless the application enables the
   "mspastry" Logs source (e.g. Logs.Src.set_level src (Some Debug)). *)
let src = Logs.Src.create "mspastry" ~doc:"MSPastry protocol events"

module Log = (val Logs.src_log src : Logs.LOG)
