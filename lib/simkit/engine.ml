type event = { time : float; fn : unit -> unit; mutable cancelled : bool }
type event_id = event

type t = {
  mutable clock : float;
  queue : event Repro_util.Heap.t;
  mutable live : int;
}

let create () =
  {
    clock = 0.0;
    queue = Repro_util.Heap.create ~leq:(fun a b -> a.time <= b.time) ();
    live = 0;
  }

let now t = t.clock

let schedule_at t ~time fn =
  let time = if time < t.clock then t.clock else time in
  let e = { time; fn; cancelled = false } in
  Repro_util.Heap.push t.queue e;
  t.live <- t.live + 1;
  e

let schedule t ~delay fn =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~time:(t.clock +. delay) fn

let cancel t e =
  if not e.cancelled then begin
    e.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live

let step t =
  let rec next () =
    match Repro_util.Heap.pop t.queue with
    | None -> false
    | Some e when e.cancelled -> next ()
    | Some e ->
        t.live <- t.live - 1;
        t.clock <- e.time;
        e.fn ();
        true
  in
  next ()

let run t ~until =
  let continue = ref true in
  while !continue do
    match Repro_util.Heap.peek t.queue with
    | None -> continue := false
    | Some e when e.cancelled ->
        ignore (Repro_util.Heap.pop t.queue)
    | Some e when e.time > until -> continue := false
    | Some _ -> ignore (step t)
  done;
  if t.clock < until then t.clock <- until

let run_all ?(max_events = max_int) t =
  let fired = ref 0 in
  while !fired < max_events && step t do
    incr fired
  done
