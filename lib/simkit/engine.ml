type stats = {
  scheduled : int;
  fired : int;
  cancelled : int;
  pending : int;
  heap_hwm : int;
  live_hwm : int;
  events_per_sim_s : float;
}

module Profile = Repro_obs.Profile

let ph_heap = Profile.phase "engine.heap"
let ph_dispatch = Profile.phase "engine.dispatch"

type event = { time : float; fn : unit -> unit; mutable cancelled : bool }
type event_id = event

type t = {
  mutable clock : float;
  queue : event Repro_util.Heap.t;
  mutable live : int;
  mutable n_scheduled : int;
  mutable n_fired : int;
  mutable n_cancelled : int;
  mutable heap_hwm : int;
  mutable live_hwm : int;
  mutable trace : Repro_obs.Trace.t;
}

let create ?(trace = Repro_obs.Trace.disabled) () =
  {
    clock = 0.0;
    queue = Repro_util.Heap.create ~leq:(fun a b -> a.time <= b.time) ();
    live = 0;
    n_scheduled = 0;
    n_fired = 0;
    n_cancelled = 0;
    heap_hwm = 0;
    live_hwm = 0;
    trace;
  }

let set_trace t trace = t.trace <- trace

let now t = t.clock

let schedule_at_inner t ~time fn =
  let time = if time < t.clock then t.clock else time in
  let e = { time; fn; cancelled = false } in
  Repro_util.Heap.push t.queue e;
  t.live <- t.live + 1;
  if t.live > t.live_hwm then t.live_hwm <- t.live;
  t.n_scheduled <- t.n_scheduled + 1;
  let sz = Repro_util.Heap.size t.queue in
  if sz > t.heap_hwm then t.heap_hwm <- sz;
  e

let schedule_at t ~time fn =
  if !Profile.on then begin
    Profile.enter ph_heap;
    let e = schedule_at_inner t ~time fn in
    Profile.leave ph_heap;
    e
  end
  else schedule_at_inner t ~time fn

let schedule t ~delay fn =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t ~time:(t.clock +. delay) fn

let cancel t e =
  if not e.cancelled then begin
    e.cancelled <- true;
    t.live <- t.live - 1;
    t.n_cancelled <- t.n_cancelled + 1;
    if Repro_obs.Trace.enabled t.trace then
      Repro_obs.Trace.emit t.trace
        { Repro_obs.Event.time = t.clock; body = Repro_obs.Event.Timer_cancelled }
  end

let pending t = t.live

let stats t =
  {
    scheduled = t.n_scheduled;
    fired = t.n_fired;
    cancelled = t.n_cancelled;
    pending = t.live;
    heap_hwm = t.heap_hwm;
    live_hwm = t.live_hwm;
    events_per_sim_s =
      (if t.clock > 0.0 then float_of_int t.n_fired /. t.clock else 0.0);
  }

let step t =
  let prof = !Profile.on in
  if prof then Profile.enter ph_heap;
  let rec next () =
    match Repro_util.Heap.pop t.queue with
    | None ->
        if prof then Profile.leave ph_heap;
        false
    | Some e when e.cancelled -> next ()
    | Some e ->
        (* mark spent so a later [cancel] of this id is a no-op rather
           than corrupting the live count *)
        e.cancelled <- true;
        t.live <- t.live - 1;
        t.clock <- e.time;
        t.n_fired <- t.n_fired + 1;
        if prof then Profile.leave ph_heap;
        if Repro_obs.Trace.enabled t.trace then
          Repro_obs.Trace.emit t.trace
            { Repro_obs.Event.time = e.time; body = Repro_obs.Event.Timer_fired };
        if prof then begin
          Profile.enter ph_dispatch;
          e.fn ();
          Profile.leave ph_dispatch
        end
        else e.fn ();
        true
  in
  next ()

let run t ~until =
  let continue = ref true in
  while !continue do
    match Repro_util.Heap.peek t.queue with
    | None -> continue := false
    | Some e when e.cancelled ->
        ignore (Repro_util.Heap.pop t.queue)
    | Some e when e.time > until -> continue := false
    | Some _ -> ignore (step t)
  done;
  if t.clock < until then t.clock <- until

let run_all ?(max_events = max_int) t =
  let fired = ref 0 in
  while !fired < max_events && step t do
    incr fired
  done
