(** Discrete-event simulation engine.

    A single-threaded virtual clock with a cancellable timer queue.
    Simultaneous events fire in scheduling order (FIFO), which keeps runs
    deterministic for a fixed seed.

    When {!Repro_obs.Profile} is enabled, heap operations and callback
    dispatch are attributed to the ["engine.heap"] / ["engine.dispatch"]
    profile phases (nested component phases subtract themselves from
    dispatch's self time). *)

type t

type event_id
(** Handle for cancelling a scheduled event. *)

(** Runtime counters, maintained unconditionally (plain integer
    increments — no observable cost). *)
type stats = {
  scheduled : int;  (** events ever scheduled *)
  fired : int;
  cancelled : int;
  pending : int;  (** scheduled, not yet fired or cancelled *)
  heap_hwm : int;  (** high-water mark of the timer-queue size *)
  live_hwm : int;  (** high-water mark of simultaneously-pending events *)
  events_per_sim_s : float;  (** fired / current virtual time *)
}

val create : ?trace:Repro_obs.Trace.t -> unit -> t
(** [trace] (default {!Repro_obs.Trace.disabled}) receives a
    [Timer_fired] / [Timer_cancelled] event per firing / cancellation
    when enabled. *)

val set_trace : t -> Repro_obs.Trace.t -> unit

val stats : t -> stats

val now : t -> float
(** Current virtual time in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> event_id
(** [schedule t ~delay f] runs [f] at [now t +. max delay 0.]. The
    callback runs with the clock set to its firing time. *)

val schedule_at : t -> time:float -> (unit -> unit) -> event_id
(** Absolute-time variant. Times before [now] fire immediately (at [now]). *)

val cancel : t -> event_id -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val pending : t -> int
(** Number of scheduled, not-yet-fired, not-cancelled events. *)

val run : t -> until:float -> unit
(** Process events in time order until the queue is empty or the next
    event is later than [until]; the clock finishes at [until]. *)

val run_all : ?max_events:int -> t -> unit
(** Process events until the queue drains (or [max_events] fired). *)

val step : t -> bool
(** Fire the single next event; [false] when the queue is empty. *)
