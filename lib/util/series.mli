(** Windowed time series.

    Samples are tagged with a simulation timestamp and aggregated into
    fixed-width windows, matching the paper's "averaged over a 10 minute
    window" presentation of control traffic, RDP, and failure rates. *)

type t

val create : window:float -> t
(** [create ~window] aggregates into windows of [window] seconds starting
    at time 0. *)

val add : t -> time:float -> float -> unit
(** Record one sample. *)

val count : t -> time:float -> unit
(** Shorthand for [add t ~time 1.0] — counting events per window. *)

val window : t -> float

val means : t -> (float * float) array
(** [(window_mid_time, mean of samples)] for every non-empty window, in
    time order. *)

val sums : t -> (float * float) array
(** [(window_mid_time, sum of samples)] for every non-empty window. *)

val rates : t -> (float * float) array
(** [(window_mid_time, sum / window_length)] — events per second. *)

val total : t -> float
(** Sum of all samples over all windows. *)

val n_samples : t -> int
