let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (acc /. float_of_int n)
  end

let sorted_copy xs =
  let c = Array.copy xs in
  Array.sort compare c;
  c

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let c = sorted_copy xs in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let frac = rank -. floor rank in
    (c.(lo) *. (1.0 -. frac)) +. (c.(hi) *. frac)
  end

let median xs = percentile xs 50.0

let cdf xs =
  let n = Array.length xs in
  let c = sorted_copy xs in
  Array.mapi (fun i v -> (v, float_of_int (i + 1) /. float_of_int n)) c

module Online = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let d = x -. t.mean in
    t.mean <- t.mean +. (d /. float_of_int t.n);
    t.m2 <- t.m2 +. (d *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let stddev t = if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int t.n)
  let min t = t.min
  let max t = t.max
end

module Histogram = struct
  type t = { lo : float; hi : float; counts : int array; mutable total : int }

  let create ~lo ~hi ~bins =
    if bins <= 0 || hi <= lo then invalid_arg "Histogram.create";
    { lo; hi; counts = Array.make bins 0; total = 0 }

  let add t x =
    let bins = Array.length t.counts in
    let i =
      int_of_float (float_of_int bins *. (x -. t.lo) /. (t.hi -. t.lo))
    in
    let i = if i < 0 then 0 else if i >= bins then bins - 1 else i in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let counts t = Array.copy t.counts
  let total t = t.total

  let bin_mid t i =
    let bins = Array.length t.counts in
    let w = (t.hi -. t.lo) /. float_of_int bins in
    t.lo +. (w *. (float_of_int i +. 0.5))
end

module Zipf = struct
  type t = { cumulative : float array }

  let create ~n ~s =
    if n <= 0 then invalid_arg "Zipf.create";
    let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
    let total = Array.fold_left ( +. ) 0.0 w in
    let acc = ref 0.0 in
    let cumulative =
      Array.map
        (fun x ->
          acc := !acc +. (x /. total);
          !acc)
        w
    in
    { cumulative }

  let sample t rng =
    let u = Rng.float rng 1.0 in
    (* binary search for the first cumulative weight >= u *)
    let lo = ref 0 and hi = ref (Array.length t.cumulative - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cumulative.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo
end
