type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let bits64 t =
  let z = Int64.add t.state golden in
  t.state <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = bits64 t in
  { state = s }

let copy t = { state = t.state }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits a non-negative OCaml int *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let float t x =
  (* 53 uniform bits in [0,1) *)
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  x *. (v /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bytes t n =
  String.init n (fun _ -> Char.chr (int t 256))

let exponential t ~mean =
  let u = float t 1.0 in
  (* avoid log 0 *)
  let u = if u <= 0. then 1e-300 else u in
  -.mean *. log u

let normal t ~mean ~stddev =
  (* Box-Muller *)
  let u1 =
    let u = float t 1.0 in
    if u <= 0. then 1e-300 else u
  in
  let u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let lognormal t ~mu ~sigma = exp (normal t ~mean:mu ~stddev:sigma)

let poisson t ~mean =
  if mean <= 0. then 0
  else if mean > 30. then
    let s = normal t ~mean ~stddev:(sqrt mean) in
    max 0 (int_of_float (Float.round s))
  else begin
    let l = exp (-.mean) in
    let k = ref 0 and p = ref 1.0 in
    let continue = ref true in
    while !continue do
      incr k;
      p := !p *. float t 1.0;
      if !p <= l then continue := false
    done;
    !k - 1
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
