type cell = { mutable sum : float; mutable n : int }
type t = { window : float; cells : (int, cell) Hashtbl.t; mutable total : float; mutable samples : int }

let create ~window =
  if window <= 0.0 then invalid_arg "Series.create";
  { window; cells = Hashtbl.create 64; total = 0.0; samples = 0 }

let add t ~time v =
  let idx = int_of_float (floor (time /. t.window)) in
  let cell =
    match Hashtbl.find_opt t.cells idx with
    | Some c -> c
    | None ->
        let c = { sum = 0.0; n = 0 } in
        Hashtbl.add t.cells idx c;
        c
  in
  cell.sum <- cell.sum +. v;
  cell.n <- cell.n + 1;
  t.total <- t.total +. v;
  t.samples <- t.samples + 1

let count t ~time = add t ~time 1.0
let window t = t.window

let sorted_cells t =
  let xs = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.cells [] in
  List.sort (fun (a, _) (b, _) -> compare a b) xs

let mid t idx = (float_of_int idx +. 0.5) *. t.window

let means t =
  sorted_cells t
  |> List.map (fun (idx, c) -> (mid t idx, c.sum /. float_of_int c.n))
  |> Array.of_list

let sums t =
  sorted_cells t |> List.map (fun (idx, c) -> (mid t idx, c.sum)) |> Array.of_list

let rates t =
  sorted_cells t
  |> List.map (fun (idx, c) -> (mid t idx, c.sum /. t.window))
  |> Array.of_list

let total t = t.total
let n_samples t = t.samples
