(** Array-backed binary min-heap, polymorphic in the element type.

    Ordering is supplied at creation time; ties are broken by insertion
    order (earlier insertions pop first), which gives the simulator a
    deterministic FIFO order for simultaneous events. *)

type 'a t

val create : leq:('a -> 'a -> bool) -> unit -> 'a t
(** [leq a b] must hold when [a] sorts before-or-equal [b]. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns the minimum element. *)

val peek : 'a t -> 'a option
val clear : 'a t -> unit
