let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest
