type 'a entry = { value : 'a; seq : int }

type 'a t = {
  leq : 'a -> 'a -> bool;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~leq () = { leq; data = [||]; size = 0; next_seq = 0 }

let size t = t.size
let is_empty t = t.size = 0

(* before-or-equal with FIFO tie-break on seq *)
let entry_le t a b =
  if t.leq a.value b.value then
    if t.leq b.value a.value then a.seq <= b.seq else true
  else false

let grow t =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let dummy = t.data.(0) in
  let d = Array.make new_cap dummy in
  Array.blit t.data 0 d 0 t.size;
  t.data <- d

let push t v =
  let e = { value = v; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  if t.size = 0 && Array.length t.data = 0 then t.data <- Array.make 16 e;
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- e;
  t.size <- t.size + 1;
  (* sift up *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    not (entry_le t t.data.(parent) t.data.(!i))
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.data.(parent) in
    t.data.(parent) <- t.data.(!i);
    t.data.(!i) <- tmp;
    i := parent
  done

let peek t = if t.size = 0 then None else Some t.data.(0).value

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && not (entry_le t t.data.(!smallest) t.data.(l)) then smallest := l;
        if r < t.size && not (entry_le t t.data.(!smallest) t.data.(r)) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.data.(!i) in
          t.data.(!i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some top.value
  end

let clear t =
  t.size <- 0;
  t.next_seq <- 0
