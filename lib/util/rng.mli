(** Deterministic pseudo-random number generator.

    SplitMix64 core with convenience samplers. Every stochastic component
    of the reproduction draws from an explicit [t] so that experiments are
    reproducible from a single integer seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Generators with equal seeds
    produce equal streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each simulated node its own stream. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val bytes : t -> int -> string
(** [bytes t n] is an [n]-byte uniformly random string. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Lognormal sample: [exp (mu + sigma * z)] with [z] standard normal. *)

val normal : t -> mean:float -> stddev:float -> float

val poisson : t -> mean:float -> int
(** Poisson-distributed integer (Knuth for small means, normal
    approximation above 30). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
