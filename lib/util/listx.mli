(** Small list helpers shared across the reproduction. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (the whole list when shorter); [n <= 0] gives []. *)
