(** Statistics helpers used throughout the evaluation harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 for fewer than two samples. *)

val median : float array -> float
(** Median (does not mutate the argument); 0 for the empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation.
    Does not mutate the argument. *)

val cdf : float array -> (float * float) array
(** Empirical CDF points [(value, fraction <= value)], sorted. *)

(** Online mean/variance accumulator (Welford). *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  (** +inf when empty. *)

  val max : t -> float
  (** -inf when empty. *)
end

(** Fixed-width histogram over [\[lo, hi)]. *)
module Histogram : sig
  type t

  val create : lo:float -> hi:float -> bins:int -> t
  val add : t -> float -> unit
  (** Out-of-range samples are clamped into the first/last bin. *)

  val counts : t -> int array
  val total : t -> int
  val bin_mid : t -> int -> float
end

(** Zipf-distributed sampler over [\{0, …, n−1\}] with exponent [s]. *)
module Zipf : sig
  type t

  val create : n:int -> s:float -> t
  val sample : t -> Rng.t -> int
end
