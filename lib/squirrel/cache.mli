(** Squirrel: a decentralised co-operative web cache on MSPastry.

    Home-store model (Iyer, Rowstron, Druschel — PODC'02): the key of a
    Web object is the hash of its URL; the key's root node is the
    object's {e home node} and caches it. A client's proxy routes a
    lookup to the home node; on a hit the object comes straight back, on
    a miss the home node fetches it from the origin server first.

    The cache rides on a {!Harness.Sim.Live} overlay: requests are
    overlay lookups (so they exercise — and are measured by — the full
    MSPastry machinery) and responses are direct network transfers
    accounted in this module's own traffic series. *)

type t

val create :
  ?origin_delay:float ->
  ?capacity_per_node:int ->
  live:Harness.Sim.Live.t ->
  unit ->
  t
(** [origin_delay] — one-way delay to the (external) origin server,
    default 0.15 s. [capacity_per_node] — cached objects per home node
    before LRU eviction, default 4096. *)

val key_of_url : string -> Pastry.Nodeid.t
(** MD5 of the URL, the paper's SHA-1 stand-in (both give uniform
    128-bit keys). *)

val request : t -> client:Mspastry.Node.t -> url:string -> unit
(** Issue one browser request from the given node's proxy. *)

type stats = {
  requests : int;
  responses : int;  (** answered (hit or miss-then-fetch) *)
  hits : int;
  misses : int;
  failed : int;  (** lookup never reached a home node (timeout) *)
  mean_latency : float;  (** request → response arrival, seconds *)
  cached_objects : int;  (** currently resident across all home nodes *)
}

val stats : t -> stats

val traffic_series : t -> window:float -> (float * float) array
(** Squirrel's own (non-overlay) messages — object responses and origin
    fetches — per second per active node, windowed. Add to the
    collector's series for Fig 8's total traffic. *)
