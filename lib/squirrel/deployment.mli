(** The Fig 8 experiment: a Squirrel deployment driven by a web workload.

    The paper validated its simulator against a real 52-machine Squirrel
    deployment over six days (4 weekdays + a weekend). No deployment is
    possible here, so this module runs the same workload through the full
    packet-level simulator and — as the stand-in for the deployment
    column — through a second, independently-seeded simulation (see
    DESIGN.md §2). The figure's observable is the total traffic per node
    tracking the workload's daily/weekly pattern. *)

type result = {
  total_traffic : (float * float) array;
      (** (time, messages per second per node) — overlay + Squirrel *)
  cache_stats : Cache.stats;
  hit_rate : float;
  n_nodes : int;
  duration : float;
}

val run :
  ?n_nodes:int ->
  ?duration:float ->
  ?window:float ->
  ?peak_rate:float ->
  seed:int ->
  unit ->
  result
(** Defaults: 52 nodes, 6 days, 1-hour windows. *)
