(** Web-browsing workload generator for the Squirrel experiment.

    Produces a timed stream of (client, URL) requests with the features
    the deployment trace shows in Fig 8: Zipf-distributed object
    popularity, office-hours diurnal intensity, and a weekday/weekend
    split. *)

type request = { time : float; client : int; url : string }

type t

val generate :
  ?n_objects:int ->
  ?zipf_s:float ->
  ?peak_rate:float ->
  rng:Repro_util.Rng.t ->
  n_clients:int ->
  duration:float ->
  unit ->
  t
(** [peak_rate] is requests per second per client at the busiest hour
    (default 0.05). Weekends run at 15% of weekday intensity; nights at
    10%. [zipf_s] defaults to 0.9 (web-like popularity skew). *)

val requests : t -> request array
(** Time-sorted. *)

val n_requests : t -> int
val distinct_urls : t -> int
