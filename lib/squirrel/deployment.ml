module Live = Harness.Sim.Live
module Sim = Harness.Sim

type result = {
  total_traffic : (float * float) array;
  cache_stats : Cache.stats;
  hit_rate : float;
  n_nodes : int;
  duration : float;
}

let run ?(n_nodes = 52) ?(duration = 6.0 *. 86_400.0) ?(window = 3600.0)
    ?(peak_rate = 0.05) ~seed () =
  let config =
    {
      Sim.default_config with
      seed;
      topology = Sim.Corpnet;
      lookup_rate = 0.0 (* Squirrel drives all lookups *);
      window;
      warmup = 1800.0;
    }
  in
  let live = Live.create config ~n_endpoints:n_nodes in
  let cache = Cache.create ~live () in
  (* machines come up staggered over the first 20 minutes *)
  for i = 0 to n_nodes - 1 do
    Live.spawn_at live ~time:(float_of_int i *. (1200.0 /. float_of_int n_nodes)) ()
  done;
  Live.run_until live 1800.0;
  let clients = Array.of_list (Live.active_nodes live) in
  let n_clients = Array.length clients in
  let rng = Repro_util.Rng.create (seed + 1) in
  let wl = Workload.generate ~rng ~n_clients ~duration ~peak_rate () in
  Array.iter
    (fun (r : Workload.request) ->
      ignore
        (Simkit.Engine.schedule_at (Live.engine live) ~time:(1800.0 +. r.Workload.time)
           (fun () ->
             let client = clients.(r.Workload.client mod n_clients) in
             if Mspastry.Node.is_alive client && Mspastry.Node.is_active client then
               Cache.request cache ~client ~url:r.Workload.url)))
    (Workload.requests wl);
  Live.run_until live (1800.0 +. duration +. 60.0);
  Overlay_metrics.Collector.flush (Live.collector live) ~time:(1800.0 +. duration);
  let overlay = Overlay_metrics.Collector.control_series (Live.collector live) in
  let lookup_series =
    Overlay_metrics.Collector.control_series_by_class (Live.collector live)
      Mspastry.Message.C_lookup
  in
  let squirrel = Cache.traffic_series cache ~window in
  (* merge the three per-window series into total messages/s/node *)
  let totals = Hashtbl.create 256 in
  let add arr =
    Array.iter
      (fun (mid, v) ->
        Hashtbl.replace totals mid
          (v +. (try Hashtbl.find totals mid with Not_found -> 0.0)))
      arr
  in
  add overlay;
  add lookup_series;
  add squirrel;
  let total_traffic =
    Hashtbl.fold (fun mid v acc -> (mid, v) :: acc) totals []
    |> List.sort compare |> Array.of_list
  in
  let s = Cache.stats cache in
  {
    total_traffic;
    cache_stats = s;
    hit_rate =
      (if s.Cache.responses = 0 then 0.0
       else float_of_int s.Cache.hits /. float_of_int s.Cache.responses);
    n_nodes = n_clients;
    duration;
  }
