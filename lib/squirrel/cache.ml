module Live = Harness.Sim.Live
module Node = Mspastry.Node
module Nodeid = Pastry.Nodeid

type pending = {
  url : string;
  client_addr : int;
  sent : float;
  timer : Simkit.Engine.event_id;
}

type store = (string, float) Hashtbl.t (* url -> last access time *)

type t = {
  live : Live.t;
  origin_delay : float;
  capacity : int;
  pending : (int, pending) Hashtbl.t;
  stores : (int, store) Hashtbl.t; (* home node addr -> cached objects *)
  mutable requests : int;
  mutable responses : int;
  mutable hits : int;
  mutable misses : int;
  mutable failed : int;
  mutable latency_sum : float;
  mutable msg_times : float list; (* squirrel's non-overlay messages *)
}

let key_of_url url = Nodeid.of_string (Digest.string url)

let request_timeout = 10.0

let record_msg t = t.msg_times <- Simkit.Engine.now (Live.engine t.live) :: t.msg_times

let evict_to_capacity t store =
  while Hashtbl.length store > t.capacity do
    let oldest = ref None in
    Hashtbl.iter
      (fun url ts ->
        match !oldest with
        | Some (_, bts) when bts <= ts -> ()
        | _ -> oldest := Some (url, ts))
      store;
    match !oldest with Some (url, _) -> Hashtbl.remove store url | None -> ()
  done

let respond t ~home_addr ~(p : pending) =
  let engine = Live.engine t.live in
  record_msg t;
  let d = Netsim.Net.delay (Live.net t.live) home_addr p.client_addr in
  ignore
    (Simkit.Engine.schedule engine ~delay:d (fun () ->
         t.responses <- t.responses + 1;
         t.latency_sum <- t.latency_sum +. (Simkit.Engine.now engine -. p.sent)))

let on_delivery t node (l : Mspastry.Message.lookup) =
  match Hashtbl.find_opt t.pending l.Mspastry.Message.seq with
  | None -> ()
  | Some p ->
      Hashtbl.remove t.pending l.Mspastry.Message.seq;
      Simkit.Engine.cancel (Live.engine t.live) p.timer;
      let engine = Live.engine t.live in
      let now = Simkit.Engine.now engine in
      let home_addr = (Node.me node).Pastry.Peer.addr in
      let store =
        match Hashtbl.find_opt t.stores home_addr with
        | Some s -> s
        | None ->
            let s = Hashtbl.create 64 in
            Hashtbl.add t.stores home_addr s;
            s
      in
      if Hashtbl.mem store p.url then begin
        t.hits <- t.hits + 1;
        Hashtbl.replace store p.url now;
        respond t ~home_addr ~p
      end
      else begin
        t.misses <- t.misses + 1;
        (* origin fetch: request out, object back *)
        record_msg t;
        ignore
          (Simkit.Engine.schedule engine ~delay:(2.0 *. t.origin_delay) (fun () ->
               record_msg t;
               Hashtbl.replace store p.url (Simkit.Engine.now engine);
               evict_to_capacity t store;
               respond t ~home_addr ~p))
      end

let create ?(origin_delay = 0.15) ?(capacity_per_node = 4096) ~live () =
  let t =
    {
      live;
      origin_delay;
      capacity = capacity_per_node;
      pending = Hashtbl.create 1024;
      stores = Hashtbl.create 64;
      requests = 0;
      responses = 0;
      hits = 0;
      misses = 0;
      failed = 0;
      latency_sum = 0.0;
      msg_times = [];
    }
  in
  Live.on_deliver live (fun node l -> on_delivery t node l);
  t

let request t ~client ~url =
  let engine = Live.engine t.live in
  t.requests <- t.requests + 1;
  let key = key_of_url url in
  (* the pending entry must be installed before the lookup is routed:
     when the client is itself the key's home node, delivery is
     synchronous *)
  let seq = Live.alloc_lookup t.live in
  let timer =
    Simkit.Engine.schedule engine ~delay:request_timeout (fun () ->
        if Hashtbl.mem t.pending seq then begin
          Hashtbl.remove t.pending seq;
          t.failed <- t.failed + 1
        end)
  in
  Hashtbl.replace t.pending seq
    {
      url;
      client_addr = (Node.me client).Pastry.Peer.addr;
      sent = Simkit.Engine.now engine;
      timer;
    };
  Live.send_lookup t.live client ~key ~seq

type stats = {
  requests : int;
  responses : int;
  hits : int;
  misses : int;
  failed : int;
  mean_latency : float;
  cached_objects : int;
}

let stats (t : t) =
  {
    requests = t.requests;
    responses = t.responses;
    hits = t.hits;
    misses = t.misses;
    failed = t.failed;
    mean_latency =
      (if t.responses = 0 then 0.0 else t.latency_sum /. float_of_int t.responses);
    cached_objects = Hashtbl.fold (fun _ s acc -> acc + Hashtbl.length s) t.stores 0;
  }

let traffic_series t ~window =
  let counts = Repro_util.Series.create ~window in
  List.iter (fun time -> Repro_util.Series.count counts ~time) t.msg_times;
  let pop = Overlay_metrics.Collector.population_series (Live.collector t.live) in
  let pop_tbl = Hashtbl.create 64 in
  Array.iter (fun (mid, v) -> Hashtbl.replace pop_tbl mid v) pop;
  Repro_util.Series.sums counts |> Array.to_list
  |> List.filter_map (fun (mid, v) ->
         match Hashtbl.find_opt pop_tbl mid with
         | Some p when p > 0.0 -> Some (mid, v /. (p *. window))
         | Some _ | None -> None)
  |> Array.of_list
