module Rng = Repro_util.Rng

type request = { time : float; client : int; url : string }

type t = { reqs : request array; n_urls : int }

let day = 86_400.0
let hour = 3600.0

(* office-hours intensity profile in [0,1] *)
let intensity t =
  let dow = int_of_float (floor (t /. day)) mod 7 in
  let weekend = dow = 5 || dow = 6 in
  let h = Float.rem t day /. hour in
  let daily =
    if h >= 9.0 && h < 12.0 then 1.0
    else if h >= 12.0 && h < 14.0 then 0.7
    else if h >= 14.0 && h < 18.0 then 0.95
    else if h >= 7.0 && h < 9.0 then 0.4
    else if h >= 18.0 && h < 22.0 then 0.3
    else 0.1
  in
  if weekend then 0.15 *. daily else daily

let generate ?(n_objects = 10_000) ?(zipf_s = 0.9) ?(peak_rate = 0.05) ~rng ~n_clients
    ~duration () =
  if n_clients <= 0 || duration <= 0.0 then invalid_arg "Workload.generate";
  let zipf = Repro_util.Stats.Zipf.create ~n:n_objects ~s:zipf_s in
  let reqs = ref [] in
  let dt = 60.0 in
  let t = ref 0.0 in
  while !t < duration do
    let rate = peak_rate *. intensity !t *. float_of_int n_clients in
    let k = Rng.poisson rng ~mean:(rate *. dt) in
    for _ = 1 to k do
      let time = !t +. Rng.float rng dt in
      if time < duration then begin
        let client = Rng.int rng n_clients in
        let obj = Repro_util.Stats.Zipf.sample zipf rng in
        reqs :=
          { time; client; url = Printf.sprintf "http://site%d/page%d" (obj mod 97) obj }
          :: !reqs
      end
    done;
    t := !t +. dt
  done;
  let arr = Array.of_list !reqs in
  Array.sort (fun a b -> compare a.time b.time) arr;
  { reqs = arr; n_urls = n_objects }

let requests t = t.reqs
let n_requests t = Array.length t.reqs

let distinct_urls t =
  let seen = Hashtbl.create 1024 in
  Array.iter (fun r -> Hashtbl.replace seen r.url ()) t.reqs;
  Hashtbl.length seen
