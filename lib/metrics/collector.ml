module M = Mspastry.Message
module Series = Repro_util.Series
module Hist = Repro_obs.Hist

type lookup_rec = {
  sent : float;
  mutable deliveries : int;
  mutable first_delay : float;
  mutable first_hops : int;
  mutable first_rdp : float;
  mutable incorrect : int;
  mutable correct : int;
}

type t = {
  window : float;
  sends : (M.traffic_class * Series.t) list; (* message counts per class *)
  pop_integral : Series.t; (* node-seconds per window *)
  mutable cur_pop : int;
  mutable pop_last_t : float;
  mutable last_event : float;
  lookups : (int, lookup_rec) Hashtbl.t;
  rdp_w : Series.t;
  join_lat : float list ref;
  mutable faults : (float * string) list; (* episode starts, newest first *)
  mutable suspicions : (float * bool) list; (* (time, target was alive) *)
  mutable detections : (float * float) list; (* (time, crash->detect latency) *)
  (* bounded-memory percentile state: one fixed-size log-bucketed
     histogram per latency-like metric, fed on the hot path *)
  delay_hist : Hist.t; (* lookup first-delivery delays, seconds *)
  hops_hist : Hist.t; (* lookup first-delivery hop counts *)
  q_hist : Hist.t; (* queueing delays, seconds *)
  (* optional exact path for cross-validation and windowed queue-delay
     slicing: queueing-delay samples as two parallel growable arrays
     (one sample per accepted message — a list of boxed pairs would be
     too heavy under a storm). Unbounded, so off by default. *)
  exact : bool;
  mutable q_times : float array;
  mutable q_delays : float array;
  mutable q_n : int;
}

let create ?(window = 600.0) ?(exact = false) () =
  {
    window;
    sends = List.map (fun c -> (c, Series.create ~window)) M.all_classes;
    pop_integral = Series.create ~window;
    cur_pop = 0;
    pop_last_t = 0.0;
    last_event = 0.0;
    lookups = Hashtbl.create 4096;
    rdp_w = Series.create ~window;
    join_lat = ref [];
    faults = [];
    suspicions = [];
    detections = [];
    delay_hist = Hist.create ();
    hops_hist = Hist.create ~lo:0.5 ~hi:1024.0 ();
    q_hist = Hist.create ();
    exact;
    q_times = [||];
    q_delays = [||];
    q_n = 0;
  }

let record_send t ~time cls =
  if time > t.last_event then t.last_event <- time;
  Series.count (List.assq cls t.sends) ~time

(* credit node-seconds from the last population change up to [time] *)
let credit_population t ~time =
  let rec go t0 =
    if t0 < time then begin
      let wend = Float.min ((floor (t0 /. t.window) +. 1.0) *. t.window) time in
      Series.add t.pop_integral ~time:t0 (float_of_int t.cur_pop *. (wend -. t0));
      go wend
    end
  in
  go t.pop_last_t;
  t.pop_last_t <- Float.max t.pop_last_t time

let set_population t ~time n =
  credit_population t ~time;
  t.cur_pop <- n

let flush t ~time = credit_population t ~time

let lookup_sent t ~seq ~time =
  if time > t.last_event then t.last_event <- time;
  Hashtbl.replace t.lookups seq
    {
      sent = time;
      deliveries = 0;
      first_delay = nan;
      first_hops = 0;
      first_rdp = nan;
      incorrect = 0;
      correct = 0;
    }

let lookup_delivered t ~seq ~time ~correct ~direct_delay ~hops =
  if time > t.last_event then t.last_event <- time;
  match Hashtbl.find_opt t.lookups seq with
  | None -> ()
  | Some r ->
      r.deliveries <- r.deliveries + 1;
      if correct then r.correct <- r.correct + 1
      else r.incorrect <- r.incorrect + 1;
      if r.deliveries = 1 then begin
        let delay = time -. r.sent in
        r.first_delay <- delay;
        r.first_hops <- hops;
        Hist.add t.delay_hist delay;
        Hist.add t.hops_hist (float_of_int hops);
        let rdp = if direct_delay > 0.0 then delay /. direct_delay else 1.0 in
        r.first_rdp <- rdp;
        Series.add t.rdp_w ~time rdp
      end

let join_recorded t ~latency = t.join_lat := latency :: !(t.join_lat)

let fault_injected t ~time ~label =
  if time > t.last_event then t.last_event <- time;
  t.faults <- (time, label) :: t.faults

let suspicion_recorded t ~time ~target_alive =
  if time > t.last_event then t.last_event <- time;
  t.suspicions <- (time, target_alive) :: t.suspicions

let crash_detected t ~time ~latency =
  if time > t.last_event then t.last_event <- time;
  t.detections <- (time, latency) :: t.detections

let queue_delay t ~time delay =
  if time > t.last_event then t.last_event <- time;
  Hist.add t.q_hist delay;
  if t.exact then begin
    if t.q_n = Array.length t.q_times then begin
      let cap = max 1024 (2 * t.q_n) in
      let grow a = Array.append a (Array.make (cap - Array.length a) 0.0) in
      t.q_times <- grow t.q_times;
      t.q_delays <- grow t.q_delays
    end;
    t.q_times.(t.q_n) <- time;
    t.q_delays.(t.q_n) <- delay;
    t.q_n <- t.q_n + 1
  end

type summary = {
  lookups_sent : int;
  lookups_delivered : int;
  lookups_lost : int;
  incorrect_deliveries : int;
  loss_rate : float;
  incorrect_rate : float;
  rdp_mean : float;
  delay_mean : float;
  hops_mean : float;
  control_msgs : float;
  control_per_node_per_s : float;
  control_by_class : (M.traffic_class * float) list;
  lookup_msgs : float;
  mean_population : float;
  joins : int;
  join_latency_mean : float;
  success_rate : float;
  suspicions : int;
  false_suspicions : int;
  false_suspicion_rate : float;
  crashes_detected : int;
  detect_latency_mean : float;
}

let in_range since until (time, _) = time >= since && time <= until

let sum_series ~since ~until s =
  Series.sums s |> Array.to_list
  |> List.filter (in_range since until)
  |> List.fold_left (fun acc (_, v) -> acc +. v) 0.0

let summary ?(since = 0.0) ?(until = infinity) ?(drain = 30.0) t =
  (* flush population credit up to the summary horizon; with no explicit
     horizon, use the last recorded send so numerator and denominator of
     the per-node rates cover the same span *)
  let horizon = if Float.is_finite until then until else Float.max t.pop_last_t t.last_event in
  credit_population t ~time:horizon;
  let node_seconds = sum_series ~since ~until t.pop_integral in
  let lookup_cutoff = until -. drain in
  let sent = ref 0
  and delivered = ref 0
  and lost = ref 0
  and incorrect = ref 0
  and succeeded = ref 0
  and delay_acc = ref 0.0
  and rdp_acc = ref 0.0
  and hops_acc = ref 0
  and first_n = ref 0 in
  Hashtbl.iter
    (fun _ r ->
      if r.sent >= since && r.sent <= until then begin
        incorrect := !incorrect + r.incorrect;
        if r.sent <= lookup_cutoff then begin
          incr sent;
          if r.deliveries > 0 then incr delivered else incr lost;
          if r.correct > 0 then incr succeeded
        end;
        if r.deliveries > 0 then begin
          incr first_n;
          delay_acc := !delay_acc +. r.first_delay;
          rdp_acc := !rdp_acc +. r.first_rdp;
          hops_acc := !hops_acc + r.first_hops
        end
      end)
    t.lookups;
  let fdiv a b = if b = 0 then 0.0 else a /. float_of_int b in
  let control_by_class =
    List.filter_map
      (fun (c, s) ->
        if M.is_control c then
          Some (c, if node_seconds > 0.0 then sum_series ~since ~until s /. node_seconds else 0.0)
        else None)
      t.sends
  in
  let control_msgs =
    List.fold_left
      (fun acc (c, s) -> if M.is_control c then acc +. sum_series ~since ~until s else acc)
      0.0 t.sends
  in
  let lookup_msgs = sum_series ~since ~until (List.assq M.C_lookup t.sends) in
  let span = (Float.min until t.pop_last_t -. since) in
  let joins = List.length !(t.join_lat) in
  let in_span time = time >= since && time <= until in
  let susp = List.filter (fun (time, _) -> in_span time) t.suspicions in
  let n_susp = List.length susp in
  let n_false = List.length (List.filter snd susp) in
  let dets = List.filter (fun (time, _) -> in_span time) t.detections in
  let n_det = List.length dets in
  let det_lat = List.fold_left (fun acc (_, l) -> acc +. l) 0.0 dets in
  {
    lookups_sent = !sent;
    lookups_delivered = !delivered;
    lookups_lost = !lost;
    incorrect_deliveries = !incorrect;
    loss_rate = fdiv (float_of_int !lost) !sent;
    incorrect_rate = fdiv (float_of_int !incorrect) !sent;
    rdp_mean = fdiv !rdp_acc !first_n;
    delay_mean = fdiv !delay_acc !first_n;
    hops_mean = fdiv (float_of_int !hops_acc) !first_n;
    control_msgs;
    control_per_node_per_s = (if node_seconds > 0.0 then control_msgs /. node_seconds else 0.0);
    control_by_class;
    lookup_msgs;
    mean_population = (if span > 0.0 then node_seconds /. span else 0.0);
    joins;
    join_latency_mean =
      (if joins = 0 then 0.0
       else List.fold_left ( +. ) 0.0 !(t.join_lat) /. float_of_int joins);
    success_rate = fdiv (float_of_int !succeeded) !sent;
    suspicions = n_susp;
    false_suspicions = n_false;
    false_suspicion_rate = fdiv (float_of_int n_false) n_susp;
    crashes_detected = n_det;
    detect_latency_mean = fdiv det_lat n_det;
  }

let rdp_series t = Series.means t.rdp_w

let population_series t =
  Series.sums t.pop_integral |> Array.map (fun (mid, v) -> (mid, v /. t.window))

let control_series t =
  let pop = Series.sums t.pop_integral in
  let pop_tbl = Hashtbl.create 64 in
  Array.iter (fun (mid, v) -> Hashtbl.replace pop_tbl mid v) pop;
  let totals = Hashtbl.create 64 in
  List.iter
    (fun (c, s) ->
      if M.is_control c then
        Array.iter
          (fun (mid, v) ->
            Hashtbl.replace totals mid
              (v +. (try Hashtbl.find totals mid with Not_found -> 0.0)))
          (Series.sums s))
    t.sends;
  Hashtbl.fold (fun mid v acc -> (mid, v) :: acc) totals []
  |> List.sort compare
  |> List.filter_map (fun (mid, v) ->
         match Hashtbl.find_opt pop_tbl mid with
         | Some ns when ns > 0.0 -> Some (mid, v /. ns)
         | Some _ | None -> None)
  |> Array.of_list

let control_series_by_class t cls =
  let pop_tbl = Hashtbl.create 64 in
  Array.iter (fun (mid, v) -> Hashtbl.replace pop_tbl mid v) (Series.sums t.pop_integral);
  Series.sums (List.assq cls t.sends)
  |> Array.to_list
  |> List.filter_map (fun (mid, v) ->
         match Hashtbl.find_opt pop_tbl mid with
         | Some ns when ns > 0.0 -> Some (mid, v /. ns)
         | Some _ | None -> None)
  |> Array.of_list

let join_latencies t = Array.of_list !(t.join_lat)

let lookup_delays ?(since = 0.0) ?(until = infinity) t =
  let acc = ref [] in
  Hashtbl.iter
    (fun _ r ->
      if r.sent >= since && r.sent <= until && r.deliveries > 0 then
        acc := r.first_delay :: !acc)
    t.lookups;
  let a = Array.of_list !acc in
  Array.sort Float.compare a;
  a

let exact_samples t = t.exact
let lookup_delay_hist t = t.delay_hist
let hop_hist t = t.hops_hist
let queue_delay_hist t = t.q_hist

let require_exact t what =
  if not t.exact then
    invalid_arg
      (Printf.sprintf
         "Collector.%s: exact sample retention is off (create ~exact:true); use \
          the histogram accessors instead"
         what)

let queue_delays ?(since = 0.0) ?(until = infinity) t =
  require_exact t "queue_delays";
  let acc = ref [] in
  for i = 0 to t.q_n - 1 do
    if t.q_times.(i) >= since && t.q_times.(i) <= until then
      acc := t.q_delays.(i) :: !acc
  done;
  let a = Array.of_list !acc in
  Array.sort Float.compare a;
  a

let queue_delay_series t =
  require_exact t "queue_delay_series";
  let sums = Hashtbl.create 64 and counts = Hashtbl.create 64 in
  for i = 0 to t.q_n - 1 do
    let widx = int_of_float (t.q_times.(i) /. t.window) in
    Hashtbl.replace sums widx
      (t.q_delays.(i) +. (try Hashtbl.find sums widx with Not_found -> 0.0));
    Hashtbl.replace counts widx
      (1 + (try Hashtbl.find counts widx with Not_found -> 0))
  done;
  Hashtbl.fold
    (fun widx s acc ->
      let n = Hashtbl.find counts widx in
      ((float_of_int widx +. 0.5) *. t.window, s /. float_of_int n) :: acc)
    sums []
  |> List.sort compare |> Array.of_list

(* ---- fault episodes and recovery -------------------------------------

   Dependability rates are attributed to the window a lookup was *sent*
   in: a window's loss rate is the fraction of its lookups never
   delivered, its incorrect rate the fraction delivered by a non-root
   node at least once. Both are computable post-hoc from the per-lookup
   records, so no extra hot-path state is needed. *)

type wstats = {
  mutable w_sent : int;
  mutable w_lost : int;
  mutable w_incorrect : int;
  mutable w_correct : int;
}

let sent_windows t =
  let tbl : (int, wstats) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ r ->
      let widx = int_of_float (r.sent /. t.window) in
      let w =
        match Hashtbl.find_opt tbl widx with
        | Some w -> w
        | None ->
            let w = { w_sent = 0; w_lost = 0; w_incorrect = 0; w_correct = 0 } in
            Hashtbl.add tbl widx w;
            w
      in
      w.w_sent <- w.w_sent + 1;
      if r.deliveries = 0 then w.w_lost <- w.w_lost + 1;
      if r.incorrect > 0 then w.w_incorrect <- w.w_incorrect + 1;
      if r.correct > 0 then w.w_correct <- w.w_correct + 1)
    t.lookups;
  tbl

let window_rates tbl widx =
  match Hashtbl.find_opt tbl widx with
  | Some w when w.w_sent > 0 ->
      let n = float_of_int w.w_sent in
      Some (float_of_int w.w_lost /. n, float_of_int w.w_incorrect /. n)
  | Some _ | None -> None

let series_of t pick =
  let tbl = sent_windows t in
  Hashtbl.fold (fun widx w acc -> (widx, w) :: acc) tbl []
  |> List.filter (fun (_, w) -> w.w_sent > 0)
  |> List.sort compare
  |> List.map (fun (widx, w) ->
         ( (float_of_int widx +. 0.5) *. t.window,
           float_of_int (pick w) /. float_of_int w.w_sent ))
  |> Array.of_list

let lookup_loss_series t = series_of t (fun w -> w.w_lost)
let incorrect_series t = series_of t (fun w -> w.w_incorrect)

(* goodput is attributed to the window a lookup was *sent* in, so a
   window's offered and served rates describe the same demand *)
let offered_goodput_series t =
  let tbl = sent_windows t in
  Hashtbl.fold (fun widx w acc -> (widx, w) :: acc) tbl []
  |> List.filter (fun (_, w) -> w.w_sent > 0)
  |> List.sort compare
  |> List.map (fun (widx, w) ->
         ( (float_of_int widx +. 0.5) *. t.window,
           float_of_int w.w_sent /. t.window,
           float_of_int w.w_correct /. t.window ))
  |> Array.of_list

let collapse_windows ?(threshold = 0.5) t =
  offered_goodput_series t |> Array.to_list
  |> List.filter_map (fun (mid, offered, goodput) ->
         if offered > 0.0 && goodput /. offered < threshold then
           Some (mid -. (t.window /. 2.0), goodput /. offered)
         else None)

type episode = {
  ep_label : string;
  ep_start : float;
  baseline_loss : float;
  baseline_incorrect : float;
  peak_loss : float;
  peak_incorrect : float;
  time_to_repair : float option;
}

let episodes ?(drain = 30.0) ?(tolerance = 0.01) t =
  let horizon = Float.max t.pop_last_t t.last_event in
  let tbl = sent_windows t in
  (* last window whose lookups have all had [drain] seconds to finish *)
  let last_judgeable = int_of_float ((horizon -. drain) /. t.window) - 1 in
  List.rev_map
    (fun (start, label) ->
      let wf = int_of_float (start /. t.window) in
      let baseline_loss, baseline_incorrect =
        match window_rates tbl (wf - 1) with Some (l, i) -> (l, i) | None -> (0.0, 0.0)
      in
      let repaired = function
        | Some (loss, incorrect) ->
            loss <= baseline_loss +. tolerance
            && incorrect <= baseline_incorrect +. tolerance
        | None -> false
      in
      let rec scan w peak_l peak_i =
        if w > last_judgeable then (peak_l, peak_i, None)
        else
          let rates = window_rates tbl w in
          let peak_l, peak_i =
            match rates with
            | Some (l, i) -> (Float.max peak_l l, Float.max peak_i i)
            | None -> (peak_l, peak_i)
          in
          if w > wf && repaired rates then
            (peak_l, peak_i, Some ((float_of_int (w + 1) *. t.window) -. start))
          else scan (w + 1) peak_l peak_i
      in
      let peak_loss, peak_incorrect, time_to_repair = scan wf 0.0 0.0 in
      {
        ep_label = label;
        ep_start = start;
        baseline_loss;
        baseline_incorrect;
        peak_loss;
        peak_incorrect;
        time_to_repair;
      })
    t.faults

let pp_episode fmt e =
  Format.fprintf fmt
    "@[<h>fault %S at t=%.0fs: baseline loss=%.3g incorrect=%.3g, peak loss=%.3g \
     incorrect=%.3g, time-to-repair=%s@]"
    e.ep_label e.ep_start e.baseline_loss e.baseline_incorrect e.peak_loss
    e.peak_incorrect
    (match e.time_to_repair with
    | Some ttr -> Printf.sprintf "%.0fs" ttr
    | None -> "not repaired in run")

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>lookups: sent=%d delivered=%d lost=%d (loss=%.2e) incorrect=%d (%.2e) \
     success=%.4f@,\
     rdp=%.2f delay=%.1fms hops=%.2f@,\
     control=%.3f msg/s/node (pop=%.0f), joins=%d (mean latency %.1fs)@]"
    s.lookups_sent s.lookups_delivered s.lookups_lost s.loss_rate s.incorrect_deliveries
    s.incorrect_rate s.success_rate s.rdp_mean (s.delay_mean *. 1000.0) s.hops_mean
    s.control_per_node_per_s s.mean_population s.joins s.join_latency_mean;
  if s.suspicions > 0 || s.crashes_detected > 0 then
    Format.fprintf fmt
      "@,@[<h>detector: suspicions=%d false=%d (%.3f), crashes detected=%d \
       (mean %.1fs)@]"
      s.suspicions s.false_suspicions s.false_suspicion_rate s.crashes_detected
      s.detect_latency_mean
