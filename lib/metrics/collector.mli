(** Evaluation metrics (§5.2).

    The collector is fed by the harness: every network send (classified
    per {!Mspastry.Message.traffic_class}), population changes, lookup
    lifecycles, and join latencies. It reports
    - {b incorrect delivery rate}: lookups delivered by a non-root node;
    - {b lookup loss rate}: lookups never delivered at all;
    - {b RDP}: overlay delay over direct network delay;
    - {b control traffic}: control messages per second per active node,
      with the Fig 4 per-class breakdown;
    all both as whole-run aggregates and as windowed time series. *)

type t

val create : ?window:float -> ?exact:bool -> unit -> t
(** [window] defaults to 600 s (the paper's 10-minute averaging).

    [exact] (default [false]) additionally retains every queueing-delay
    sample so {!queue_delays} / {!queue_delay_series} can slice them by
    time — O(samples) memory, for cross-validating the histograms and
    for the windowed congestion analyses. With [exact:false] the
    percentile state is the fixed-size histograms only (O(1) memory per
    metric regardless of run length). *)

val record_send : t -> time:float -> Mspastry.Message.traffic_class -> unit

val set_population : t -> time:float -> int -> unit
(** Report the current number of active nodes whenever it changes. *)

val flush : t -> time:float -> unit
(** Credit population-time up to [time]. Call before reading the series
    of a run whose population did not change near the end — windows with
    no change would otherwise be missing from per-node normalisation. *)

val lookup_sent : t -> seq:int -> time:float -> unit

val lookup_delivered :
  t -> seq:int -> time:float -> correct:bool -> direct_delay:float -> hops:int -> unit
(** [direct_delay] is the network delay from the lookup's origin to the
    node that delivered it (RDP denominator). Duplicate deliveries of the
    same sequence number only count once for delay statistics, but an
    incorrect duplicate still counts as an inconsistency. *)

val join_recorded : t -> latency:float -> unit

val fault_injected : t -> time:float -> label:string -> unit
(** Mark the start of a fault episode (a scheduled mass crash, partition,
    loss-model change, ...). Recovery is judged post-hoc by {!episodes}. *)

val suspicion_recorded : t -> time:float -> target_alive:bool -> unit
(** A node's failure detector quarantined a peer. [target_alive] is the
    harness's ground truth at that instant — [true] makes it a false
    suspicion (the peer was slow or unlucky, not dead). *)

val crash_detected : t -> time:float -> latency:float -> unit
(** First suspicion of a genuinely crashed node, [latency] seconds after
    its crash (detector time-to-detect; recorded once per crash). *)

val queue_delay : t -> time:float -> float -> unit
(** Feed one queueing-delay sample (seconds a message spent waiting plus
    in service at a congested node). The harness wires this to
    {!Netsim.Net.on_queue}; with the capacity model off it never fires. *)

type summary = {
  lookups_sent : int;
  lookups_delivered : int;  (** at least once *)
  lookups_lost : int;
  incorrect_deliveries : int;
  loss_rate : float;
  incorrect_rate : float;
  rdp_mean : float;
  delay_mean : float;
  hops_mean : float;
  control_msgs : float;  (** control messages in the interval *)
  control_per_node_per_s : float;
  control_by_class : (Mspastry.Message.traffic_class * float) list;
      (** per-class messages per second per node *)
  lookup_msgs : float;
  mean_population : float;
  joins : int;
  join_latency_mean : float;
  success_rate : float;
      (** fraction of judged lookups with at least one {e correct}
          delivery — the end-to-end criterion (a lookup can be
          "delivered" yet never reach its true root) *)
  suspicions : int;  (** failure-detector quarantines in the interval *)
  false_suspicions : int;  (** ... whose target was alive (ground truth) *)
  false_suspicion_rate : float;
  crashes_detected : int;
  detect_latency_mean : float;
      (** mean seconds from a true crash to its first suspicion *)
}

val summary : ?since:float -> ?until:float -> ?drain:float -> t -> summary
(** Aggregate over [\[since, until\]] (defaults: whole run). Lookups sent
    within [drain] seconds of [until] (default 30 s) are excluded from
    loss accounting — they may still legitimately be in flight. *)

val rdp_series : t -> (float * float) array
(** Windowed mean RDP over time. *)

val control_series : t -> (float * float) array
(** Windowed control messages per second per active node. *)

val control_series_by_class :
  t -> Mspastry.Message.traffic_class -> (float * float) array

val population_series : t -> (float * float) array
val join_latencies : t -> float array

val lookup_delays : ?since:float -> ?until:float -> t -> float array
(** First-delivery delays (seconds) of lookups sent in the interval,
    sorted ascending — percentile/tail analysis for the fail-slow
    experiments. *)

val queue_delays : ?since:float -> ?until:float -> t -> float array
(** Queueing-delay samples recorded in the interval, sorted ascending —
    percentile analysis for the congestion experiments. Raises
    [Invalid_argument] unless the collector was created with
    [~exact:true]. *)

val queue_delay_series : t -> (float * float) array
(** Windowed mean queueing delay over time (only windows with at least
    one sample appear). Raises [Invalid_argument] unless the collector
    was created with [~exact:true]. *)

val exact_samples : t -> bool
(** Whether this collector retains exact queueing-delay samples. *)

val lookup_delay_hist : t -> Repro_obs.Hist.t
(** Bounded-memory histogram of first-delivery lookup delays (seconds),
    fed for every delivered lookup regardless of [exact]. Quantiles
    carry the documented {!Repro_obs.Hist} relative-error bound. *)

val hop_hist : t -> Repro_obs.Hist.t
(** Histogram of first-delivery overlay hop counts. *)

val queue_delay_hist : t -> Repro_obs.Hist.t
(** Histogram of queueing-delay samples (empty with the capacity model
    off). *)

val offered_goodput_series : t -> (float * float * float) array
(** Per window [(mid, offered, goodput)]: lookups {e sent} per second in
    the window vs lookups sent in it that eventually reached their true
    root, per second. Under congestive collapse goodput falls while
    offered load stays up. *)

val collapse_windows : ?threshold:float -> t -> (float * float) list
(** Windows whose goodput fell below [threshold] (default 0.5) of the
    offered load, as [(window start, goodput fraction)] — the collapse
    detector for the overload experiments. Trailing windows carry the
    usual in-flight caveat. *)

val lookup_loss_series : t -> (float * float) array
(** Windowed lookup loss rate: for each window, the fraction of lookups
    {e sent} in it that were never delivered. The trailing windows of a
    run include lookups that may still be in flight — interpret with the
    same drain caveat as {!summary}. *)

val incorrect_series : t -> (float * float) array
(** Windowed incorrect-delivery rate: fraction of lookups sent in the
    window that were delivered by a non-root node at least once. *)

(** Recovery report for one fault episode (ordered by injection time in
    {!episodes}). Baselines are the loss / incorrect rates of the full
    window preceding the injection; peaks are the worst windowed rates
    from the injection until repair (or the end of usable data). *)
type episode = {
  ep_label : string;
  ep_start : float;
  baseline_loss : float;
  baseline_incorrect : float;
  peak_loss : float;
  peak_incorrect : float;
  time_to_repair : float option;
      (** time from injection until the end of the first complete
          post-fault window whose loss and incorrect rates are back
          within [tolerance] of the pre-fault baselines; [None] if the
          run ended first *)
}

val episodes : ?drain:float -> ?tolerance:float -> t -> episode list
(** Judge every {!fault_injected} episode. Windows within [drain]
    (default 30 s) of the last recorded event are not judged — their
    lookups may legitimately still be in flight. [tolerance] (default
    0.01 absolute) is the slack over the baseline rates that still counts
    as repaired. *)

val pp_episode : Format.formatter -> episode -> unit
val pp_summary : Format.formatter -> summary -> unit
