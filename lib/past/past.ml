module Live = Harness.Sim.Live
module Node = Mspastry.Node
module M = Mspastry.Message
module Nodeid = Pastry.Nodeid

type kind =
  | Put of { key : string; value : string; refresh : bool }
  | Get of { key : string; client_addr : int; timer : Simkit.Engine.event_id }

type t = {
  live : Live.t;
  replicas : int;
  refresh_period : float;
  request_timeout : float;
  stores : (int, (string, string) Hashtbl.t) Hashtbl.t; (* addr -> key -> value *)
  pending : (int, kind) Hashtbl.t;
  mutable next_seq : int;
  mutable puts : int;
  mutable put_acks : int;
  mutable gets : int;
  mutable get_hits : int;
  mutable get_misses : int;
  mutable get_timeouts : int;
  mutable repair_pulls : int;
}

let hash_key key = Nodeid.of_string (Digest.string ("past:" ^ key))

let store_of t addr =
  match Hashtbl.find_opt t.stores addr with
  | Some s -> s
  | None ->
      let s = Hashtbl.create 16 in
      Hashtbl.add t.stores addr s;
      s

let alive_at t addr =
  match Live.find_node t.live ~addr with
  | Some n -> Node.is_alive n
  | None -> false

let engine t = Live.engine t.live

(* the k-1 leaf-set members of [node] ring-closest to the object key *)
let replica_targets t node ~keyhash =
  Pastry.Leafset.members (Node.leafset node)
  |> List.sort (fun a b ->
         Nodeid.compare
           (Nodeid.ring_dist a.Pastry.Peer.id keyhash)
           (Nodeid.ring_dist b.Pastry.Peer.id keyhash))
  |> List.filteri (fun i _ -> i < t.replicas - 1)

let replicate t ~from_addr ~key ~value node =
  List.iter
    (fun (p : Pastry.Peer.t) ->
      let d = Netsim.Net.delay (Live.net t.live) from_addr p.Pastry.Peer.addr in
      ignore
        (Simkit.Engine.schedule (engine t) ~delay:d (fun () ->
             if alive_at t p.Pastry.Peer.addr then
               Hashtbl.replace (store_of t p.Pastry.Peer.addr) key value)))
    (replica_targets t node ~keyhash:(hash_key key))

let handle_put t node ~key ~value =
  let addr = (Node.me node).Pastry.Peer.addr in
  Hashtbl.replace (store_of t addr) key value;
  replicate t ~from_addr:addr ~key ~value node

(* lazy recovery: a fresh root pulls a missing object from the replica
   neighbourhood before answering *)
let neighbour_copy t node ~key =
  let holders =
    Pastry.Leafset.members (Node.leafset node)
    |> List.filter (fun (p : Pastry.Peer.t) ->
           alive_at t p.Pastry.Peer.addr
           && Hashtbl.mem (store_of t p.Pastry.Peer.addr) key)
  in
  match holders with
  | [] -> None
  | (p : Pastry.Peer.t) :: _ ->
      Some (p, Hashtbl.find (store_of t p.Pastry.Peer.addr) key)

let answer_get t node ~key ~client_addr ~seq =
  let addr = (Node.me node).Pastry.Peer.addr in
  let respond found extra_delay =
    let d = extra_delay +. Netsim.Net.delay (Live.net t.live) addr client_addr in
    ignore
      (Simkit.Engine.schedule (engine t) ~delay:d (fun () ->
           match Hashtbl.find_opt t.pending seq with
           | Some (Get g) ->
               Hashtbl.remove t.pending seq;
               Simkit.Engine.cancel (engine t) g.timer;
               if found then t.get_hits <- t.get_hits + 1
               else t.get_misses <- t.get_misses + 1
           | Some (Put _) | None -> ()))
  in
  match Hashtbl.find_opt (store_of t addr) key with
  | Some _ -> respond true 0.0
  | None -> (
      (* one neighbourhood round-trip to recover the replica *)
      match neighbour_copy t node ~key with
      | Some (holder, value) ->
          t.repair_pulls <- t.repair_pulls + 1;
          Hashtbl.replace (store_of t addr) key value;
          replicate t ~from_addr:addr ~key ~value node;
          respond true (Netsim.Net.rtt (Live.net t.live) addr holder.Pastry.Peer.addr)
      | None -> respond false 0.0)

let on_deliver t node (l : M.lookup) =
  match Hashtbl.find_opt t.pending l.M.seq with
  | None -> ()
  | Some (Put { key; value; refresh }) ->
      Hashtbl.remove t.pending l.M.seq;
      if not refresh then t.put_acks <- t.put_acks + 1;
      handle_put t node ~key ~value
  | Some (Get { key; client_addr; _ }) -> answer_get t node ~key ~client_addr ~seq:l.M.seq

let fresh_seq t =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  seq

let route_put t ~client ~key ~value ~refresh =
  if Node.is_alive client && Node.is_active client then begin
    let seq = fresh_seq t in
    Hashtbl.replace t.pending seq (Put { key; value; refresh });
    Live.send_lookup t.live client ~key:(hash_key key) ~seq
  end

(* periodic anti-entropy: every holder re-inserts what it stores, so the
   replica set follows ring membership *)
let rec sweep t =
  Hashtbl.iter
    (fun addr store ->
      match Live.find_node t.live ~addr with
      | Some node when Node.is_alive node && Node.is_active node ->
          Hashtbl.iter (fun key value -> route_put t ~client:node ~key ~value ~refresh:true) store
      | Some _ | None ->
          (* the machine is gone; its replicas die with it *)
          Hashtbl.reset store)
    t.stores;
  ignore (Simkit.Engine.schedule (engine t) ~delay:t.refresh_period (fun () -> sweep t))

let create ?(replicas = 3) ?(refresh_period = 120.0) ?(request_timeout = 10.0) ~live () =
  if replicas < 1 then invalid_arg "Past.create: replicas must be >= 1";
  let t =
    {
      live;
      replicas;
      refresh_period;
      request_timeout;
      stores = Hashtbl.create 128;
      pending = Hashtbl.create 64;
      next_seq = 2_000_000_000;
      puts = 0;
      put_acks = 0;
      gets = 0;
      get_hits = 0;
      get_misses = 0;
      get_timeouts = 0;
      repair_pulls = 0;
    }
  in
  Live.on_deliver live (fun node l -> on_deliver t node l);
  ignore (Simkit.Engine.schedule (engine t) ~delay:refresh_period (fun () -> sweep t));
  t

let put t ~client ~key ~value =
  t.puts <- t.puts + 1;
  route_put t ~client ~key ~value ~refresh:false

let get t ~client ~key =
  if Node.is_alive client && Node.is_active client then begin
    t.gets <- t.gets + 1;
    let seq = fresh_seq t in
    let timer =
      Simkit.Engine.schedule (engine t) ~delay:t.request_timeout (fun () ->
          if Hashtbl.mem t.pending seq then begin
            Hashtbl.remove t.pending seq;
            t.get_timeouts <- t.get_timeouts + 1
          end)
    in
    Hashtbl.replace t.pending seq
      (Get { key; client_addr = (Node.me client).Pastry.Peer.addr; timer });
    Live.send_lookup t.live client ~key:(hash_key key) ~seq
  end

type stats = {
  puts : int;
  put_acks : int;
  gets : int;
  get_hits : int;
  get_misses : int;
  get_timeouts : int;
  stored_objects : int;
  repair_pulls : int;
}

let stats (t : t) =
  let stored =
    Hashtbl.fold
      (fun addr store acc -> if alive_at t addr then acc + Hashtbl.length store else acc)
      t.stores 0
  in
  {
    puts = t.puts;
    put_acks = t.put_acks;
    gets = t.gets;
    get_hits = t.get_hits;
    get_misses = t.get_misses;
    get_timeouts = t.get_timeouts;
    stored_objects = stored;
    repair_pulls = t.repair_pulls;
  }

let object_replicas t ~key =
  Hashtbl.fold
    (fun addr store acc ->
      if alive_at t addr && Hashtbl.mem store key then acc + 1 else acc)
    t.stores 0
