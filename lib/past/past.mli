(** A PAST-style replicated key-value store on MSPastry.

    PAST (Rowstron & Druschel, SOSP'01) is the archival storage system
    the paper cites as a victim of routing inconsistency (§3.1): objects
    live at the [k] nodes whose identifiers are closest to the object key
    (the root and its leaf-set neighbours). This module implements the
    storage substrate:

    - {!put} routes an insert to the key's root, which stores the object
      and pushes replicas to its [k−1] nearest leaf-set members;
    - {!get} routes a fetch to the root; if the root lacks the object
      (e.g. it became root only after a failure) it pulls from its
      neighbours before answering — lazy replica recovery;
    - every node periodically re-replicates what it holds toward the
      current root, so replica sets track ring membership under churn.

    Durability under churn is the observable the store experiment
    reports: the fraction of successful gets over time. *)

type t

val create :
  ?replicas:int ->
  ?refresh_period:float ->
  ?request_timeout:float ->
  live:Harness.Sim.Live.t ->
  unit ->
  t
(** [replicas] — target copies per object, default 3. [refresh_period] —
    re-replication sweep interval, default 120 s. *)

val put : t -> client:Mspastry.Node.t -> key:string -> value:string -> unit
val get : t -> client:Mspastry.Node.t -> key:string -> unit

type stats = {
  puts : int;
  put_acks : int;  (** puts confirmed stored at the root *)
  gets : int;
  get_hits : int;
  get_misses : int;  (** answered, but the object was gone *)
  get_timeouts : int;  (** never answered *)
  stored_objects : int;  (** replicas currently resident, all nodes *)
  repair_pulls : int;  (** lazy recoveries by fresh roots *)
}

val stats : t -> stats

val object_replicas : t -> key:string -> int
(** Live copies of one object (test introspection). *)
