(** 128-bit Pastry identifiers.

    Node identifiers and object keys are drawn from the same circular
    128-bit space. Values are immutable 16-byte strings in big-endian
    order, so plain [String.compare] is numeric comparison.

    Ring geometry: the clockwise distance from [a] to [b] is
    [(b − a) mod 2^128]; the ring distance is the smaller of the two
    directed distances. A key is owned by the live node minimising ring
    distance, with ties broken by the numerically smaller identifier —
    every component of the system uses {!closer} so the tie-break is
    globally consistent. *)

type t = private string

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val zero : t
val max_value : t

val of_string : string -> t
(** Requires a 16-byte string. *)

val to_raw : t -> string

val of_hex : string -> t
(** Requires 32 hex characters. *)

val to_hex : t -> string

val short : t -> string
(** First 8 hex chars — for logs. *)

val random : Repro_util.Rng.t -> t

val of_int : int -> t
(** Identifier with the low 62 bits set from [i] (test helper). *)

val num_digits : b:int -> int
(** Number of base-2^b digits in an identifier: ceil(128/b). *)

val digit : b:int -> t -> int -> int
(** [digit ~b t i] is the i-th digit (0 = most significant) of [t] in base
    2^b. The final digit may span fewer than [b] bits when [b] does not
    divide 128. *)

val shared_prefix_length : b:int -> t -> t -> int
(** Number of leading base-2^b digits the two identifiers share. *)

val add : t -> t -> t
(** Modular 2^128 addition. *)

val sub : t -> t -> t
(** [sub a b] is [(a − b) mod 2^128]. *)

val cw_dist : t -> t -> t
(** [cw_dist a b] — clockwise (increasing id) distance from [a] to [b]. *)

val ring_dist : t -> t -> t
(** Minimum of the two directed distances. *)

val in_cw_arc : from:t -> til:t -> t -> bool
(** [in_cw_arc ~from ~til x] — is [x] on the closed clockwise arc
    \[from, til\]? When [from = til] the arc is the single point. *)

val closer : key:t -> t -> t -> bool
(** [closer ~key a b] — does [a] strictly win ownership of [key] against
    [b]? Smaller ring distance wins; equal distance falls back to the
    numerically smaller identifier. *)

val to_float : t -> float
(** Approximate magnitude as a float in [\[0, 2^128)] — used for
    estimating network size from leaf-set density. *)

val pp : Format.formatter -> t -> unit
