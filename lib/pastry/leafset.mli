(** Pastry leaf set: the l/2 ring neighbours on each side of a node.

    The left side holds the closest identifiers counter-clockwise
    (numerically decreasing, mod 2^128), the right side clockwise. In
    overlays with at most [l] nodes the sides overlap ("wrap"); a wrapped
    leaf set knows every node in the ring and is considered complete even
    when the sides are not full. *)

type t

val create : l:int -> me:Peer.t -> t
(** [l] must be even and >= 2. *)

val me : t -> Peer.t
val l : t -> int

val add : t -> Peer.t -> bool
(** Insert a peer on whichever sides it belongs to. Returns [true] when
    the leaf set changed. The peer equal to [me] is ignored. *)

val remove : t -> Nodeid.t -> bool
(** Remove from both sides; [true] when the peer was present. *)

val mem : t -> Nodeid.t -> bool

val members : t -> Peer.t list
(** All distinct peers (never includes [me]). *)

val size : t -> int
(** Number of distinct members. *)

val left_size : t -> int
val right_size : t -> int

val left_neighbor : t -> Peer.t option
(** Immediate counter-clockwise neighbour — heartbeat target. *)

val right_neighbor : t -> Peer.t option
(** Immediate clockwise neighbour — the node whose heartbeats we watch. *)

val leftmost : t -> Peer.t option
(** Furthest member counter-clockwise. *)

val rightmost : t -> Peer.t option

val wraps : t -> bool
(** The two sides share a member — the leaf set spans the whole ring. *)

val complete : t -> bool
(** Both sides full, or the set wraps, or the overlay is a singleton. *)

val covers : t -> Nodeid.t -> bool
(** Is the key on the arc \[leftmost, rightmost\] through [me]? Always
    true when the set wraps or the node is alone; false whenever exactly
    one side is empty (the paper suspends delivery in that state). *)

val closest : t -> Nodeid.t -> Peer.t
(** Member (including [me]) owning the key under {!Nodeid.closer}. *)

val closest_excluding : t -> Nodeid.t -> excluded:(Nodeid.t -> bool) -> Peer.t option
(** Like {!closest} but skipping excluded peers; [me] is never excluded. *)

val would_admit : t -> Nodeid.t -> bool
(** Would {!add} of this identifier change the leaf set? *)

val pp : Format.formatter -> t -> unit
