type entry = { peer : Peer.t; rtt : float }

type t = {
  b : int;
  me : Nodeid.t;
  table : entry option array array; (* rows x cols *)
  mutable count : int;
}

let create ~b ~me =
  if b < 1 || b > 8 then invalid_arg "Routing_table.create: b must be in 1..8";
  let rows = Nodeid.num_digits ~b in
  let cols = 1 lsl b in
  { b; me; table = Array.make_matrix rows cols None; count = 0 }

let b t = t.b
let rows t = Array.length t.table
let cols t = Array.length t.table.(0)
let me t = t.me

let slot_of t id =
  if Nodeid.equal id t.me then None
  else begin
    let r = Nodeid.shared_prefix_length ~b:t.b t.me id in
    (* r < num_digits since id <> me *)
    Some (r, Nodeid.digit ~b:t.b id r)
  end

let get t r c = t.table.(r).(c)

let find t id =
  match slot_of t id with
  | None -> None
  | Some (r, c) -> (
      match t.table.(r).(c) with
      | Some e when Nodeid.equal e.peer.Peer.id id -> Some e
      | Some _ | None -> None)

let install t r c e =
  if t.table.(r).(c) = None then t.count <- t.count + 1;
  t.table.(r).(c) <- Some e

let consider t peer ~rtt =
  match slot_of t peer.Peer.id with
  | None -> false
  | Some (r, c) -> (
      match t.table.(r).(c) with
      | None ->
          install t r c { peer; rtt };
          true
      | Some e when Nodeid.equal e.peer.Peer.id peer.Peer.id ->
          if rtt < e.rtt then begin
            t.table.(r).(c) <- Some { peer; rtt };
            true
          end
          else false
      | Some e ->
          if rtt < e.rtt then begin
            t.table.(r).(c) <- Some { peer; rtt };
            true
          end
          else false)

let set t peer ~rtt =
  match slot_of t peer.Peer.id with
  | None -> false
  | Some (r, c) ->
      install t r c { peer; rtt };
      true

let remove t id =
  match slot_of t id with
  | None -> false
  | Some (r, c) -> (
      match t.table.(r).(c) with
      | Some e when Nodeid.equal e.peer.Peer.id id ->
          t.table.(r).(c) <- None;
          t.count <- t.count - 1;
          true
      | Some _ | None -> false)

let row_entries t r =
  Array.to_list t.table.(r) |> List.filter_map (fun x -> x)

let entries t =
  Array.to_list t.table
  |> List.concat_map (fun row -> Array.to_list row |> List.filter_map (fun x -> x))

let peers t = List.map (fun e -> e.peer) (entries t)

let count t = t.count

let update_rtt t id rtt =
  match slot_of t id with
  | None -> ()
  | Some (r, c) -> (
      match t.table.(r).(c) with
      | Some e when Nodeid.equal e.peer.Peer.id id -> t.table.(r).(c) <- Some { e with rtt }
      | Some _ | None -> ())

let pp fmt t =
  Format.fprintf fmt "@[<v>routing table of %a (%d entries)@," Nodeid.pp t.me t.count;
  Array.iteri
    (fun r row ->
      let occupied = Array.to_list row |> List.filter_map (fun x -> x) in
      if occupied <> [] then
        Format.fprintf fmt "row %2d: %a@," r
          (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " ")
             (fun f e -> Peer.pp f e.peer))
          occupied)
    t.table;
  Format.fprintf fmt "@]"
