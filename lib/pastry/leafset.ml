type t = {
  l : int;
  me : Peer.t;
  mutable left : Peer.t list; (* ascending ccw distance from me *)
  mutable right : Peer.t list; (* ascending cw distance from me *)
}

let create ~l ~me =
  if l < 2 || l mod 2 <> 0 then invalid_arg "Leafset.create: l must be even and >= 2";
  { l; me; left = []; right = [] }

let me t = t.me
let l t = t.l

let side_mem side id = List.exists (fun p -> Nodeid.equal p.Peer.id id) side

(* insert sorted by [dist], capped at [cap]; returns (side', changed) *)
let side_insert ~dist ~cap side peer =
  if side_mem side peer.Peer.id then (side, false)
  else begin
    let d = dist peer.Peer.id in
    let rec ins = function
      | [] -> [ peer ]
      | p :: rest ->
          if Nodeid.compare d (dist p.Peer.id) < 0 then peer :: p :: rest
          else p :: ins rest
    in
    let trimmed = Repro_util.Listx.take cap (ins side) in
    let changed = side_mem trimmed peer.Peer.id in
    (trimmed, changed)
  end

let add t peer =
  if Nodeid.equal peer.Peer.id t.me.Peer.id then false
  else begin
    let cap = t.l / 2 in
    let ccw id = Nodeid.cw_dist id t.me.Peer.id in
    let cw id = Nodeid.cw_dist t.me.Peer.id id in
    let left', c1 = side_insert ~dist:ccw ~cap t.left peer in
    let right', c2 = side_insert ~dist:cw ~cap t.right peer in
    t.left <- left';
    t.right <- right';
    c1 || c2
  end

let remove t id =
  let had = side_mem t.left id || side_mem t.right id in
  if had then begin
    t.left <- List.filter (fun p -> not (Nodeid.equal p.Peer.id id)) t.left;
    t.right <- List.filter (fun p -> not (Nodeid.equal p.Peer.id id)) t.right
  end;
  had

let mem t id = side_mem t.left id || side_mem t.right id

let members t =
  let right_ids = List.map (fun p -> p.Peer.id) t.right in
  t.right @ List.filter (fun p -> not (List.exists (Nodeid.equal p.Peer.id) right_ids)) t.left

let size t = List.length (members t)
let left_size t = List.length t.left
let right_size t = List.length t.right

let left_neighbor t = match t.left with [] -> None | p :: _ -> Some p
let right_neighbor t = match t.right with [] -> None | p :: _ -> Some p

let rec last = function [] -> None | [ x ] -> Some x | _ :: rest -> last rest

let leftmost t = last t.left
let rightmost t = last t.right

let wraps t =
  t.left <> [] && t.right <> []
  && List.exists (fun p -> side_mem t.right p.Peer.id) t.left

let complete t =
  let cap = t.l / 2 in
  (t.left = [] && t.right = [])
  || (List.length t.left = cap && List.length t.right = cap)
  || wraps t

let covers t k =
  if wraps t then true
  else
    match (leftmost t, rightmost t) with
    | None, None -> true
    | Some lm, Some rm -> Nodeid.in_cw_arc ~from:lm.Peer.id ~til:rm.Peer.id k
    | Some _, None | None, Some _ -> false

let closest t k =
  List.fold_left
    (fun best p -> if Nodeid.closer ~key:k p.Peer.id best.Peer.id then p else best)
    t.me (members t)

let closest_excluding t k ~excluded =
  let cands =
    t.me :: List.filter (fun p -> not (excluded p.Peer.id)) (members t)
  in
  match cands with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun best p -> if Nodeid.closer ~key:k p.Peer.id best.Peer.id then p else best)
           first rest)

let would_admit t id =
  if Nodeid.equal id t.me.Peer.id then false
  else if mem t id then false
  else begin
    let cap = t.l / 2 in
    let fits side dist =
      List.length side < cap
      ||
      match last side with
      | None -> true
      | Some far -> Nodeid.compare (dist id) (dist far.Peer.id) < 0
    in
    let ccw x = Nodeid.cw_dist x t.me.Peer.id in
    let cw x = Nodeid.cw_dist t.me.Peer.id x in
    fits t.left ccw || fits t.right cw
  end

let pp fmt t =
  Format.fprintf fmt "@[<h>[%a] <- %a -> [%a]@]"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " ") Peer.pp)
    (List.rev t.left) Peer.pp t.me
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " ") Peer.pp)
    t.right
