(** The Pastry next-hop function — Figure 2's [route_i], pure.

    Given the local node's leaf set and routing table, decide where a
    message addressed to a key goes next. The [excluded] predicate
    supports per-hop-ack rerouting: peers that failed to acknowledge are
    skipped without being declared faulty. *)

type decision =
  | Deliver  (** this node is the root (or no better hop exists) *)
  | Forward of Peer.t

(** Which of the three routing rules produced a decision — the per-hop
    "routing stage" recorded in lookup hop traces. *)
type rule =
  | Via_leafset  (** key covered by the leaf set *)
  | Via_table  (** routing-table entry matching one more digit *)
  | Via_closest  (** fallback over all known strictly-closer peers *)

val rule_name : rule -> string

val next_hop_explained :
  ?excluded:(Nodeid.t -> bool) ->
  leafset:Leafset.t ->
  table:Routing_table.t ->
  key:Nodeid.t ->
  unit ->
  decision * rule
(** As {!next_hop}, also naming the rule that made the decision. *)

val next_hop :
  ?excluded:(Nodeid.t -> bool) ->
  leafset:Leafset.t ->
  table:Routing_table.t ->
  key:Nodeid.t ->
  unit ->
  decision
(** Pastry's rule: if the key is covered by the leaf set, forward to the
    member closest to the key (deliver if that is the local node);
    otherwise use the routing-table entry matching one more digit; if that
    slot is empty or excluded, fall back to any known peer that is
    strictly closer to the key and shares at least as long a prefix
    (preferring longer prefixes, then proximity to the key). *)

val empty_slot_on_path :
  leafset:Leafset.t ->
  table:Routing_table.t ->
  key:Nodeid.t ->
  (int * int) option
(** If normal routing for [key] found its routing-table slot empty,
    return that (row, column) — the trigger for passive repair. *)
