type decision = Deliver | Forward of Peer.t
type rule = Via_leafset | Via_table | Via_closest

let rule_name = function
  | Via_leafset -> "leafset"
  | Via_table -> "table"
  | Via_closest -> "closest"

let no_exclusion _ = false

let next_hop_explained ?(excluded = no_exclusion) ~leafset ~table ~key () =
  let me = Leafset.me leafset in
  if Leafset.covers leafset key then
    ( (match Leafset.closest_excluding leafset key ~excluded with
      | None -> Deliver
      | Some p -> if Nodeid.equal p.Peer.id me.Peer.id then Deliver else Forward p),
      Via_leafset )
  else begin
    let b = Routing_table.b table in
    let r = Nodeid.shared_prefix_length ~b key me.Peer.id in
    let direct =
      match Routing_table.get table r (Nodeid.digit ~b key r) with
      | Some e when not (excluded e.Routing_table.peer.Peer.id) -> Some e.Routing_table.peer
      | Some _ | None -> None
    in
    match direct with
    | Some p -> (Forward p, Via_table)
    | None ->
        (* fallback: any peer strictly closer to the key sharing a prefix of
           length >= r; prefer longer shared prefixes, then ring proximity *)
        let candidates =
          Leafset.members leafset @ Routing_table.peers table
        in
        let my_dist = Nodeid.ring_dist me.Peer.id key in
        let better best p =
          if excluded p.Peer.id then best
          else begin
            let pl = Nodeid.shared_prefix_length ~b key p.Peer.id in
            let pd = Nodeid.ring_dist p.Peer.id key in
            if pl < r || Nodeid.compare pd my_dist >= 0 then best
            else
              match best with
              | None -> Some (pl, pd, p)
              | Some (bl, bd, _) ->
                  if pl > bl || (pl = bl && Nodeid.compare pd bd < 0) then Some (pl, pd, p)
                  else best
          end
        in
        match List.fold_left better None candidates with
        | Some (_, _, p) -> (Forward p, Via_closest)
        | None -> (Deliver, Via_closest)
  end

let next_hop ?excluded ~leafset ~table ~key () =
  fst (next_hop_explained ?excluded ~leafset ~table ~key ())

let empty_slot_on_path ~leafset ~table ~key =
  let me = Leafset.me leafset in
  if Leafset.covers leafset key || Nodeid.equal key me.Peer.id then None
  else begin
    let b = Routing_table.b table in
    let r = Nodeid.shared_prefix_length ~b key me.Peer.id in
    let c = Nodeid.digit ~b key r in
    match Routing_table.get table r c with None -> Some (r, c) | Some _ -> None
  end
