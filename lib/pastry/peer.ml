type t = { id : Nodeid.t; addr : int }

let make id addr = { id; addr }
let compare a b = Nodeid.compare a.id b.id
let equal a b = Nodeid.equal a.id b.id
let pp fmt t = Format.fprintf fmt "%a@%d" Nodeid.pp t.id t.addr
