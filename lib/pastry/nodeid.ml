type t = string

let size = 16
let bits = 128

let compare = String.compare
let equal = String.equal
let hash = Hashtbl.hash

let zero = String.make size '\000'
let max_value = String.make size '\255'

let of_string s =
  if String.length s <> size then invalid_arg "Nodeid.of_string: need 16 bytes";
  s

let to_raw t = t

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Nodeid.of_hex: bad hex digit"

let of_hex s =
  if String.length s <> 2 * size then invalid_arg "Nodeid.of_hex: need 32 hex chars";
  String.init size (fun i ->
      Char.chr ((hex_digit s.[2 * i] lsl 4) lor hex_digit s.[(2 * i) + 1]))

let to_hex t =
  String.concat ""
    (List.init size (fun i -> Printf.sprintf "%02x" (Char.code t.[i])))

let short t = String.sub (to_hex t) 0 8

let random rng = Repro_util.Rng.bytes rng size

let of_int i =
  if i < 0 then invalid_arg "Nodeid.of_int: negative";
  let b = Bytes.make size '\000' in
  let v = ref (Int64.of_int i) in
  for k = size - 1 downto size - 8 do
    Bytes.set b k (Char.chr (Int64.to_int (Int64.logand !v 0xFFL)));
    v := Int64.shift_right_logical !v 8
  done;
  Bytes.to_string b

let num_digits ~b =
  if b < 1 || b > 8 then invalid_arg "Nodeid.num_digits: b must be in 1..8";
  (bits + b - 1) / b

let bit t k = (Char.code t.[k / 8] lsr (7 - (k mod 8))) land 1

let digit ~b t i =
  let start = i * b in
  if start < 0 || start >= bits then invalid_arg "Nodeid.digit: index out of range";
  let len = min b (bits - start) in
  let v = ref 0 in
  for k = start to start + len - 1 do
    v := (!v lsl 1) lor bit t k
  done;
  !v

let shared_prefix_length ~b a c =
  let n = num_digits ~b in
  let rec go i =
    if i >= n then n
    else if digit ~b a i = digit ~b c i then go (i + 1)
    else i
  in
  go 0

let add a c =
  let r = Bytes.create size in
  let carry = ref 0 in
  for i = size - 1 downto 0 do
    let s = Char.code a.[i] + Char.code c.[i] + !carry in
    Bytes.set r i (Char.chr (s land 0xFF));
    carry := s lsr 8
  done;
  Bytes.to_string r

let sub a c =
  let r = Bytes.create size in
  let borrow = ref 0 in
  for i = size - 1 downto 0 do
    let d = Char.code a.[i] - Char.code c.[i] - !borrow in
    if d < 0 then begin
      Bytes.set r i (Char.chr (d + 256));
      borrow := 1
    end
    else begin
      Bytes.set r i (Char.chr d);
      borrow := 0
    end
  done;
  Bytes.to_string r

let cw_dist a c = sub c a

let ring_dist a c =
  let d1 = sub c a and d2 = sub a c in
  if String.compare d1 d2 <= 0 then d1 else d2

let in_cw_arc ~from ~til x = String.compare (cw_dist from x) (cw_dist from til) <= 0

let closer ~key a c =
  let da = ring_dist a key and dc = ring_dist c key in
  let cmp = String.compare da dc in
  if cmp <> 0 then cmp < 0 else String.compare a c < 0

let to_float t =
  let acc = ref 0.0 in
  for i = 0 to size - 1 do
    acc := (!acc *. 256.0) +. float_of_int (Char.code t.[i])
  done;
  !acc

let pp fmt t = Format.pp_print_string fmt (short t)
