(** Pastry routing table: [ceil(128/b)] rows × [2^b] columns.

    The entry at (row [r], column [c]) is a peer whose identifier shares
    the first [r] digits with the local node and has [c] as digit [r].
    Proximity-aware: each entry remembers the measured round-trip delay to
    the peer, and {!consider} only replaces an entry with a strictly
    closer one (proximity neighbour selection). *)

type t

type entry = { peer : Peer.t; rtt : float }

val create : b:int -> me:Nodeid.t -> t

val b : t -> int
val rows : t -> int
val cols : t -> int
val me : t -> Nodeid.t

val slot_of : t -> Nodeid.t -> (int * int) option
(** Row/column where this identifier belongs; [None] for the local id. *)

val get : t -> int -> int -> entry option
val find : t -> Nodeid.t -> entry option

val consider : t -> Peer.t -> rtt:float -> bool
(** PNS install: fill an empty slot, or replace a strictly more distant
    occupant. Returns [true] when the table changed. *)

val set : t -> Peer.t -> rtt:float -> bool
(** Unconditional install into the peer's slot (used when the previous
    occupant was evicted); still refuses to evict a closer occupant with
    the same identifier semantics as [consider] except occupancy by a
    different peer is overwritten. Returns [true] when the table changed. *)

val remove : t -> Nodeid.t -> bool
(** Evict the entry holding exactly this identifier. *)

val row_entries : t -> int -> entry list
(** Occupied entries of one row. *)

val entries : t -> entry list
(** All occupied entries. *)

val peers : t -> Peer.t list

val count : t -> int
(** Number of occupied slots. *)

val update_rtt : t -> Nodeid.t -> float -> unit
(** Refresh the proximity estimate of an existing entry. *)

val pp : Format.formatter -> t -> unit
