(** An overlay node as seen by another node: identifier + network address.

    Addresses are the small integers under which nodes register with the
    packet simulator (they stand in for IP address + port). *)

type t = { id : Nodeid.t; addr : int }

val make : Nodeid.t -> int -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
