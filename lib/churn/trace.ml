module Rng = Repro_util.Rng

type kind = Join | Leave

type event = { time : float; node : int; kind : kind }

type t = { name : string; events : event array; duration : float; n_nodes : int }

let name t = t.name
let events t = t.events
let duration t = t.duration
let n_nodes t = t.n_nodes

let sort_events evs =
  let a = Array.of_list evs in
  Array.sort
    (fun e1 e2 ->
      let c = compare e1.time e2.time in
      if c <> 0 then c
      else begin
        (* leaves before joins at equal times keeps population bounded *)
        let rank = function Leave -> 0 | Join -> 1 in
        let c = compare (rank e1.kind) (rank e2.kind) in
        if c <> 0 then c else compare e1.node e2.node
      end)
    a;
  a

let max_concurrent t =
  let cur = ref 0 and best = ref 0 in
  Array.iter
    (fun e ->
      (match e.kind with Join -> incr cur | Leave -> decr cur);
      if !cur > !best then best := !cur)
    t.events;
  !best

let mean_session t =
  let join_time = Hashtbl.create 256 in
  let acc = ref 0.0 and n = ref 0 in
  Array.iter
    (fun e ->
      match e.kind with
      | Join -> Hashtbl.replace join_time e.node e.time
      | Leave -> (
          match Hashtbl.find_opt join_time e.node with
          | Some jt ->
              acc := !acc +. (e.time -. jt);
              incr n
          | None -> ()))
    t.events;
  if !n = 0 then 0.0 else !acc /. float_of_int !n

(* Build a trace from (join_time, session_length) pairs. *)
let of_sessions ~name ~duration sessions =
  let evs = ref [] in
  let node = ref 0 in
  List.iter
    (fun (jt, session) ->
      if jt < duration then begin
        let id = !node in
        incr node;
        evs := { time = jt; node = id; kind = Join } :: !evs;
        let lt = jt +. session in
        if lt <= duration then evs := { time = lt; node = id; kind = Leave } :: !evs
      end)
    sessions;
  { name; events = sort_events !evs; duration; n_nodes = !node }

let poisson rng ~n_avg ~session_mean ~duration =
  if n_avg <= 0 || session_mean <= 0.0 || duration <= 0.0 then invalid_arg "Trace.poisson";
  let ramp = Float.min 600.0 (duration /. 10.0) in
  let sessions = ref [] in
  (* initial population staggered over the ramp *)
  for _ = 1 to n_avg do
    let jt = Rng.float rng ramp in
    (* residual lifetime of a stationary renewal process with exponential
       sessions is again exponential *)
    let s = Rng.exponential rng ~mean:session_mean in
    sessions := (jt, s) :: !sessions
  done;
  (* steady-state arrivals *)
  let rate = float_of_int n_avg /. session_mean in
  let t = ref ramp in
  let continue = ref true in
  while !continue do
    t := !t +. Rng.exponential rng ~mean:(1.0 /. rate);
    if !t >= duration then continue := false
    else sessions := (!t, Rng.exponential rng ~mean:session_mean) :: !sessions
  done;
  of_sessions ~name:(Printf.sprintf "poisson-%ds" (int_of_float session_mean)) ~duration
    !sessions

(* Lognormal parameters from a target median and mean:
   median = exp mu, mean = exp (mu + sigma^2/2). *)
let lognormal_params ~median ~mean =
  if mean <= median then invalid_arg "lognormal_params: mean must exceed median";
  let mu = log median in
  let sigma = sqrt (2.0 *. log (mean /. median)) in
  (mu, sigma)

type profile = {
  p_name : string;
  n_base : float;
  diurnal_amp : float;
  weekend_drop : float; (* fraction of population absent on weekends *)
  session_median : float;
  session_mean : float;
  p_duration : float;
}

(* Population-tracking synthetic churn. The target population follows a
   day/week pattern; arrivals are an inhomogeneous Poisson process whose
   rate both replaces departures and tracks the moving target, so the
   per-node failure rate shows the daily/weekly swings of Fig 3. *)
let synthetic rng profile ~scale ~duration =
  let day = 86_400.0 and relax = 1800.0 in
  let mu, sigma = lognormal_params ~median:profile.session_median ~mean:profile.session_mean in
  let sample_session () = Rng.lognormal rng ~mu ~sigma in
  let target t =
    let daily = 1.0 +. (profile.diurnal_amp *. sin (2.0 *. Float.pi *. t /. day)) in
    let dow = int_of_float (floor (t /. day)) mod 7 in
    let weekly = if dow = 5 || dow = 6 then 1.0 -. profile.weekend_drop else 1.0 in
    profile.n_base *. scale *. daily *. weekly
  in
  let dt = 10.0 in
  let sessions = ref [] in
  (* leave times of currently-active sessions, to track population *)
  let leaves = Repro_util.Heap.create ~leq:(fun a b -> a <= b) () in
  let population = ref 0 in
  let t = ref 0.0 in
  while !t < duration do
    (* expire sessions *)
    let rec expire () =
      match Repro_util.Heap.peek leaves with
      | Some lt when lt <= !t ->
          ignore (Repro_util.Heap.pop leaves);
          decr population;
          expire ()
      | Some _ | None -> ()
    in
    expire ();
    let p = float_of_int !population in
    let tracking = (target !t -. p) /. relax in
    let replacement = p /. profile.session_mean in
    let rate = Float.max 0.0 (tracking +. replacement) in
    let k = Rng.poisson rng ~mean:(rate *. dt) in
    for _ = 1 to k do
      let jt = !t +. Rng.float rng dt in
      let s = sample_session () in
      sessions := (jt, s) :: !sessions;
      Repro_util.Heap.push leaves (jt +. s);
      incr population
    done;
    t := !t +. dt
  done;
  of_sessions ~name:profile.p_name ~duration !sessions

let hours h = h *. 3600.0
let days d = d *. 86_400.0

let gnutella ?(scale = 1.0) ?duration rng =
  let duration = match duration with Some d -> d | None -> hours 60.0 in
  synthetic rng
    {
      p_name = "gnutella";
      n_base = 2000.0;
      diurnal_amp = 0.35;
      weekend_drop = 0.0;
      session_median = hours 1.0;
      session_mean = hours 2.3;
      p_duration = hours 60.0;
    }
    ~scale ~duration

let overnet ?(scale = 1.0) ?duration rng =
  let duration = match duration with Some d -> d | None -> days 7.0 in
  synthetic rng
    {
      p_name = "overnet";
      n_base = 455.0;
      diurnal_amp = 0.43;
      weekend_drop = 0.10;
      session_median = 79.0 *. 60.0;
      session_mean = 134.0 *. 60.0;
      p_duration = days 7.0;
    }
    ~scale ~duration

let microsoft ?(scale = 0.1) ?duration rng =
  let duration = match duration with Some d -> d | None -> days 37.0 in
  synthetic rng
    {
      p_name = "microsoft";
      n_base = 15150.0;
      diurnal_amp = 0.03;
      weekend_drop = 0.02;
      session_median = hours 30.0;
      session_mean = hours 37.7;
      p_duration = days 37.0;
    }
    ~scale ~duration

let failure_rate_series t ~window =
  let nw = int_of_float (ceil (t.duration /. window)) in
  if nw <= 0 then [||]
  else begin
    let departures = Array.make nw 0.0 in
    let pop_integral = Array.make nw 0.0 in
    (* integrate population over each window by sweeping events *)
    let cur = ref 0 in
    let last_t = ref 0.0 in
    let credit until =
      (* add population-time from !last_t to until *)
      let rec go t0 =
        if t0 < until then begin
          let w = int_of_float (floor (t0 /. window)) in
          let w = if w >= nw then nw - 1 else w in
          let wend = Float.min ((float_of_int w +. 1.0) *. window) until in
          pop_integral.(w) <- pop_integral.(w) +. (float_of_int !cur *. (wend -. t0));
          go wend
        end
      in
      go !last_t;
      last_t := until
    in
    Array.iter
      (fun e ->
        credit e.time;
        match e.kind with
        | Join -> incr cur
        | Leave ->
            decr cur;
            let w = int_of_float (floor (e.time /. window)) in
            let w = if w >= nw then nw - 1 else w in
            departures.(w) <- departures.(w) +. 1.0)
      t.events;
    credit t.duration;
    Array.init nw (fun w ->
        let mid = (float_of_int w +. 0.5) *. window in
        let rate =
          if pop_integral.(w) <= 0.0 then 0.0 else departures.(w) /. pop_integral.(w)
        in
        (mid, rate))
  end

let population_series t ~window =
  let nw = int_of_float (ceil (t.duration /. window)) in
  if nw <= 0 then [||]
  else begin
    let pop_integral = Array.make nw 0.0 in
    let cur = ref 0 in
    let last_t = ref 0.0 in
    let credit until =
      let rec go t0 =
        if t0 < until then begin
          let w = int_of_float (floor (t0 /. window)) in
          let w = if w >= nw then nw - 1 else w in
          let wend = Float.min ((float_of_int w +. 1.0) *. window) until in
          pop_integral.(w) <- pop_integral.(w) +. (float_of_int !cur *. (wend -. t0));
          go wend
        end
      in
      go !last_t;
      last_t := until
    in
    Array.iter
      (fun e ->
        credit e.time;
        match e.kind with Join -> incr cur | Leave -> decr cur)
      t.events;
    credit t.duration;
    Array.init nw (fun w ->
        ((float_of_int w +. 0.5) *. window, pop_integral.(w) /. window))
  end
