(** Churn traces: timed sequences of node arrivals and departures.

    Every session is a distinct node slot (a node that leaves and comes
    back counts as a fresh overlay node, as in the paper's traces). The
    real Gnutella / OverNet / Microsoft measurement traces are not
    available, so {!gnutella}, {!overnet} and {!microsoft} synthesise
    traces calibrated to the statistics the paper reports for each —
    session-time distribution (lognormal fitted to the published
    median/mean), population band, and daily/weekly failure-rate
    modulation. See DESIGN.md §2. *)

type kind = Join | Leave

type event = { time : float; node : int; kind : kind }

type t

val name : t -> string

val events : t -> event array
(** Time-sorted. Every node index joins at most once; its leave (if it
    falls within the trace duration) follows its join. *)

val duration : t -> float

val n_nodes : t -> int
(** Number of distinct node slots ( = number of sessions). *)

val max_concurrent : t -> int

val mean_session : t -> float
(** Mean of the session times that completed within the trace. *)

val poisson :
  Repro_util.Rng.t -> n_avg:int -> session_mean:float -> duration:float -> t
(** Steady-state churn: initial population joins staggered over a short
    ramp, then Poisson arrivals at rate [n_avg /. session_mean] with
    exponentially distributed session times (§5.1 "artificial traces"). *)

val gnutella : ?scale:float -> ?duration:float -> Repro_util.Rng.t -> t
(** Gnutella-like: 60 h, population band 1300–2700 with a daily swing,
    sessions lognormal with median 1 h / mean 2.3 h. [scale] multiplies
    the population (default 1.0; use e.g. 0.1 for quick runs). *)

val overnet : ?scale:float -> ?duration:float -> Repro_util.Rng.t -> t
(** OverNet-like: 7 days, 260–650 active, sessions median 79 min / mean
    134 min. *)

val microsoft : ?scale:float -> ?duration:float -> Repro_util.Rng.t -> t
(** Microsoft-corporate-like: 37 days, ~15k active (scaled by [scale],
    default 0.1 → ~1.5k), sessions mean 37.7 h; failure rate an order of
    magnitude below the open-Internet traces, with weekday/weekend
    pattern. *)

val failure_rate_series : t -> window:float -> (float * float) array
(** Fig 3: [(window mid-time, departures per active node per second)]. *)

val population_series : t -> window:float -> (float * float) array
(** [(window mid-time, mean active population)]. *)
