(* Generalized leaf-set repair after catastrophic failure (§3.1).

     dune exec examples/mass_failure.exe

   Half of a 60-node overlay — a contiguous arc of the ring, the worst
   case for leaf sets — is killed at the same instant. The survivors'
   leaf sets are rebuilt from routing-table state ("converges in
   O(log N) iterations even when a large fraction of overlay nodes fails
   simultaneously"), and routing returns to perfect consistency. *)

module Sim = Harness.Sim
module Live = Sim.Live
module Node = Mspastry.Node
module Nodeid = Pastry.Nodeid
module Rng = Repro_util.Rng

let ring_ok live =
  (* every survivor's right neighbour is its true ring successor *)
  let nodes = Live.active_nodes live in
  let ids =
    List.sort Nodeid.compare (List.map (fun n -> (Node.me n).Pastry.Peer.id) nodes)
  in
  let arr = Array.of_list ids in
  let n = Array.length arr in
  let succ_of id =
    let rec find i =
      if i >= n then arr.(0) else if Nodeid.compare arr.(i) id > 0 then arr.(i) else find (i + 1)
    in
    find 0
  in
  List.for_all
    (fun node ->
      match Pastry.Leafset.right_neighbor (Node.leafset node) with
      | Some rn -> Nodeid.equal rn.Pastry.Peer.id (succ_of (Node.me node).Pastry.Peer.id)
      | None -> false)
    nodes

let () =
  let config =
    { Sim.default_config with topology = Sim.Flat 0.02; lookup_rate = 0.0; warmup = 0.0 }
  in
  let live = Live.create config ~n_endpoints:64 in
  for i = 0 to 59 do
    Live.spawn_at live ~time:(float_of_int i *. 3.0) ()
  done;
  Live.run_until live 300.0;
  Printf.printf "overlay: %d nodes, ring consistent: %b\n%!" (Live.node_count live)
    (ring_ok live);

  (* kill a contiguous arc of 30 nodes at t=300 *)
  let nodes = Array.of_list (Live.active_nodes live) in
  Array.sort (fun a b -> Nodeid.compare (Node.me a).Pastry.Peer.id (Node.me b).Pastry.Peer.id) nodes;
  for i = 0 to 29 do
    Live.crash_node live nodes.(i)
  done;
  Printf.printf "killed a contiguous arc of 30 nodes at t=300\n%!";

  (* watch the ring heal *)
  let healed_at = ref None in
  let rec watch t =
    if t <= 600.0 then begin
      Live.run_until live t;
      let ok = ring_ok live in
      Printf.printf "  t=%3.0fs  ring consistent: %b\n%!" t ok;
      if ok && !healed_at = None then healed_at := Some t;
      if not ok then watch (t +. 30.0)
    end
  in
  watch 330.0;
  (match !healed_at with
  | Some t -> Printf.printf "ring fully repaired within %.0f s of the failure\n" (t -. 300.0)
  | None -> Printf.printf "ring not yet repaired by t=600\n");

  (* prove routing is consistent again *)
  let rng = Rng.create 3 in
  let survivors = Array.of_list (Live.active_nodes live) in
  for _ = 1 to 200 do
    let src = survivors.(Rng.int rng (Array.length survivors)) in
    ignore (Live.lookup live src ~key:(Nodeid.random rng))
  done;
  let horizon = Simkit.Engine.now (Live.engine live) +. 60.0 in
  Live.run_until live horizon;
  let s =
    Overlay_metrics.Collector.summary ~until:horizon ~drain:0.0 (Live.collector live)
  in
  Printf.printf "post-repair lookups: %d sent, %d lost, %d misrouted\n"
    s.Overlay_metrics.Collector.lookups_sent s.Overlay_metrics.Collector.lookups_lost
    s.Overlay_metrics.Collector.incorrect_deliveries
