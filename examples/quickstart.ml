(* Quickstart: build a 50-node MSPastry overlay inside the packet-level
   simulator, route some lookups, and inspect the routing state.

     dune exec examples/quickstart.exe

   The public API in play:
   - [Harness.Sim.Live] wires the simulator, topology and metrics;
   - [Live.spawn_at] creates overlay nodes (the first bootstraps, the
     rest join through a random live node);
   - [Live.lookup] routes an application message to a key;
   - [Mspastry.Node] exposes each node's leaf set and routing table. *)

module Sim = Harness.Sim
module Live = Sim.Live
module Node = Mspastry.Node
module Nodeid = Pastry.Nodeid

let () =
  (* a scaled GATech-style transit-stub network, no link loss *)
  let config =
    { Sim.default_config with topology = Sim.Gatech; lookup_rate = 0.0; warmup = 0.0 }
  in
  let live = Live.create config ~n_endpoints:64 in

  (* 50 nodes join over ~4 simulated minutes *)
  for i = 0 to 49 do
    Live.spawn_at live ~time:(float_of_int i *. 5.0) ()
  done;
  Live.run_until live 400.0;
  Printf.printf "overlay formed: %d active nodes (%d join failures)\n"
    (Live.node_count live) (Live.join_failures live);

  (* route 100 lookups to random keys from random nodes *)
  let nodes = Array.of_list (Live.active_nodes live) in
  let rng = Repro_util.Rng.create 2024 in
  for _ = 1 to 100 do
    let src = nodes.(Repro_util.Rng.int rng (Array.length nodes)) in
    ignore (Live.lookup live src ~key:(Nodeid.random rng))
  done;
  Live.run_until live 430.0;

  let s =
    Overlay_metrics.Collector.summary ~until:430.0 ~drain:0.0 (Live.collector live)
  in
  Printf.printf "lookups: %d sent, %d delivered, %d lost, %d misrouted\n"
    s.Overlay_metrics.Collector.lookups_sent s.Overlay_metrics.Collector.lookups_delivered
    s.Overlay_metrics.Collector.lookups_lost
    s.Overlay_metrics.Collector.incorrect_deliveries;
  Printf.printf "mean route: %.2f overlay hops, relative delay penalty %.2f\n"
    s.Overlay_metrics.Collector.hops_mean s.Overlay_metrics.Collector.rdp_mean;

  (* peek inside one node *)
  let node = nodes.(0) in
  let me = Node.me node in
  Printf.printf "\nnode %s (address %d):\n" (Nodeid.short me.Pastry.Peer.id)
    me.Pastry.Peer.addr;
  Printf.printf "  leaf set: %d members (complete: %b)\n"
    (Pastry.Leafset.size (Node.leafset node))
    (Pastry.Leafset.complete (Node.leafset node));
  Printf.printf "  routing table: %d entries across %d rows\n"
    (Pastry.Routing_table.count (Node.table node))
    (Pastry.Routing_table.rows (Node.table node));
  Printf.printf "  estimated overlay size: %.0f nodes (true: %d)\n"
    (Node.estimated_n node) (Live.node_count live)
