(* Squirrel: a co-operative web cache as an MSPastry application.

     dune exec examples/squirrel_cache.exe

   Twenty desktop machines pool their browser caches: each URL's key
   (hash of the URL) has a home node — the key's root in the overlay —
   which stores the object. Requests are overlay lookups; a miss costs an
   origin-server fetch, a hit is served from the home node directly. This
   is the application the paper used to validate its simulator (Fig 8). *)

module Sim = Harness.Sim
module Live = Sim.Live
module Cache = Squirrel.Cache

let () =
  let config =
    {
      Sim.default_config with
      topology = Sim.Corpnet;
      lookup_rate = 0.0 (* Squirrel drives all the traffic *);
      warmup = 0.0;
      seed = 11;
    }
  in
  let live = Live.create config ~n_endpoints:20 in
  let cache = Cache.create ~origin_delay:0.15 ~live () in

  for i = 0 to 19 do
    Live.spawn_at live ~time:(float_of_int i *. 5.0) ()
  done;
  Live.run_until live 200.0;
  let clients = Array.of_list (Live.active_nodes live) in
  Printf.printf "corporate overlay up: %d proxies\n" (Array.length clients);

  (* an hour of browsing: Zipf-popular pages, shared across users *)
  let rng = Repro_util.Rng.create 3 in
  let wl =
    Squirrel.Workload.generate ~rng ~n_clients:(Array.length clients) ~duration:3600.0
      ~peak_rate:0.1 ~n_objects:500 ()
  in
  Printf.printf "replaying %d web requests over one hour...\n%!"
    (Squirrel.Workload.n_requests wl);
  Array.iter
    (fun (req : Squirrel.Workload.request) ->
      ignore
        (Simkit.Engine.schedule_at (Live.engine live) ~time:(200.0 +. req.Squirrel.Workload.time)
           (fun () ->
             let c = clients.(req.Squirrel.Workload.client mod Array.length clients) in
             if Mspastry.Node.is_alive c then
               Cache.request cache ~client:c ~url:req.Squirrel.Workload.url)))
    (Squirrel.Workload.requests wl);
  Live.run_until live 3900.0;

  let s = Cache.stats cache in
  let hit_rate =
    if s.Cache.responses = 0 then 0.0
    else float_of_int s.Cache.hits /. float_of_int s.Cache.responses
  in
  Printf.printf "\nresults:\n";
  Printf.printf "  requests        %d\n" s.Cache.requests;
  Printf.printf "  hits            %d (%.0f%% hit rate)\n" s.Cache.hits (100.0 *. hit_rate);
  Printf.printf "  origin fetches  %d\n" s.Cache.misses;
  Printf.printf "  failed          %d\n" s.Cache.failed;
  Printf.printf "  mean latency    %.0f ms\n" (s.Cache.mean_latency *. 1000.0);
  Printf.printf "  objects cached  %d across the fleet\n" s.Cache.cached_objects
