(* Self-tuning demo: watch MSPastry adapt its probing period to churn.

     dune exec examples/selftuning_demo.exe

   Every node solves the §4.1 raw-loss-rate equation from its own
   estimates of the overlay size (leaf-set density) and failure rate
   (failure history), and the network settles on the median. Low churn
   should drive the routing-table probing period Trt up (probes are a
   waste); violent churn should drive it down toward the floor. *)

module Sim = Harness.Sim
module Live = Sim.Live
module Node = Mspastry.Node
module Trace = Churn.Trace

let run_with ~label ~session_mean =
  let trace =
    Trace.poisson (Repro_util.Rng.create 21) ~n_avg:100 ~session_mean ~duration:5400.0
  in
  let config = { Sim.default_config with topology = Sim.Flat 0.02; seed = 21 } in
  let live = Live.create config ~n_endpoints:256 in
  let by_node = Hashtbl.create 256 in
  Array.iter
    (fun ev ->
      let time = ev.Trace.time in
      match ev.Trace.kind with
      | Trace.Join ->
          ignore
            (Simkit.Engine.schedule_at (Live.engine live) ~time (fun () ->
                 Hashtbl.replace by_node ev.Trace.node (Live.spawn live ())))
      | Trace.Leave ->
          ignore
            (Simkit.Engine.schedule_at (Live.engine live) ~time (fun () ->
                 match Hashtbl.find_opt by_node ev.Trace.node with
                 | Some node -> Live.crash_node live node
                 | None -> ())))
    (Trace.events trace);
  Live.run_until live 5400.0;
  let nodes = Live.active_nodes live in
  let avg f = List.fold_left (fun a n -> a +. f n) 0.0 nodes /. float_of_int (List.length nodes) in
  let true_mu = 1.0 /. session_mean in
  Printf.printf "%-28s nodes=%3d  true-mu=%.1e  est-mu=%.1e  est-N=%4.0f  Trt=%5.0fs\n%!"
    label (List.length nodes) true_mu (avg Node.estimated_mu) (avg Node.estimated_n)
    (avg Node.current_trt)

let () =
  Printf.printf "self-tuned routing-table probing period vs churn rate\n";
  Printf.printf "(target raw loss rate: %.0f%%)\n\n"
    (100.0 *. Mspastry.Config.default.Mspastry.Config.lr_target);
  run_with ~label:"frantic churn (10 min)" ~session_mean:600.0;
  run_with ~label:"heavy churn (30 min)" ~session_mean:1800.0;
  run_with ~label:"Gnutella-like (2.3 h)" ~session_mean:8280.0;
  run_with ~label:"corporate-like (12 h)" ~session_mean:43200.0;
  Printf.printf
    "\nshorter sessions -> higher failure rate -> shorter probing period;\n\
     calm networks relax toward the %.0f s cap, saving bandwidth.\n"
    Mspastry.Config.default.Mspastry.Config.t_rt_max
