(* Churn survival: the paper's headline scenario.

     dune exec examples/churn_survival.exe

   Replays two hours of Gnutella-like churn (continuous joins and
   crashes, lognormal session times, ~150 concurrent nodes) against the
   full MSPastry stack and reports the dependability metrics of §5.2.
   With the paper's techniques enabled the overlay keeps routing: zero
   inconsistent deliveries and a vanishing loss rate, at well under half
   a control message per second per node. *)

module Sim = Harness.Sim
module Trace = Churn.Trace
module Collector = Overlay_metrics.Collector

let () =
  let rng = Repro_util.Rng.create 7 in
  let trace = Trace.gnutella ~scale:0.08 ~duration:(2.0 *. 3600.0) rng in
  Printf.printf "churn trace: %d sessions, up to %d concurrent nodes\n"
    (Trace.n_nodes trace) (Trace.max_concurrent trace);
  Printf.printf "             mean session %.0f min (lognormal, Gnutella-like)\n"
    (Trace.mean_session trace /. 60.0);

  let config =
    { Sim.default_config with topology = Sim.Gatech; warmup = 1800.0; seed = 7 }
  in
  Printf.printf "running 2 simulated hours of churn...\n%!";
  let r = Sim.run config ~trace in
  let s = r.Sim.summary in

  Printf.printf "\ndependability (measured after 30 min warmup):\n";
  Printf.printf "  lookups sent          %d\n" s.Collector.lookups_sent;
  Printf.printf "  lookup loss rate      %.2e\n" s.Collector.loss_rate;
  Printf.printf "  incorrect deliveries  %d (rate %.2e)\n" s.Collector.incorrect_deliveries
    s.Collector.incorrect_rate;
  Printf.printf "\nperformance:\n";
  Printf.printf "  relative delay penalty  %.2f\n" s.Collector.rdp_mean;
  Printf.printf "  mean overlay hops       %.2f\n" s.Collector.hops_mean;
  Printf.printf "  control traffic         %.3f msg/s/node\n"
    s.Collector.control_per_node_per_s;
  List.iter
    (fun (c, v) ->
      Printf.printf "    %-18s %.4f\n" (Mspastry.Message.class_name c) v)
    s.Collector.control_by_class;
  Printf.printf "\njoins: %d completed (mean latency %.1f s), %d failed\n"
    s.Collector.joins s.Collector.join_latency_mean r.Sim.join_failures
