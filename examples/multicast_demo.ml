(* Scribe multicast under churn: why the paper's §3.1 cares about
   routing consistency for multicast systems.

     dune exec examples/multicast_demo.exe

   Forty nodes form an overlay; half subscribe to a group. Multicasts
   are published once a second while random nodes crash and fresh nodes
   join. Soft-state subscription refreshes let the tree heal, so the
   delivery ratio stays near one even as the rendezvous node itself
   dies. *)

module Sim = Harness.Sim
module Live = Sim.Live
module Node = Mspastry.Node
module Rng = Repro_util.Rng

let () =
  let config =
    {
      Sim.default_config with
      topology = Sim.Flat 0.02;
      lookup_rate = 0.0;
      warmup = 0.0;
      seed = 17;
    }
  in
  let live = Live.create config ~n_endpoints:128 in
  for i = 0 to 39 do
    Live.spawn_at live ~time:(float_of_int i *. 3.0) ()
  done;
  Live.run_until live 240.0;

  let scribe = Scribe.create ~refresh_period:30.0 ~live () in
  let group = Scribe.group_of_name "newsfeed" in
  let nodes = Array.of_list (Live.active_nodes live) in
  Array.iteri (fun i n -> if i mod 2 = 0 then Scribe.subscribe scribe ~member:n group) nodes;
  Live.run_until live 260.0;
  Printf.printf "group formed: %d members out of %d nodes\n%!"
    (Scribe.members scribe group) (Array.length nodes);

  (* churn: one crash and one join every ~20 s; publish every second *)
  let rng = Rng.create 5 in
  let published = ref [] in
  let rec publish t =
    if t < 560.0 then begin
      ignore
        (Simkit.Engine.schedule_at (Live.engine live) ~time:t (fun () ->
             let alive = Array.of_list (Live.active_nodes live) in
             if Array.length alive > 0 then begin
               let from = alive.(Rng.int rng (Array.length alive)) in
               let id = Scribe.multicast scribe ~from group in
               published := (t, id, Scribe.members scribe group) :: !published
             end));
      publish (t +. 1.0)
    end
  in
  publish 300.0;
  for k = 0 to 11 do
    let t = 300.0 +. (float_of_int k *. 20.0) in
    ignore
      (Simkit.Engine.schedule_at (Live.engine live) ~time:t (fun () ->
           let alive = Array.of_list (Live.active_nodes live) in
           if Array.length alive > 5 then
             Live.crash_node live alive.(Rng.int rng (Array.length alive))));
    Live.spawn_at live ~time:(t +. 10.0) ()
  done;
  Live.run_until live 600.0;

  (* score each multicast against the membership at publish time *)
  let total = ref 0 and reached = ref 0 and perfect = ref 0 in
  List.iter
    (fun (_, id, members_then) ->
      let got = Scribe.delivered scribe group id in
      incr total;
      reached := !reached + got;
      if got >= members_then - 1 then incr perfect)
    !published;
  let s = Scribe.stats scribe in
  Printf.printf "published %d multicasts during churn (12 crashes, 12 joins)\n" !total;
  Printf.printf "  deliveries: %d (%.1f members reached on average)\n"
    s.Scribe.deliveries
    (float_of_int !reached /. float_of_int (max 1 !total));
  Printf.printf "  multicasts reaching (almost) everyone: %d / %d\n" !perfect !total;
  Printf.printf "  tree dissemination messages: %d\n" s.Scribe.tree_messages
