(* PAST-style replicated storage: durability through churn.

     dune exec examples/kv_store_demo.exe

   A hundred objects are inserted with 3-way replication into a 30-node
   overlay, then a third of the nodes crash over five minutes while the
   re-replication sweep and lazy root recovery keep the objects alive.
   Every object is still retrievable afterwards. *)

module Sim = Harness.Sim
module Live = Sim.Live
module Past = Past_store.Past
module Rng = Repro_util.Rng

let () =
  let config =
    {
      Sim.default_config with
      topology = Sim.Gatech;
      lookup_rate = 0.0;
      warmup = 0.0;
      seed = 23;
    }
  in
  let live = Live.create config ~n_endpoints:64 in
  for i = 0 to 29 do
    Live.spawn_at live ~time:(float_of_int i *. 4.0) ()
  done;
  Live.run_until live 240.0;
  let store = Past.create ~replicas:3 ~refresh_period:60.0 ~live () in
  let nodes = Array.of_list (Live.active_nodes live) in
  Printf.printf "overlay: %d nodes; inserting 100 objects (3 replicas each)\n%!"
    (Array.length nodes);

  let rng = Rng.create 9 in
  for i = 0 to 99 do
    Past.put store
      ~client:nodes.(Rng.int rng (Array.length nodes))
      ~key:(Printf.sprintf "doc-%03d" i)
      ~value:(Printf.sprintf "contents of document %d" i)
  done;
  Live.run_until live 260.0;
  let s = Past.stats store in
  Printf.printf "stored: %d objects acknowledged, %d replicas resident\n%!"
    s.Past.put_acks s.Past.stored_objects;

  (* kill 10 of the 30 nodes, two per minute *)
  for k = 0 to 9 do
    ignore
      (Simkit.Engine.schedule_at (Live.engine live)
         ~time:(300.0 +. (float_of_int k *. 30.0))
         (fun () ->
           let alive = Array.of_list (Live.active_nodes live) in
           if Array.length alive > 5 then
             Live.crash_node live alive.(Rng.int rng (Array.length alive))))
  done;
  Live.run_until live 700.0;
  Printf.printf "after churn: %d nodes left, %d replicas resident\n%!"
    (List.length (Live.active_nodes live))
    (Past.stats store).Past.stored_objects;

  (* read everything back *)
  let survivors = Array.of_list (Live.active_nodes live) in
  for i = 0 to 99 do
    Past.get store
      ~client:survivors.(Rng.int rng (Array.length survivors))
      ~key:(Printf.sprintf "doc-%03d" i)
  done;
  Live.run_until live 760.0;
  let s = Past.stats store in
  Printf.printf "retrieval after losing a third of the overlay:\n";
  Printf.printf "  hits      %d / 100\n" s.Past.get_hits;
  Printf.printf "  misses    %d\n" s.Past.get_misses;
  Printf.printf "  timeouts  %d\n" s.Past.get_timeouts;
  Printf.printf "  lazy root recoveries: %d\n" s.Past.repair_pulls
