(* CLI for regenerating the paper's tables and figures.

   Usage: experiments [EXPERIMENT] [--size quick|medium|full] [--seed N]
   where EXPERIMENT is one of fig3 fig4 fig5 fig6 fig7 fig8 topology
   ablation selftuning suppression structure massive-failure bursty-loss
   all. *)

open Cmdliner
module E = Repro_experiments.Experiments

let runners =
  [
    ("fig3", E.fig3);
    ("fig4", E.fig4);
    ("fig5", E.fig5);
    ("fig6", E.fig6);
    ("fig7", E.fig7);
    ("fig8", E.fig8);
    ("topology", E.topology_table);
    ("ablation", E.ablation);
    ("selftuning", E.selftuning);
    ("suppression", E.suppression);
    ("structure", E.structure_ablation);
    ("apps", E.apps);
    ("consistency", E.consistency);
    ("massive-failure", E.massive_failure);
    ("bursty-loss", E.bursty_loss);
    ("fail-slow", E.fail_slow);
    ("bursty-retries", E.bursty_retries);
    ("congestion", E.congestion);
    ("flash-crowd", E.flash_crowd);
    ("congestion-smoke", E.congestion_smoke);
    ("smoke", E.smoke);
    ("all", E.all);
  ]

let experiment =
  let doc = "Experiment to run: " ^ String.concat ", " (List.map fst runners) in
  Arg.(value & pos 0 string "all" & info [] ~docv:"EXPERIMENT" ~doc)

let size =
  let parse s =
    match E.size_of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown size %S (quick|medium|full)" s))
  in
  let size_conv = Arg.conv (parse, E.pp_size) in
  Arg.(
    value & opt size_conv E.Quick & info [ "size" ] ~docv:"SIZE" ~doc:"quick, medium or full")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"master RNG seed")

let profile =
  let doc =
    "Enable the wall-clock profiler and print its phase breakdown after \
     the experiment (see DESIGN.md \u{00A7}9)."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let manifest =
  let doc =
    "Write a run manifest (JSON) to $(docv) when each run closes. \
     Experiments that execute several runs overwrite it, so the file \
     holds the last run's manifest. Inspect with $(b,statsdump)."
  in
  Arg.(value & opt (some string) None & info [ "manifest" ] ~docv:"PATH" ~doc)

let run name size seed profile manifest =
  match List.assoc_opt name runners with
  | Some f ->
      E.set_manifest_out manifest;
      if profile then begin
        Repro_obs.Profile.reset ();
        Repro_obs.Profile.set_enabled true
      end;
      f ~size ~seed ();
      if profile then begin
        Repro_obs.Profile.set_enabled false;
        Repro_obs.Profile.pp_report Format.std_formatter
          (Repro_obs.Profile.report ());
        Format.pp_print_flush Format.std_formatter ()
      end;
      `Ok ()
  | None ->
      `Error
        ( false,
          Printf.sprintf "unknown experiment %S; try one of: %s" name
            (String.concat ", " (List.map fst runners)) )

let cmd =
  let doc = "Regenerate the MSPastry paper's tables and figures" in
  let info = Cmd.info "experiments" ~doc in
  Cmd.v info Term.(ret (const run $ experiment $ size $ seed $ profile $ manifest))

let () = exit (Cmd.eval cmd)
