(* Inspect the synthetic churn traces: population band, session
   statistics, failure-rate summary.

     dune exec bin/traceinfo.exe -- gnutella --scale 0.1 --hours 12

   With --events PATH it instead summarises a JSONL event trace written
   by the simulator (see DESIGN.md "Structured event tracing" for the
   schema): per-kind counts, time span, and the failure-detector /
   end-to-end-retry digest. *)

open Cmdliner
module Trace = Churn.Trace
module Rng = Repro_util.Rng
module Obs = Repro_obs

let describe name trace window =
  Printf.printf "trace: %s\n" (Trace.name trace);
  Printf.printf "  duration        %.1f h\n" (Trace.duration trace /. 3600.0);
  Printf.printf "  sessions        %d\n" (Trace.n_nodes trace);
  Printf.printf "  max concurrent  %d\n" (Trace.max_concurrent trace);
  Printf.printf "  mean session    %.1f min (completed sessions only)\n"
    (Trace.mean_session trace /. 60.0);
  let pop = Trace.population_series trace ~window in
  if Array.length pop > 2 then begin
    let tail = Array.sub pop 1 (Array.length pop - 2) in
    let values = Array.map snd tail in
    Printf.printf "  population      %.0f mean (min %.0f, max %.0f)\n"
      (Repro_util.Stats.mean values)
      (Array.fold_left Float.min infinity values)
      (Array.fold_left Float.max 0.0 values)
  end;
  let rates = Trace.failure_rate_series trace ~window in
  if Array.length rates > 2 then begin
    let tail = Array.sub rates 1 (Array.length rates - 2) in
    let values = Array.map snd tail in
    Printf.printf "  failure rate    %.2e mean per node per second (max %.2e)\n"
      (Repro_util.Stats.mean values)
      (Array.fold_left Float.max 0.0 values)
  end;
  ignore name

let describe_events path =
  let ic =
    try Ok (open_in path) with Sys_error e -> Error (Printf.sprintf "cannot open %s" e)
  in
  match ic with
  | Error e -> `Error (false, e)
  | Ok ic ->
      let kinds = Hashtbl.create 16 in
      let bump tbl k =
        match Hashtbl.find_opt tbl k with
        | Some r -> incr r
        | None -> Hashtbl.add tbl k (ref 1)
      in
      let total = ref 0 and bad = ref 0 in
      let t_min = ref infinity and t_max = ref neg_infinity in
      let suspected = ref 0 and unsuspected = ref 0 and retries = ref 0 in
      let max_backoff = ref 0.0 and max_attempt = ref 0 in
      let n_queue = ref 0 and q_sum = ref 0.0 and q_max = ref 0.0 in
      let occ_max = ref 0 and congestion_drops = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match Result.bind (Obs.Json.of_string line) Obs.Event.of_json with
             | Error _ -> incr bad
             | Ok ev ->
                 incr total;
                 t_min := Float.min !t_min ev.Obs.Event.time;
                 t_max := Float.max !t_max ev.Obs.Event.time;
                 bump kinds (Obs.Event.kind_name ev);
                 (match ev.Obs.Event.body with
                 | Obs.Event.Suspected { backoff; _ } ->
                     incr suspected;
                     max_backoff := Float.max !max_backoff backoff
                 | Obs.Event.Unsuspected _ -> incr unsuspected
                 | Obs.Event.Lookup_retry { attempt; _ } ->
                     incr retries;
                     max_attempt := max !max_attempt attempt
                 | Obs.Event.Queue { delay; occ; _ } ->
                     incr n_queue;
                     q_sum := !q_sum +. delay;
                     q_max := Float.max !q_max delay;
                     occ_max := max !occ_max occ
                 | Obs.Event.Drop { reason = Obs.Event.Congested; _ } ->
                     incr congestion_drops
                 | _ -> ())
         done
       with End_of_file -> ());
      close_in ic;
      Printf.printf "events: %s\n" path;
      Printf.printf "  parsed          %d (%d unparseable lines)\n" !total !bad;
      if !total > 0 then
        Printf.printf "  time span       %.3f .. %.3f s\n" !t_min !t_max;
      Printf.printf "  by kind:\n";
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) kinds []
      |> List.sort (fun (_, a) (_, b) -> compare (b : int) a)
      |> List.iter (fun (k, n) -> Printf.printf "    %-16s %d\n" k n);
      if !suspected > 0 || !retries > 0 then begin
        Printf.printf "  detector        %d suspicions (%d cleared), max backoff %.0fs\n"
          !suspected !unsuspected !max_backoff;
        Printf.printf "  e2e retries     %d (deepest attempt %d)\n" !retries !max_attempt
      end;
      if !n_queue > 0 || !congestion_drops > 0 then
        Printf.printf
          "  queueing        %d enqueues, mean delay %.4fs (max %.4f), peak \
           occupancy %d, %d congestion drops\n"
          !n_queue
          (if !n_queue = 0 then 0.0 else !q_sum /. float_of_int !n_queue)
          !q_max !occ_max !congestion_drops;
      `Ok ()

let run name scale hours seed events =
  match events with
  | Some path -> describe_events path
  | None ->
  let rng = Rng.create seed in
  let duration = Option.map (fun h -> h *. 3600.0) hours in
  let window = 600.0 in
  match name with
  | "gnutella" -> `Ok (describe name (Trace.gnutella ~scale ?duration rng) window)
  | "overnet" -> `Ok (describe name (Trace.overnet ~scale ?duration rng) window)
  | "microsoft" -> `Ok (describe name (Trace.microsoft ~scale ?duration rng) 3600.0)
  | "poisson" ->
      let d = Option.value duration ~default:7200.0 in
      `Ok
        (describe name
           (Trace.poisson rng ~n_avg:(int_of_float (1000.0 *. scale)) ~session_mean:3600.0
              ~duration:d)
           window)
  | other -> `Error (false, Printf.sprintf "unknown trace %S" other)

let trace_arg =
  Arg.(value & pos 0 string "gnutella"
       & info [] ~docv:"TRACE" ~doc:"gnutella, overnet, microsoft or poisson")

let scale =
  Arg.(value & opt float 0.1 & info [ "scale" ] ~docv:"S" ~doc:"population scale factor")

let hours =
  Arg.(value & opt (some float) None & info [ "hours" ] ~docv:"H" ~doc:"trace duration")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed")

let events =
  Arg.(value & opt (some string) None
       & info [ "events" ] ~docv:"PATH"
           ~doc:"summarise a JSONL event trace instead of a churn trace")

let cmd =
  let info =
    Cmd.info "traceinfo" ~doc:"Describe a synthetic churn trace or a JSONL event trace"
  in
  Cmd.v info Term.(ret (const run $ trace_arg $ scale $ hours $ seed $ events))

let () = exit (Cmd.eval cmd)
