(* Inspect the synthetic churn traces: population band, session
   statistics, failure-rate summary.

     dune exec bin/traceinfo.exe -- gnutella --scale 0.1 --hours 12 *)

open Cmdliner
module Trace = Churn.Trace
module Rng = Repro_util.Rng

let describe name trace window =
  Printf.printf "trace: %s\n" (Trace.name trace);
  Printf.printf "  duration        %.1f h\n" (Trace.duration trace /. 3600.0);
  Printf.printf "  sessions        %d\n" (Trace.n_nodes trace);
  Printf.printf "  max concurrent  %d\n" (Trace.max_concurrent trace);
  Printf.printf "  mean session    %.1f min (completed sessions only)\n"
    (Trace.mean_session trace /. 60.0);
  let pop = Trace.population_series trace ~window in
  if Array.length pop > 2 then begin
    let tail = Array.sub pop 1 (Array.length pop - 2) in
    let values = Array.map snd tail in
    Printf.printf "  population      %.0f mean (min %.0f, max %.0f)\n"
      (Repro_util.Stats.mean values)
      (Array.fold_left Float.min infinity values)
      (Array.fold_left Float.max 0.0 values)
  end;
  let rates = Trace.failure_rate_series trace ~window in
  if Array.length rates > 2 then begin
    let tail = Array.sub rates 1 (Array.length rates - 2) in
    let values = Array.map snd tail in
    Printf.printf "  failure rate    %.2e mean per node per second (max %.2e)\n"
      (Repro_util.Stats.mean values)
      (Array.fold_left Float.max 0.0 values)
  end;
  ignore name

let run name scale hours seed =
  let rng = Rng.create seed in
  let duration = Option.map (fun h -> h *. 3600.0) hours in
  let window = 600.0 in
  match name with
  | "gnutella" -> `Ok (describe name (Trace.gnutella ~scale ?duration rng) window)
  | "overnet" -> `Ok (describe name (Trace.overnet ~scale ?duration rng) window)
  | "microsoft" -> `Ok (describe name (Trace.microsoft ~scale ?duration rng) 3600.0)
  | "poisson" ->
      let d = Option.value duration ~default:7200.0 in
      `Ok
        (describe name
           (Trace.poisson rng ~n_avg:(int_of_float (1000.0 *. scale)) ~session_mean:3600.0
              ~duration:d)
           window)
  | other -> `Error (false, Printf.sprintf "unknown trace %S" other)

let trace_arg =
  Arg.(value & pos 0 string "gnutella"
       & info [] ~docv:"TRACE" ~doc:"gnutella, overnet, microsoft or poisson")

let scale =
  Arg.(value & opt float 0.1 & info [ "scale" ] ~docv:"S" ~doc:"population scale factor")

let hours =
  Arg.(value & opt (some float) None & info [ "hours" ] ~docv:"H" ~doc:"trace duration")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed")

let cmd =
  let info = Cmd.info "traceinfo" ~doc:"Describe a synthetic churn trace" in
  Cmd.v info Term.(ret (const run $ trace_arg $ scale $ hours $ seed))

let () = exit (Cmd.eval cmd)
