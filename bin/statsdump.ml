(* Pretty-print, diff and gate on the JSON artefacts the simulator
   writes: run manifests (DESIGN.md §9, written by Sim on close or via
   `experiments --manifest`) and bench reports (`bench/main.exe micro
   --json`).

     statsdump run.json                pretty-print one document
     statsdump old.json new.json       diff: numeric leaves side by side
     statsdump --bench OLD NEW         compare micro ns/op maps and exit
                                       1 on any regression beyond
                                       --threshold (the CI perf gate) *)

open Cmdliner
module Json = Repro_obs.Json

let read_json path =
  try
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    match Json.of_string s with
    | Ok j -> Ok j
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
  with Sys_error e -> Error e

(* Flatten to dotted-path leaves — the shared basis for printing and
   diffing. List elements become [path[i]]. *)
let flatten j =
  let out = ref [] in
  let rec go path = function
    | Json.Obj kvs ->
        List.iter
          (fun (k, v) -> go (if path = "" then k else path ^ "." ^ k) v)
          kvs
    | Json.List items ->
        List.iteri (fun i v -> go (Printf.sprintf "%s[%d]" path i) v) items
    | leaf -> out := (path, leaf) :: !out
  in
  go "" j;
  List.rev !out

let leaf_to_string = function
  | Json.Null -> "null"
  | Json.Bool b -> string_of_bool b
  | Json.Int i -> string_of_int i
  | Json.Float f -> Printf.sprintf "%.6g" f
  | Json.String s -> s
  | Json.List _ | Json.Obj _ -> "<nested>"

let print_one j =
  List.iter
    (fun (path, v) -> Printf.printf "%-52s %s\n" path (leaf_to_string v))
    (flatten j)

let diff old_j new_j =
  let old_leaves = flatten old_j and new_leaves = flatten new_j in
  let changed = ref 0 in
  Printf.printf "%-52s %14s %14s %12s\n" "path" "old" "new" "delta";
  List.iter
    (fun (path, nv) ->
      match List.assoc_opt path old_leaves with
      | None ->
          incr changed;
          Printf.printf "%-52s %14s %14s %12s\n" path "(absent)"
            (leaf_to_string nv) ""
      | Some ov when ov = nv -> ()
      | Some ov -> (
          incr changed;
          match (Json.to_float ov, Json.to_float nv) with
          | Some o, Some n ->
              let pct = if o = 0.0 then nan else (n -. o) /. o *. 100.0 in
              Printf.printf "%-52s %14.6g %14.6g %+11.1f%%\n" path o n pct
          | _ ->
              Printf.printf "%-52s %14s %14s %12s\n" path (leaf_to_string ov)
                (leaf_to_string nv) ""))
    new_leaves;
  List.iter
    (fun (path, ov) ->
      if List.assoc_opt path new_leaves = None then begin
        incr changed;
        Printf.printf "%-52s %14s %14s %12s\n" path (leaf_to_string ov)
          "(absent)" ""
      end)
    old_leaves;
  if !changed = 0 then Printf.printf "(identical)\n"

(* --bench: compare the micro_ns_per_op maps of two bench reports. Fails
   (exit 1) when any kernel slows down by more than [threshold]. *)
let bench_gate old_j new_j threshold =
  let micro j name =
    match Json.member "micro_ns_per_op" j with
    | Some (Json.Obj kvs) -> Ok kvs
    | _ -> Error (Printf.sprintf "%s: no micro_ns_per_op map" name)
  in
  match (micro old_j "baseline", micro new_j "candidate") with
  | Error e, _ | _, Error e -> `Error (false, e)
  | Ok old_map, Ok new_map ->
      let regressions = ref [] in
      Printf.printf "%-40s %12s %12s %9s\n" "kernel" "base ns/op" "new ns/op"
        "change";
      List.iter
        (fun (name, ov) ->
          match (Json.to_float ov, Option.bind (List.assoc_opt name new_map) Json.to_float) with
          | Some o, Some n when o > 0.0 ->
              let rel = (n -. o) /. o in
              let flag =
                if rel > threshold then begin
                  regressions := (name, rel) :: !regressions;
                  "  REGRESSION"
                end
                else ""
              in
              Printf.printf "%-40s %12.1f %12.1f %+8.1f%%%s\n" name o n
                (rel *. 100.0) flag
          | Some o, None ->
              Printf.printf "%-40s %12.1f %12s %9s  MISSING\n" name o "-" ""
          | _ -> ())
        old_map;
      if !regressions = [] then begin
        Printf.printf "bench gate: ok (threshold %+.0f%%)\n"
          (threshold *. 100.0);
        `Ok ()
      end
      else begin
        Printf.printf "bench gate: %d kernel(s) regressed beyond %+.0f%%\n"
          (List.length !regressions)
          (threshold *. 100.0);
        exit 1
      end

let run bench threshold files =
  let with_json path k =
    match read_json path with Error e -> `Error (false, e) | Ok j -> k j
  in
  match (bench, files) with
  | false, [ f ] -> with_json f (fun j -> `Ok (print_one j))
  | false, [ a; b ] ->
      with_json a (fun ja -> with_json b (fun jb -> `Ok (diff ja jb)))
  | true, [ a; b ] ->
      with_json a (fun ja -> with_json b (fun jb -> bench_gate ja jb threshold))
  | _ ->
      `Error
        (false, "expected FILE (print), FILE FILE (diff) or --bench OLD NEW")

let bench =
  Arg.(value & flag
       & info [ "bench" ]
           ~doc:
             "compare the $(b,micro_ns_per_op) maps of two bench reports and \
              exit 1 on any kernel regression beyond $(b,--threshold)")

let threshold =
  Arg.(value & opt float 0.25
       & info [ "threshold" ] ~docv:"FRAC"
           ~doc:"allowed fractional slowdown per kernel for --bench (0.25 = 25%)")

let files = Arg.(value & pos_all string [] & info [] ~docv:"FILE")

let cmd =
  let info =
    Cmd.info "statsdump" ~doc:"Pretty-print, diff and gate on run manifests and bench reports"
  in
  Cmd.v info Term.(ret (const run $ bench $ threshold $ files))

let () = exit (Cmd.eval cmd)
