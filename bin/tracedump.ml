(* Run a small churn scenario with JSONL event tracing on, then read the
   trace file back and summarise it: per-lookup path lengths, one
   lookup's full reconstructed hop path, drop attribution, top talkers,
   and the live engine/net counter registry. Doubles as an end-to-end
   check that traced per-class send counts agree with the metrics
   collector.

     dune exec bin/tracedump.exe -- --nodes 100 --out trace.jsonl *)

open Cmdliner
module Sim = Harness.Sim
module Obs = Repro_obs
module M = Mspastry.Message
module Collector = Overlay_metrics.Collector
module Trace = Churn.Trace
module Rng = Repro_util.Rng

let read_events path =
  let ic = open_in path in
  let events = ref [] in
  let bad = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then
         match Obs.Json.of_string line with
         | Error _ -> incr bad
         | Ok j -> (
             match Obs.Event.of_json j with
             | Ok ev -> events := ev :: !events
             | Error _ -> incr bad)
     done
   with End_of_file -> ());
  close_in ic;
  (List.rev !events, !bad)

let incr_tbl tbl key = function
  | n -> (
      match Hashtbl.find_opt tbl key with
      | Some r -> r := !r + n
      | None -> Hashtbl.add tbl key (ref n))

let tbl_to_sorted tbl =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare (b : int) a)

let print_path path =
  List.iter
    (fun h ->
      Printf.printf "    t=%10.3f  addr=%-6d stage=%-8s hops=%d%s\n" h.Obs.Hoppath.time
        h.Obs.Hoppath.addr
        (Obs.Event.stage_name h.Obs.Hoppath.stage)
        h.Obs.Hoppath.hops
        (if h.Obs.Hoppath.retx then "  (reroute)" else ""))
    path

let run nodes hours seed out loss lookup_rate timers sample top faults capacity
    queue_limit =
  (* -- scenario: Gnutella-calibrated churn scaled to ~[nodes] concurrent - *)
  let scale = float_of_int nodes /. 2000.0 in
  let duration = hours *. 3600.0 in
  let churn = Trace.gnutella ~scale ~duration (Rng.create (seed + 1000)) in
  let config =
    {
      Sim.default_config with
      seed;
      loss_rate = loss;
      lookup_rate;
      tracing = Sim.Trace_jsonl out;
      trace_timers = timers;
      capacity =
        Option.map
          (fun rate -> { Netsim.Net.service_rate = rate; queue_limit })
          capacity;
    }
  in
  let config =
    (* --faults: fail-slow a slice of the overlay mid-run and switch on
       end-to-end retries, so the suspicion / retry events show up *)
    if not faults then config
    else
      {
        config with
        Sim.pastry =
          { config.Sim.pastry with Mspastry.Config.e2e_lookup_retries = 2 };
        fault_schedule =
          [
            Repro_faults.Schedule.fail_slow ~label:"tracedump-slow" ~extra:2.0
              ~time:(duration /. 3.0) ~duration:(duration /. 3.0) 0.15;
          ];
      }
  in
  Printf.printf "scenario: gnutella-calibrated churn, ~%d concurrent nodes, %.1f h\n"
    (Trace.max_concurrent churn) hours;
  Printf.printf "tracing:  %s (timer events %s)\n%!" out (if timers then "on" else "off");
  let live = Sim.live_of_trace config ~trace:churn in
  Sim.Live.run_until live (duration +. config.Sim.drain);
  let registry = Sim.Live.registry live in
  let reg_dump = Obs.Registry.dump registry in
  let summary =
    Collector.summary ~since:0.0 ~until:infinity ~drain:0.0 (Sim.Live.collector live)
  in
  Obs.Trace.close (Sim.Live.trace live);

  (* -- read the trace back ------------------------------------------- *)
  let events, bad = read_events out in
  Printf.printf "\ntrace: %d events read back%s\n" (List.length events)
    (if bad > 0 then Printf.sprintf " (%d unparseable lines!)" bad else "");

  let by_kind = Hashtbl.create 16 in
  let sends_by_class = Hashtbl.create 16 in
  let drops_by = Hashtbl.create 16 in
  let talkers = Hashtbl.create 256 in
  let lost_lookup_seqs = ref [] in
  let suspected_targets = Hashtbl.create 64 in
  let n_suspected = ref 0 and n_unsuspected = ref 0 in
  let retry_attempts = Hashtbl.create 8 in
  let n_retries = ref 0 in
  let n_queue = ref 0 and q_sum = ref 0.0 and q_max = ref 0.0 in
  let occ_max = ref 0 in
  List.iter
    (fun ev ->
      incr_tbl by_kind (Obs.Event.kind_name ev) 1;
      match ev.Obs.Event.body with
      | Obs.Event.Send { src; cls; _ } ->
          incr_tbl sends_by_class cls 1;
          incr_tbl talkers src 1
      | Obs.Event.Drop { cls; seq; reason; _ } ->
          incr_tbl drops_by (Obs.Event.drop_reason_name reason, cls) 1;
          Option.iter (fun s -> lost_lookup_seqs := s :: !lost_lookup_seqs) seq
      | Obs.Event.Suspected { target; _ } ->
          incr n_suspected;
          incr_tbl suspected_targets target 1
      | Obs.Event.Unsuspected _ -> incr n_unsuspected
      | Obs.Event.Lookup_retry { attempt; _ } ->
          incr n_retries;
          incr_tbl retry_attempts attempt 1
      | Obs.Event.Queue { delay; occ; _ } ->
          incr n_queue;
          q_sum := !q_sum +. delay;
          q_max := Float.max !q_max delay;
          occ_max := max !occ_max occ
      | _ -> ())
    events;

  Printf.printf "\nevents by kind:\n";
  List.iter (fun (k, n) -> Printf.printf "  %-16s %d\n" k n) (tbl_to_sorted by_kind);

  Printf.printf "\nsends by class:\n";
  List.iter
    (fun (c, n) -> Printf.printf "  %-20s %d\n" c n)
    (tbl_to_sorted sends_by_class);

  Printf.printf "\ndrop attribution (reason x class):\n";
  let drops = tbl_to_sorted drops_by in
  if drops = [] then Printf.printf "  (no drops)\n"
  else
    List.iter
      (fun ((reason, cls), n) -> Printf.printf "  %-10s %-20s %d\n" reason cls n)
      drops;
  let lost = List.sort_uniq compare !lost_lookup_seqs in
  if lost <> [] then begin
    let shown = List.filteri (fun i _ -> i < 10) lost in
    Printf.printf "  lookup transmissions dropped: seqs %s%s\n"
      (String.concat ", " (List.map string_of_int shown))
      (if List.length lost > 10 then Printf.sprintf " ... (%d total)" (List.length lost)
       else "")
  end;

  (* -- per-lookup hop paths ------------------------------------------ *)
  let paths = Obs.Hoppath.of_events events in
  let n_paths = List.length paths in
  Printf.printf "\nlookup hop paths: %d lookups traced\n" n_paths;
  if n_paths > 0 then begin
    let lengths = List.map Obs.Hoppath.length paths in
    let total = List.fold_left ( + ) 0 lengths in
    let max_len = List.fold_left max 0 lengths in
    Printf.printf "  path length: mean %.2f, max %d\n"
      (float_of_int total /. float_of_int n_paths)
      max_len;
    let hist = Hashtbl.create 16 in
    List.iter (fun l -> incr_tbl hist l 1) lengths;
    let bars = List.sort compare (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) hist []) in
    List.iter (fun (l, n) -> Printf.printf "    %2d nodes: %6d lookups\n" l n) bars;
    let chosen =
      match sample with
      | Some seq -> Obs.Hoppath.find events ~seq |> fun p -> (seq, p)
      | None ->
          (* default sample: a longest path — the most to reconstruct *)
          let best =
            List.fold_left
              (fun acc p ->
                match acc with
                | Some b when Obs.Hoppath.length b >= Obs.Hoppath.length p -> acc
                | _ -> Some p)
              None paths
          in
          let p = Option.get best in
          (p.Obs.Hoppath.seq, p.Obs.Hoppath.path)
    in
    let seq, path = chosen in
    if path = [] then Printf.printf "  lookup %d: no hops traced\n" seq
    else begin
      Printf.printf "  sampled lookup %d (%d nodes):\n" seq (List.length path);
      print_path path
    end
  end;

  (* -- capacity queueing --------------------------------------------- *)
  if Option.is_some capacity || !n_queue > 0 then begin
    Printf.printf "\ncapacity queueing:\n";
    if !n_queue = 0 then Printf.printf "  (no queue events traced)\n"
    else
      Printf.printf
        "  %d enqueues, mean delay %.4fs (max %.4f), peak occupancy %d\n"
        !n_queue
        (!q_sum /. float_of_int !n_queue)
        !q_max !occ_max
  end;

  (* -- failure detector & end-to-end retries ------------------------- *)
  Printf.printf "\nfailure detector / end-to-end retries:\n";
  if !n_suspected = 0 && !n_retries = 0 then
    Printf.printf "  (no suspicions or retries traced)\n"
  else begin
    Printf.printf "  suspicions: %d (%d later cleared by direct contact)\n"
      !n_suspected !n_unsuspected;
    List.iteri
      (fun i (target, n) ->
        if i < 5 then Printf.printf "    most-suspected addr %-6d %d times\n" target n)
      (tbl_to_sorted suspected_targets);
    Printf.printf "  lookup retries: %d\n" !n_retries;
    List.iter
      (fun (attempt, n) -> Printf.printf "    attempt %d: %d lookups\n" attempt n)
      (List.sort compare
         (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) retry_attempts []))
  end;

  (* -- top talkers --------------------------------------------------- *)
  Printf.printf "\ntop talkers (messages sent):\n";
  List.iteri
    (fun i (addr, n) -> if i < top then Printf.printf "  addr %-6d %d\n" addr n)
    (tbl_to_sorted talkers);

  (* -- runtime counters ---------------------------------------------- *)
  Printf.printf "\nruntime counters:\n";
  List.iter
    (fun (name, v) ->
      match v with
      | Obs.Registry.Int i -> Printf.printf "  %-24s %d\n" name i
      | Obs.Registry.Float f -> Printf.printf "  %-24s %.2f\n" name f)
    reg_dump;

  (* -- cross-check traced sends vs collector aggregates -------------- *)
  let count_class name =
    match Hashtbl.find_opt sends_by_class name with Some r -> !r | None -> 0
  in
  let traced_control =
    List.fold_left
      (fun acc c -> if M.is_control c then acc + count_class (M.class_name c) else acc)
      0 M.all_classes
  in
  let traced_lookup = count_class (M.class_name M.C_lookup) in
  let ok_control = float_of_int traced_control = summary.Collector.control_msgs in
  let ok_lookup = float_of_int traced_lookup = summary.Collector.lookup_msgs in
  Printf.printf "\ncross-check vs collector (whole run):\n";
  Printf.printf "  control msgs: traced %d, collector %.0f  [%s]\n" traced_control
    summary.Collector.control_msgs
    (if ok_control then "OK" else "MISMATCH");
  Printf.printf "  lookup msgs:  traced %d, collector %.0f  [%s]\n" traced_lookup
    summary.Collector.lookup_msgs
    (if ok_lookup then "OK" else "MISMATCH");
  if ok_control && ok_lookup then `Ok ()
  else `Error (false, "traced counts disagree with the collector")

let nodes =
  Arg.(value & opt int 100 & info [ "nodes" ] ~docv:"N" ~doc:"target concurrent nodes")

let hours =
  Arg.(value & opt float 2.5 & info [ "hours" ] ~docv:"H" ~doc:"simulated duration")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed")

let out =
  Arg.(value & opt string "trace.jsonl"
       & info [ "o"; "out" ] ~docv:"PATH" ~doc:"JSONL trace output path")

let loss =
  Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc:"network loss rate")

let lookup_rate =
  Arg.(value & opt float 0.01
       & info [ "rate" ] ~docv:"R" ~doc:"lookups per second per node")

let timers =
  Arg.(value & flag
       & info [ "timers" ] ~doc:"also trace engine timer events (high volume)")

let sample =
  Arg.(value & opt (some int) None
       & info [ "sample" ] ~docv:"SEQ" ~doc:"lookup sequence number to print in full")

let top = Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc:"top talkers to list")

let faults =
  Arg.(value & flag
       & info [ "faults" ]
           ~doc:
             "inject a fail-slow node fault mid-run and enable end-to-end lookup \
              retries, so suspicion and retry events appear in the trace")

let capacity =
  Arg.(value & opt (some float) None
       & info [ "capacity" ] ~docv:"RATE"
           ~doc:
             "enable the per-node capacity model at RATE msg/s, so queue and \
              congestion-drop events appear in the trace")

let queue_limit =
  Arg.(value & opt int 16
       & info [ "queue-limit" ] ~docv:"N"
           ~doc:"inbound queue depth for --capacity (messages)")

let cmd =
  let info =
    Cmd.info "tracedump"
      ~doc:"Run a churn scenario with event tracing and summarise the trace"
  in
  Cmd.v info
    Term.(
      ret
        (const run $ nodes $ hours $ seed $ out $ loss $ lookup_rate $ timers $ sample
       $ top $ faults $ capacity $ queue_limit))

let () = exit (Cmd.eval cmd)
