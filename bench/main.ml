(* Benchmark harness.

   Two parts:
   1. Bechamel micro-benchmarks of the performance-critical kernels
      (identifier arithmetic, routing state operations, the next-hop
      function, the event queue) — one [Test.make] per kernel.
   2. Regeneration of every table and figure in the paper's evaluation
      (§5) at [Quick] scale, via the shared experiment runners. Pass
      an experiment name (fig3..fig8, topology, ablation, selftuning,
      suppression, structure, all) to run a subset, and --size to scale
      up; `bench/main.exe micro` runs only the micro-benchmarks.

   With --json the micro run writes machine-readable results (ns/op per
   kernel plus whole-stack reference timings) to BENCH.json — override
   the path with `-o FILE`. `bin/statsdump --bench OLD NEW` diffs two
   such files and fails on regressions (the CI gate). *)

module E = Repro_experiments.Experiments
open Bechamel
open Toolkit

let rng = Repro_util.Rng.create 99

let ids = Array.init 1024 (fun _ -> Pastry.Nodeid.random rng)

let bench_nodeid_ops =
  Test.make ~name:"nodeid: prefix+digit (b=4)"
    (Staged.stage (fun () ->
         let a = ids.(Repro_util.Rng.int rng 1024)
         and b = ids.(Repro_util.Rng.int rng 1024) in
         let r = Pastry.Nodeid.shared_prefix_length ~b:4 a b in
         ignore (Pastry.Nodeid.digit ~b:4 a (min r 31))))

let bench_ring_dist =
  Test.make ~name:"nodeid: ring distance"
    (Staged.stage (fun () ->
         let a = ids.(Repro_util.Rng.int rng 1024)
         and b = ids.(Repro_util.Rng.int rng 1024) in
         ignore (Pastry.Nodeid.ring_dist a b)))

let make_routing_state () =
  let me = Pastry.Peer.make ids.(0) 0 in
  let leafset = Pastry.Leafset.create ~l:32 ~me in
  let table = Pastry.Routing_table.create ~b:4 ~me:me.Pastry.Peer.id in
  for k = 1 to 512 do
    let p = Pastry.Peer.make ids.(k) k in
    ignore (Pastry.Leafset.add leafset p);
    ignore (Pastry.Routing_table.consider table p ~rtt:(Repro_util.Rng.float rng 0.2))
  done;
  (leafset, table)

let leafset_bench, table_bench = make_routing_state ()

let bench_next_hop =
  Test.make ~name:"route: next_hop over 512-node state"
    (Staged.stage (fun () ->
         let key = ids.(Repro_util.Rng.int rng 1024) in
         ignore (Pastry.Route.next_hop ~leafset:leafset_bench ~table:table_bench ~key ())))

let bench_leafset_add =
  Test.make ~name:"leafset: 64 adds"
    (Staged.stage (fun () ->
         let me = Pastry.Peer.make ids.(0) 0 in
         let ls = Pastry.Leafset.create ~l:32 ~me in
         for k = 1 to 64 do
           ignore (Pastry.Leafset.add ls (Pastry.Peer.make ids.(k) k))
         done))

let bench_event_queue =
  Test.make ~name:"simkit: 1k schedule+drain"
    (Staged.stage (fun () ->
         let e = Simkit.Engine.create () in
         for k = 1 to 1000 do
           ignore
             (Simkit.Engine.schedule e
                ~delay:(float_of_int (k * 7919 mod 997) /. 100.0)
                (fun () -> ()))
         done;
         Simkit.Engine.run_all e))

let bench_oracle =
  let o = Harness.Oracle.create () in
  Array.iteri (fun i id -> Harness.Oracle.add o id i) ids;
  Test.make ~name:"oracle: closest over 1k nodes"
    (Staged.stage (fun () ->
         ignore (Harness.Oracle.closest o ids.(Repro_util.Rng.int rng 1024))))

let bench_tuning_solver =
  Test.make ~name:"tuning: solve_trt bisection"
    (Staged.stage (fun () ->
         ignore (Mspastry.Tuning.solve_trt Mspastry.Config.default ~n:10_000.0 ~mu:1e-4)))

(* the two per-message fault hooks netsim consults on the hot send path *)

let bench_ge_verdict =
  let model = Repro_faults.Netfault.bursty ~avg_loss:0.03 ~burst:10.0 in
  let frng = Repro_util.Rng.create 17 in
  let i = ref 0 in
  Test.make ~name:"netfault: Gilbert-Elliott verdict"
    (Staged.stage (fun () ->
         incr i;
         ignore
           (Repro_faults.Netfault.decide model ~rng:frng ~time:(float_of_int !i)
              ~src:(!i land 63) ~dst:((!i + 1) land 63))))

let bench_node_fault =
  let module NF = Repro_faults.Nodefault in
  let victims = List.init 32 (fun k -> k * 3) in
  let model =
    NF.compose
      [
        NF.fail_slow ~factor:2.0 ~extra:0.1 ~addrs:victims ();
        NF.flapping ~period:30.0 ~duty:0.3 ~addrs:[ 1; 4; 7 ] ();
      ]
  in
  let i = ref 0 in
  Test.make ~name:"nodefault: composed decide (send+recv)"
    (Staged.stage (fun () ->
         incr i;
         let t = float_of_int !i *. 0.01 in
         ignore (NF.decide model ~time:t ~dir:NF.Send ~addr:(!i land 127));
         ignore (NF.decide model ~time:t ~dir:NF.Recv ~addr:((!i + 1) land 127))))

(* the per-message queue model on netsim's hot send path: compare the
   capacity-off baseline against a saturating capacity-on run *)

let make_cap_net capacity =
  let engine = Simkit.Engine.create () in
  let net =
    Netsim.Net.create
      ~priority_of:(fun m -> if m land 1 = 1 then 1 else 0)
      ?capacity ~engine
      ~topology:(Topology.constant ~n_endpoints:64 ~delay:0.01)
      ~rng:(Repro_util.Rng.create 23) ()
  in
  for a = 0 to 63 do
    Netsim.Net.register net ~addr:a (fun ~src:_ _ -> ())
  done;
  (engine, net)

let bench_send_no_capacity =
  let engine, net = make_cap_net None in
  let i = ref 0 in
  Test.make ~name:"netsim: send, capacity off"
    (Staged.stage (fun () ->
         incr i;
         Netsim.Net.send net ~src:(!i land 63) ~dst:((!i + 7) land 63) !i;
         if !i land 1023 = 0 then Simkit.Engine.run_all engine))

let bench_send_capacity =
  let engine, net =
    make_cap_net (Some { Netsim.Net.service_rate = 100.0; queue_limit = 32 })
  in
  let i = ref 0 in
  Test.make ~name:"netsim: send, capacity on (queued)"
    (Staged.stage (fun () ->
         incr i;
         Netsim.Net.send net ~src:(!i land 63) ~dst:((!i + 7) land 63) !i;
         if !i land 1023 = 0 then Simkit.Engine.run_all engine))

let run_micro () =
  let tests =
    [
      bench_nodeid_ops;
      bench_ring_dist;
      bench_next_hop;
      bench_leafset_add;
      bench_event_queue;
      bench_oracle;
      bench_tuning_solver;
      bench_ge_verdict;
      bench_node_fault;
      bench_send_no_capacity;
      bench_send_capacity;
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  print_endline "=== Micro-benchmarks (Bechamel) ===";
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name wks ->
          let ols =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
              Instance.monotonic_clock wks
          in
          match Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Printf.printf "%-40s %12.1f ns/op\n%!" name est;
              estimates := (name, est) :: !estimates
          | Some _ | None -> Printf.printf "%-40s (no estimate)\n%!" name)
        results)
    tests;
  List.rev !estimates

(* wall-clock + engine-throughput reference points for the JSON report *)

let time_fig3 () =
  let t0 = Unix.gettimeofday () in
  E.fig3 ~size:E.Quick ~seed:42 ();
  Unix.gettimeofday () -. t0

let time_small_sim () =
  (* a small steady-churn run on the flat topology: the engine events /
     wall-second figure tracks whole-stack simulation throughput *)
  let module Sim = Harness.Sim in
  let duration = 3600.0 in
  let trace =
    Churn.Trace.poisson (Repro_util.Rng.create 7) ~n_avg:60 ~session_mean:1800.0
      ~duration
  in
  let config =
    { Sim.default_config with topology = Sim.Flat 0.05; warmup = 600.0; seed = 42 }
  in
  let live = Sim.live_of_trace config ~trace in
  let t0 = Unix.gettimeofday () in
  Sim.Live.run_until live (duration +. config.Sim.drain);
  let wall = Unix.gettimeofday () -. t0 in
  (wall, Simkit.Engine.stats (Sim.Live.engine live))

let write_json path micro =
  let module J = Repro_obs.Json in
  let fig3_wall = time_fig3 () in
  let sim_wall, est = time_small_sim () in
  let j =
    J.Obj
      [
        ( "micro_ns_per_op",
          J.Obj (List.map (fun (name, est) -> (name, J.Float est)) micro) );
        ("fig3_quick_wall_s", J.Float fig3_wall);
        ( "sim",
          J.Obj
            [
              ("events_fired", J.Int est.Simkit.Engine.fired);
              ("events_scheduled", J.Int est.Simkit.Engine.scheduled);
              ("heap_hwm", J.Int est.Simkit.Engine.heap_hwm);
              ("wall_s", J.Float sim_wall);
              ( "events_per_wall_s",
                J.Float (float_of_int est.Simkit.Engine.fired /. sim_wall) );
              ("events_per_sim_s", J.Float est.Simkit.Engine.events_per_sim_s);
            ] );
      ]
  in
  let oc = open_out path in
  output_string oc (J.to_string j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (fig3 quick: %.2f s wall, sim: %.0f events/wall-s)\n%!" path
    fig3_wall
    (float_of_int est.Simkit.Engine.fired /. sim_wall)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let json = List.mem "--json" args in
  let size =
    let rec find = function
      | "--size" :: v :: _ -> (
          match E.size_of_string v with Some s -> s | None -> E.Quick)
      | _ :: rest -> find rest
      | [] -> E.Quick
    in
    find args
  in
  let out =
    let rec find = function
      | ("-o" | "--out") :: v :: _ -> v
      | _ :: rest -> find rest
      | [] -> "BENCH.json"
    in
    find args
  in
  let names =
    (* positional targets: drop flags and the values of valued flags *)
    let rec strip = function
      | ("--size" | "-o" | "--out") :: _ :: rest -> strip rest
      | a :: rest ->
          if (String.length a > 1 && a.[0] = '-') || E.size_of_string a <> None
          then strip rest
          else a :: strip rest
      | [] -> []
    in
    strip args
  in
  let seed = 42 in
  let run_one = function
    | "micro" ->
        let micro = run_micro () in
        if json then write_json out micro
    | "fig3" -> E.fig3 ~size ~seed ()
    | "fig4" -> E.fig4 ~size ~seed ()
    | "fig5" -> E.fig5 ~size ~seed ()
    | "fig6" -> E.fig6 ~size ~seed ()
    | "fig7" -> E.fig7 ~size ~seed ()
    | "fig8" -> E.fig8 ~size ~seed ()
    | "topology" -> E.topology_table ~size ~seed ()
    | "ablation" -> E.ablation ~size ~seed ()
    | "selftuning" -> E.selftuning ~size ~seed ()
    | "suppression" -> E.suppression ~size ~seed ()
    | "structure" -> E.structure_ablation ~size ~seed ()
    | "apps" -> E.apps ~size ~seed ()
    | "consistency" -> E.consistency ~size ~seed ()
    | "all" -> E.all ~size ~seed ()
    | other -> Printf.eprintf "unknown bench target %S\n" other
  in
  match names with
  | [] ->
      let micro = run_micro () in
      if json then write_json out micro;
      E.all ~size ~seed ()
  | names -> List.iter run_one names
