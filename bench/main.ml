(* Benchmark harness.

   Two parts:
   1. Bechamel micro-benchmarks of the performance-critical kernels
      (identifier arithmetic, routing state operations, the next-hop
      function, the event queue) — one [Test.make] per kernel.
   2. Regeneration of every table and figure in the paper's evaluation
      (§5) at [Quick] scale, via the shared experiment runners. Pass
      an experiment name (fig3..fig8, topology, ablation, selftuning,
      suppression, structure, all) to run a subset, and --size to scale
      up; `bench/main.exe micro` runs only the micro-benchmarks. *)

module E = Repro_experiments.Experiments
open Bechamel
open Toolkit

let rng = Repro_util.Rng.create 99

let ids = Array.init 1024 (fun _ -> Pastry.Nodeid.random rng)

let bench_nodeid_ops =
  Test.make ~name:"nodeid: prefix+digit (b=4)"
    (Staged.stage (fun () ->
         let a = ids.(Repro_util.Rng.int rng 1024)
         and b = ids.(Repro_util.Rng.int rng 1024) in
         let r = Pastry.Nodeid.shared_prefix_length ~b:4 a b in
         ignore (Pastry.Nodeid.digit ~b:4 a (min r 31))))

let bench_ring_dist =
  Test.make ~name:"nodeid: ring distance"
    (Staged.stage (fun () ->
         let a = ids.(Repro_util.Rng.int rng 1024)
         and b = ids.(Repro_util.Rng.int rng 1024) in
         ignore (Pastry.Nodeid.ring_dist a b)))

let make_routing_state () =
  let me = Pastry.Peer.make ids.(0) 0 in
  let leafset = Pastry.Leafset.create ~l:32 ~me in
  let table = Pastry.Routing_table.create ~b:4 ~me:me.Pastry.Peer.id in
  for k = 1 to 512 do
    let p = Pastry.Peer.make ids.(k) k in
    ignore (Pastry.Leafset.add leafset p);
    ignore (Pastry.Routing_table.consider table p ~rtt:(Repro_util.Rng.float rng 0.2))
  done;
  (leafset, table)

let leafset_bench, table_bench = make_routing_state ()

let bench_next_hop =
  Test.make ~name:"route: next_hop over 512-node state"
    (Staged.stage (fun () ->
         let key = ids.(Repro_util.Rng.int rng 1024) in
         ignore (Pastry.Route.next_hop ~leafset:leafset_bench ~table:table_bench ~key ())))

let bench_leafset_add =
  Test.make ~name:"leafset: 64 adds"
    (Staged.stage (fun () ->
         let me = Pastry.Peer.make ids.(0) 0 in
         let ls = Pastry.Leafset.create ~l:32 ~me in
         for k = 1 to 64 do
           ignore (Pastry.Leafset.add ls (Pastry.Peer.make ids.(k) k))
         done))

let bench_event_queue =
  Test.make ~name:"simkit: 1k schedule+drain"
    (Staged.stage (fun () ->
         let e = Simkit.Engine.create () in
         for k = 1 to 1000 do
           ignore
             (Simkit.Engine.schedule e
                ~delay:(float_of_int (k * 7919 mod 997) /. 100.0)
                (fun () -> ()))
         done;
         Simkit.Engine.run_all e))

let bench_oracle =
  let o = Harness.Oracle.create () in
  Array.iteri (fun i id -> Harness.Oracle.add o id i) ids;
  Test.make ~name:"oracle: closest over 1k nodes"
    (Staged.stage (fun () ->
         ignore (Harness.Oracle.closest o ids.(Repro_util.Rng.int rng 1024))))

let bench_tuning_solver =
  Test.make ~name:"tuning: solve_trt bisection"
    (Staged.stage (fun () ->
         ignore (Mspastry.Tuning.solve_trt Mspastry.Config.default ~n:10_000.0 ~mu:1e-4)))

let run_micro () =
  let tests =
    [
      bench_nodeid_ops;
      bench_ring_dist;
      bench_next_hop;
      bench_leafset_add;
      bench_event_queue;
      bench_oracle;
      bench_tuning_solver;
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  print_endline "=== Micro-benchmarks (Bechamel) ===";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name wks ->
          let ols =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
              Instance.monotonic_clock wks
          in
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-40s %12.1f ns/op\n%!" name est
          | Some _ | None -> Printf.printf "%-40s (no estimate)\n%!" name)
        results)
    tests

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let size =
    let rec find = function
      | "--size" :: v :: _ -> (
          match E.size_of_string v with Some s -> s | None -> E.Quick)
      | _ :: rest -> find rest
      | [] -> E.Quick
    in
    find args
  in
  let names =
    List.filter
      (fun a -> (not (String.length a > 1 && a.[0] = '-')) && E.size_of_string a = None)
      args
  in
  let seed = 42 in
  let run_one = function
    | "micro" -> run_micro ()
    | "fig3" -> E.fig3 ~size ~seed ()
    | "fig4" -> E.fig4 ~size ~seed ()
    | "fig5" -> E.fig5 ~size ~seed ()
    | "fig6" -> E.fig6 ~size ~seed ()
    | "fig7" -> E.fig7 ~size ~seed ()
    | "fig8" -> E.fig8 ~size ~seed ()
    | "topology" -> E.topology_table ~size ~seed ()
    | "ablation" -> E.ablation ~size ~seed ()
    | "selftuning" -> E.selftuning ~size ~seed ()
    | "suppression" -> E.suppression ~size ~seed ()
    | "structure" -> E.structure_ablation ~size ~seed ()
    | "apps" -> E.apps ~size ~seed ()
    | "consistency" -> E.consistency ~size ~seed ()
    | "all" -> E.all ~size ~seed ()
    | other -> Printf.eprintf "unknown bench target %S\n" other
  in
  match names with
  | [] ->
      run_micro ();
      E.all ~size ~seed ()
  | names -> List.iter run_one names
